"""Shared benchmark configuration.

Benchmarks run each experiment once (``pedantic(rounds=1)``) at the
``smoke`` scale: the goal is to regenerate every paper artefact's rows
end-to-end and time the full pipeline, not to micro-profile training.
Set ``REPRO_BENCH_PRESET=medium`` for paper-shaped numbers (slower).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Preset used by the experiment benchmarks (override via environment).
BENCH_PRESET = os.environ.get("REPRO_BENCH_PRESET", "smoke")

#: Seed shared by every benchmark.
BENCH_SEED = 2018


@pytest.fixture(scope="session")
def bench_preset() -> str:
    return BENCH_PRESET


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


#: Rendered tables/series from each bench land here (pytest's fd-level
#: capture discards stdout of passing tests, but the whole point of the
#: harness is to show the rows each paper artefact reports).
REPORT_PATH = Path(__file__).with_name("last_run_report.txt")


@pytest.fixture(scope="session", autouse=True)
def _fresh_report():
    REPORT_PATH.write_text(
        f"# Rendered paper artefacts from the last benchmark run "
        f"(preset={BENCH_PRESET}, seed={BENCH_SEED})\n"
    )
    yield


def report(text: str) -> None:
    """Record a rendered artefact (also printed for ``pytest -s`` runs)."""
    with REPORT_PATH.open("a") as stream:
        stream.write("\n" + text + "\n")
    print("\n" + text)
