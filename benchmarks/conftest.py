"""Shared benchmark configuration.

Benchmarks run each experiment once (``pedantic(rounds=1)``) at the
``smoke`` scale: the goal is to regenerate every paper artefact's rows
end-to-end and time the full pipeline, not to micro-profile training.
Set ``REPRO_BENCH_PRESET=medium`` for paper-shaped numbers (slower).

Each run leaves two artefacts next to this file:

* ``last_run_report.txt`` — the rendered paper artefacts (human-readable);
* ``BENCH_<preset>.json`` — machine-readable per-test timings (from
  pytest-benchmark's stats) plus any custom metrics benches record via
  :func:`record_metric`, stamped with preset / seed / timestamp, so the
  perf trajectory across PRs can be diffed and plotted.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

#: Preset used by the experiment benchmarks (override via environment).
BENCH_PRESET = os.environ.get("REPRO_BENCH_PRESET", "smoke")

#: Seed shared by every benchmark.
BENCH_SEED = 2018


@pytest.fixture(scope="session")
def bench_preset() -> str:
    return BENCH_PRESET


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


#: Rendered tables/series from each bench land here (pytest's fd-level
#: capture discards stdout of passing tests, but the whole point of the
#: harness is to show the rows each paper artefact reports).
REPORT_PATH = Path(__file__).with_name("last_run_report.txt")

#: Machine-readable sibling of the report, keyed by test name.
JSON_PATH = Path(__file__).with_name(f"BENCH_{BENCH_PRESET}.json")

#: test name -> custom metrics recorded via :func:`record_metric`.
_CUSTOM_METRICS: dict[str, dict] = {}


def record_metric(test_name: str, **metrics) -> None:
    """Attach custom numbers (throughput, speedup, …) to one test's JSON entry."""
    _CUSTOM_METRICS.setdefault(test_name, {}).update(metrics)


def _stats_of(bench) -> dict:
    """Timing stats from one pytest-benchmark entry (a Metadata whose
    ``stats`` attribute is the Stats accumulator), defensively."""
    out: dict = {}
    stats = getattr(bench, "stats", None)
    for field in ("min", "max", "mean", "stddev", "rounds"):
        value = getattr(stats, field, None)
        if isinstance(value, (int, float)):
            out[field if field == "rounds" else f"{field}_s"] = value
    return out


@pytest.fixture(scope="session", autouse=True)
def _fresh_report(request):
    REPORT_PATH.write_text(
        f"# Rendered paper artefacts from the last benchmark run "
        f"(preset={BENCH_PRESET}, seed={BENCH_SEED})\n"
    )
    yield
    tests: dict[str, dict] = {}
    session = getattr(request.config, "_benchmarksession", None)
    for bench in getattr(session, "benchmarks", []) or []:
        name = getattr(bench, "name", None)
        if name:
            tests[name] = _stats_of(bench)
    for name, metrics in _CUSTOM_METRICS.items():
        tests.setdefault(name, {}).update(metrics)
    JSON_PATH.write_text(
        json.dumps(
            {
                "preset": BENCH_PRESET,
                "seed": BENCH_SEED,
                "timestamp": time.time(),
                "tests": tests,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def report(text: str) -> None:
    """Record a rendered artefact (also printed for ``pytest -s`` runs)."""
    with REPORT_PATH.open("a") as stream:
        stream.write("\n" + text + "\n")
    print("\n" + text)
