"""Benches: ablations of APOTS design choices (DESIGN.md section 6)."""

import numpy as np
from conftest import BENCH_SEED, report, run_once

from repro.experiments import ablations


def test_ablation_loss_ratio(benchmark, bench_preset):
    result = run_once(
        benchmark, ablations.loss_ratio_ablation, preset=bench_preset, seed=BENCH_SEED
    )
    report(result.render())
    assert any("paper: alpha" in label for label in result.mape)


def test_ablation_disc_input(benchmark, bench_preset):
    result = run_once(
        benchmark, ablations.discriminator_input_ablation, preset=bench_preset, seed=BENCH_SEED
    )
    report(result.render())
    assert set(result.mape) == {"sequence (alpha)", "single speed"}


def test_ablation_conditioning(benchmark, bench_preset):
    result = run_once(
        benchmark, ablations.conditioning_ablation, preset=bench_preset, seed=BENCH_SEED
    )
    report(result.render())
    assert len(result.mape) == 2


def test_ablation_adjacency(benchmark, bench_preset):
    result = run_once(
        benchmark, ablations.adjacency_ablation, preset=bench_preset, seed=BENCH_SEED
    )
    report(result.render())
    assert "m=0" in result.mape and "m=2" in result.mape


def test_ablation_horizon(benchmark, bench_preset):
    result = run_once(
        benchmark, ablations.horizon_ablation, preset=bench_preset, seed=BENCH_SEED
    )
    report(result.render())
    values = list(result.mape.values())
    assert all(np.isfinite(v) for v in values)
