"""Adversarial-training benchmark: augmenter cost and hardened-fit overhead.

Times the two prices a hardened run pays over a clean one:

* raw :class:`repro.core.AdversarialAugmenter` throughput — one
  ``augment_batch`` call is an FGSM pass over the selected rows plus a
  grad-free robust-loss evaluation (the clean loss rides along with the
  attack's own gradient pass); and
* end-to-end fit overhead — the same ``APOTS`` fit with
  ``robust_fraction=0.5`` versus ``0.0``, the number EXPERIMENTS.md
  quotes when sizing an ``adv_train`` run.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro import APOTS, FeatureConfig, SimulationConfig, TrafficDataset, simulate
from repro.core import AdversarialAugmenter, TrainSpec

from conftest import BENCH_SEED, record_metric, report, run_once

#: Windows per augmented batch (matches the attack benchmarks).
BATCH_WINDOWS = 64
#: augment_batch calls timed per benchmark run.
AUGMENT_CALLS = 20

#: Fit shape for the overhead comparison (micro on purpose: the ratio,
#: not the absolute seconds, is the artefact).
FIT_SPEC = TrainSpec(
    epochs=2, max_steps_per_epoch=8, batch_size=32,
    robust_fraction=0.5, adv_epsilon_kmh=5.0, seed=BENCH_SEED,
)


def make_fitted(spec: TrainSpec):
    series = simulate(SimulationConfig(num_days=8, seed=BENCH_SEED))
    dataset = TrafficDataset(series, FeatureConfig(alpha=12, beta=1, m=2), seed=0)
    model = APOTS(predictor="F", adversarial=False, train_spec=spec, seed=0)
    model.fit(dataset)
    return model, dataset


def test_bench_augment_batch(benchmark):
    model, dataset = make_fitted(replace(FIT_SPEC, robust_fraction=0.0))
    compiled = AdversarialAugmenter.from_spec(
        model.predictor, model.scalers, replace(FIT_SPEC, compile=True)
    )
    eager = AdversarialAugmenter.from_spec(model.predictor, model.scalers, FIT_SPEC)
    batch = dataset.batch(dataset.subset("train")[:BATCH_WINDOWS])
    # Warm the gradient/loss tapes past record+validate (the robust-loss
    # tape is forward-only and takes one extra pass to earn trust): the
    # timed loop should measure the trusted-replay steady state a
    # hardened fit runs.
    for step in range(4):
        compiled.augment_batch(batch, epoch=0, step=step)
        eager.augment_batch(batch, epoch=0, step=step)

    def timed(augmenter: AdversarialAugmenter) -> tuple[float, object]:
        start = time.perf_counter()
        last_info = None
        for step in range(AUGMENT_CALLS):
            _, last_info = augmenter.augment_batch(batch, epoch=0, step=step)
        return time.perf_counter() - start, last_info

    def run() -> dict:
        # Same-process eager reference: machine speed drifts between
        # bench runs, so the speedup ratio is the durable number.
        eager_s, _ = timed(eager)
        seconds, last_info = timed(compiled)
        return {
            "calls_per_s": AUGMENT_CALLS / seconds,
            "windows_per_s": AUGMENT_CALLS * BATCH_WINDOWS / seconds,
            "ms_per_call": 1e3 * seconds / AUGMENT_CALLS,
            "eager_ms_per_call": 1e3 * eager_s / AUGMENT_CALLS,
            "speedup_x": eager_s / seconds,
            "info": last_info,
        }

    result = run_once(benchmark, run)
    info = result["info"]
    record_metric(
        "test_bench_augment_batch",
        calls_per_s=result["calls_per_s"],
        windows_per_s=result["windows_per_s"],
        eager_calls_per_s=1e3 / result["eager_ms_per_call"],
        speedup_x=result["speedup_x"],
    )
    report(
        "## Adversarial training: augmenter throughput "
        f"({BATCH_WINDOWS} windows x {AUGMENT_CALLS} calls, fgsm)\n"
        f"augment_batch : {result['ms_per_call']:10.2f} ms/call "
        f"({result['windows_per_s']:.0f} windows/s, compiled tapes)\n"
        f"eager ref     : {result['eager_ms_per_call']:10.2f} ms/call "
        f"(same-run speedup {result['speedup_x']:.2f}x)\n"
        f"perturbed     : {info.num_perturbed:10d} of {info.num_samples} rows, "
        f"max |delta| {info.max_abs_delta_kmh:.2f} km/h (budget {info.epsilon_kmh:.2f})"
    )
    assert info.num_perturbed == BATCH_WINDOWS // 2
    assert info.max_abs_delta_kmh <= info.epsilon_kmh + 1e-9


def test_bench_hardened_fit_overhead(benchmark):
    def run() -> dict:
        start = time.perf_counter()
        make_fitted(replace(FIT_SPEC, robust_fraction=0.0))
        clean_s = time.perf_counter() - start
        start = time.perf_counter()
        make_fitted(FIT_SPEC)
        hardened_s = time.perf_counter() - start
        return {
            "clean_s": clean_s,
            "hardened_s": hardened_s,
            "overhead": hardened_s / clean_s,
        }

    result = run_once(benchmark, run)
    record_metric(
        "test_bench_hardened_fit_overhead",
        clean_s=result["clean_s"],
        hardened_s=result["hardened_s"],
        overhead_x=result["overhead"],
    )
    report(
        "## Adversarial training: hardened-fit overhead "
        f"(robust_fraction={FIT_SPEC.robust_fraction}, "
        f"eps={FIT_SPEC.adv_epsilon_kmh} km/h, fgsm)\n"
        f"clean fit    : {result['clean_s']:10.2f} s\n"
        f"hardened fit : {result['hardened_s']:10.2f} s "
        f"({result['overhead']:.2f}x clean)"
    )
    # Timer-noise tolerant: at micro scale the augmenter adds ~10-30%,
    # well inside this band; a big regression still trips the ceiling.
    assert 0.8 <= result["overhead"] <= 25.0
