"""Attack-layer benchmark: PGD step throughput and harness wall-time.

Attacks a trained F predictor on a synthetic corridor and reports

* raw PGD throughput — attack-steps per second over a fixed batch of
  windows (each step is one input-gradient pass plus a projection); and
* the full robustness harness — clean + attacked evaluation across a
  three-point epsilon sweep, the shape the ``robustness`` experiment
  runs per attack.
"""

from __future__ import annotations

import time

import numpy as np

from repro import APOTS, FeatureConfig, SimulationConfig, TrafficDataset, simulate
from repro.attacks import EvalSlice, PGDAttack, PlausibilityBox, evaluate_robustness

from conftest import BENCH_SEED, report, run_once

#: Windows attacked per PGD call (one input-gradient pass covers all).
BATCH_WINDOWS = 64
PGD_STEPS = 20
#: Samples swept by the harness benchmark.
HARNESS_SAMPLES = 64
EPSILONS_KMH = (2.5, 5.0, 10.0)


def make_victim(bench_preset):
    series = simulate(SimulationConfig(num_days=8, seed=BENCH_SEED))
    dataset = TrafficDataset(series, FeatureConfig(alpha=12, beta=1, m=2), seed=0)
    model = APOTS(predictor="F", adversarial=False, preset=bench_preset, seed=0)
    model.fit(dataset)
    return model, dataset


def make_slice(dataset, num_samples: int) -> EvalSlice:
    indices = dataset.subset("test")[:num_samples]
    batch = dataset.batch(indices)
    return EvalSlice(
        images=batch.images,
        day_types=batch.day_types,
        targets_scaled=batch.targets,
        targets_kmh=dataset.features.targets_kmh[indices],
        last_input_kmh=dataset.features.last_input_kmh[indices],
    )


def test_bench_pgd_steps(benchmark, bench_preset):
    model, dataset = make_victim(bench_preset)
    eval_slice = make_slice(dataset, BATCH_WINDOWS)
    box = PlausibilityBox(epsilon_kmh=5.0)
    attack = PGDAttack(model.predictor, model.scalers, box, steps=PGD_STEPS, seed=0)

    def run() -> dict:
        start = time.perf_counter()
        result = attack.perturb(
            np.array(eval_slice.images),
            eval_slice.day_types,
            eval_slice.targets_scaled,
        )
        seconds = time.perf_counter() - start
        return {
            "steps_per_s": PGD_STEPS / seconds,
            "window_steps_per_s": PGD_STEPS * eval_slice.images.shape[0] / seconds,
            "max_abs_delta_kmh": result.max_abs_delta_kmh,
            "seconds": seconds,
        }

    result = run_once(benchmark, run)
    report(
        "## Attacks: PGD throughput "
        f"({eval_slice.images.shape[0]} windows x {PGD_STEPS} steps)\n"
        f"attack steps : {result['steps_per_s']:10.1f} steps/s "
        f"({result['window_steps_per_s']:.0f} window-steps/s)\n"
        f"wall time    : {result['seconds']:10.2f} s\n"
        f"max |delta|  : {result['max_abs_delta_kmh']:10.2f} km/h (budget 5.00)"
    )
    assert result["max_abs_delta_kmh"] <= 5.0 + 1e-9


def test_bench_harness_sweep(benchmark, bench_preset):
    model, dataset = make_victim(bench_preset)
    eval_slice = make_slice(dataset, HARNESS_SAMPLES)

    def run() -> dict:
        start = time.perf_counter()
        sweep = evaluate_robustness(
            model.predictor, model.scalers, eval_slice,
            attack_name="pgd", epsilons_kmh=EPSILONS_KMH, seed=0,
        )
        return {"seconds": time.perf_counter() - start, "report": sweep}

    result = run_once(benchmark, run)
    sweep = result["report"]
    points = "\n".join(
        f"eps {point.epsilon_kmh:5.1f} km/h : MAE {point.clean['whole']['mae']:.3f} "
        f"-> {point.attacked['whole']['mae']:.3f} (+{point.degradation():.3f})"
        for point in sweep.results
    )
    report(
        "## Attacks: robustness harness wall-time "
        f"({HARNESS_SAMPLES} samples x {len(EPSILONS_KMH)} epsilons, pgd)\n"
        f"wall time : {result['seconds']:10.2f} s\n" + points
    )
    for point in sweep.results:
        assert point.attacked["whole"]["mae"] > point.clean["whole"]["mae"]
