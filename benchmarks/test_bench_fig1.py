"""Bench: regenerate Fig 1 (abrupt-change motivating cases)."""

from conftest import BENCH_SEED, report, run_once

from repro.experiments import fig1


def test_fig1(benchmark, bench_preset):
    result = run_once(benchmark, fig1.run, preset=bench_preset, seed=BENCH_SEED)
    report(result.render())
    assert "morning_rush" in result.episodes
    # The motivating point: rush-hour speed collapses by tens of km/h.
    assert result.episodes["morning_rush"].drop > 20.0
