"""Bench: regenerate Fig 4 (Q1 - effect of adversarial training)."""

from conftest import BENCH_SEED, report, run_once

from repro.experiments import fig4


def test_fig4(benchmark, bench_preset):
    result = run_once(benchmark, fig4.run, preset=bench_preset, seed=BENCH_SEED)
    report(result.render())
    # Structure: every variant scored on every regime.
    for kind in result.predictors:
        assert set(result.mape[kind]) == {"whole", "normal", "abrupt_acc", "abrupt_dec"}
        assert f"Adv {kind}" in result.mape
