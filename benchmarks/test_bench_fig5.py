"""Bench: regenerate Fig 5 (Q2 - effect of additional data)."""

from conftest import BENCH_SEED, report, run_once

from repro.experiments import fig5


def test_fig5(benchmark, bench_preset):
    result = run_once(benchmark, fig5.run, preset=bench_preset, seed=BENCH_SEED)
    report(result.render())
    assert set(result.mape) == set(fig5.CONFIGURATIONS)
