"""Bench: regenerate Fig 6 (case-study prediction traces)."""

from conftest import BENCH_SEED, report, run_once

from repro.experiments import fig6


def test_fig6(benchmark, bench_preset):
    result = run_once(benchmark, fig6.run, preset=bench_preset, seed=BENCH_SEED)
    report(result.render())
    assert result.traces
    for trace in result.traces.values():
        assert trace.episode.speeds_kmh.shape == trace.predictions["APOTS_F"].shape
