"""Fleet-serving benchmarks: shard parity and the saturation knee.

Two measurements:

* **shard-count invariance** — the one property that must hold on any
  machine: a mixed ``predict_many`` batch answered by 1-, 2- and
  4-shard fleets built from one checkpoint is bitwise identical.  This
  is asserted unconditionally (it is correctness, not performance).
* **saturation knee** — a deterministic open-loop replay
  (:mod:`repro.fleet.loadgen`, fixed seed) swept at 1x / 10x / 100x
  rate multipliers against a 2-shard fleet.  Offered vs served QPS,
  p50/p99 latency against scheduled arrival, shed rate and peak queue
  depth are **recorded** into ``BENCH_<preset>.json`` — never asserted:
  where the knee sits depends on the host's core count and speed, and a
  1-core CI runner saturates far earlier than a workstation.  The point
  is the trajectory across PRs, not a pass/fail bar.

The replay compresses the simulator's native 300 s tick to 0.25 s so
the whole sweep stays inside benchmark time; the ``rate`` multiplier
then scales from there exactly as it would from real cadence.
"""

from __future__ import annotations

import os
import tempfile

from repro import APOTS, FeatureConfig, SimulationConfig, TrafficDataset, simulate
from repro.core import save_model
from repro.core.config import ScalePreset
from repro.fleet import ArrivalSchedule, ForecastFleet, run_open_loop
from repro.serving import Observation

from conftest import BENCH_SEED, record_metric, report, run_once

EFFECTIVE_CORES = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
    os.cpu_count() or 1
)

FLEET_PRESET = ScalePreset(
    name="bench-fleet",
    num_days=6,
    width_factor=0.05,
    epochs=2,
    adversarial_epochs=1,
    batch_size=64,
    adversarial_batch_size=8,
    max_steps_per_epoch=6,
)
WARM_TICKS = 15
RATES = (1.0, 10.0, 100.0)
#: Native tick compressed from the simulator's 300 s for benchmark time.
TICK_SECONDS = 0.25
LOAD_TICKS = 12
QUERIES_PER_TICK = 24.0


def _series():
    return simulate(SimulationConfig(num_days=6, seed=BENCH_SEED))


def _checkpoint(series, directory: str) -> str:
    dataset = TrafficDataset(series, FeatureConfig(), seed=5)
    model = APOTS(predictor="F", adversarial=False, preset=FLEET_PRESET, seed=0)
    model.fit(dataset)
    save_model(model, directory)
    return directory


def _replay(fleet, series, steps) -> None:
    for step in steps:
        fleet.ingest_many(
            Observation(
                segment_id=segment,
                step=step,
                speed_kmh=float(series.speeds[segment, step]),
                event=float(series.events[segment, step]),
                temperature=float(series.temperature[step]),
                precipitation=float(series.precipitation[step]),
                day_type=tuple(series.day_types[step]),
            )
            for segment in range(series.num_segments)
        )


def test_bench_fleet_shard_invariance(benchmark):
    series = _series()
    query = [4, 0, 7, 2, 2, 8, 5, 1, 3, 6, 4]

    def run() -> dict:
        with tempfile.TemporaryDirectory() as tmp:
            checkpoint = _checkpoint(series, tmp)
            answers = {}
            for shards in (1, 2, 4):
                with ForecastFleet(checkpoint, series.num_segments, shards=shards) as fleet:
                    _replay(fleet, series, range(WARM_TICKS))
                    answers[shards] = fleet.predict_many(query)
            return answers

    answers = run_once(benchmark, run)
    assert answers[2] == answers[1], "2-shard fleet diverged from process-free fleet"
    assert answers[4] == answers[1], "4-shard fleet diverged from process-free fleet"
    assert [f.segment_id for f in answers[1]] == query, "request order not preserved"
    record_metric(
        "test_bench_fleet_shard_invariance",
        shard_counts=[1, 2, 4], queries=len(query), bitwise_identical=True,
    )
    report(
        f"fleet shard invariance: {len(query)} mixed queries bitwise identical "
        f"across shards {{1, 2, 4}}"
    )


def test_bench_fleet_saturation_knee(benchmark):
    series = _series()

    def run() -> dict:
        rows = {}
        with tempfile.TemporaryDirectory() as tmp:
            checkpoint = _checkpoint(series, tmp)
            for rate in RATES:
                schedule = ArrivalSchedule.from_series(
                    series,
                    seed=BENCH_SEED,
                    rate=rate,
                    ticks=LOAD_TICKS,
                    start_step=WARM_TICKS,
                    queries_per_tick=QUERIES_PER_TICK,
                    tick_seconds=TICK_SECONDS,
                )
                with ForecastFleet(
                    checkpoint, series.num_segments, shards=2, max_queue_per_shard=32
                ) as fleet:
                    _replay(fleet, series, range(WARM_TICKS))
                    rows[rate] = run_open_loop(fleet, schedule)
        return rows

    rows = run_once(benchmark, run)
    for rate, row in rows.items():
        assert row.served + row.shed == row.offered, (
            f"rate {rate}x dropped requests silently: {row}"
        )
        record_metric(
            "test_bench_fleet_saturation_knee",
            **{
                f"rate_{rate:g}x": {
                    "offered_qps": row.offered_qps,
                    "served_qps": row.served_qps,
                    "p50_ms": row.p50_ms,
                    "p99_ms": row.p99_ms,
                    "shed_rate": row.shed_rate,
                    "max_queue_depth": row.max_queue_depth,
                }
            },
        )
    record_metric(
        "test_bench_fleet_saturation_knee",
        effective_cores=EFFECTIVE_CORES, shards=2,
        tick_seconds=TICK_SECONDS, ticks=LOAD_TICKS,
    )
    report(
        "fleet saturation knee (2 shards, open-loop replay, "
        f"{EFFECTIVE_CORES} cores):\n"
        + "\n".join(f"  {rows[rate].render()}" for rate in RATES)
    )
