"""MLOps-loop benchmarks: monitor overhead and detect-to-swap latency.

Two numbers gate the continual-learning subsystem:

* the drift monitors ride the serving hot path — their per-tick cost
  (reconcile + error window + PSI check, full corridor) must stay well
  under a millisecond so monitoring never shows up in serve latency;
* the off-path pipeline (retrain + shadow + hot swap) is the loop's
  reaction time — recorded here per PR so regressions are visible.
"""

from __future__ import annotations

import time

from repro import APOTS, FeatureConfig, SimulationConfig, TrafficDataset, simulate
from repro.core import save_model
from repro.data import ReferenceProfile
from repro.mlops import (
    ContinualController,
    ControllerConfig,
    DriftConfig,
    ErrorDriftMonitor,
    InputDriftMonitor,
    RetrainSpec,
    TruthReconciler,
)
from repro.serving import ForecastService, Observation

from conftest import BENCH_SEED, record_metric, report, run_once

NUM_SEGMENTS = 64
MONITOR_TICKS = 400


def test_bench_drift_monitor_tick_overhead(benchmark, rng=None):
    """The whole monitor stack, per full-corridor tick, sub-millisecond."""
    import numpy as np

    rng = np.random.default_rng(BENCH_SEED)
    profile = ReferenceProfile.from_speeds(rng.normal(80.0, 10.0, size=20_000))
    config = DriftConfig(error_window=256, input_window=512, check_every=8)
    reconciler = TruthReconciler()
    error_monitor = ErrorDriftMonitor(config)
    input_monitor = InputDriftMonitor(profile, config)
    speeds = rng.normal(80.0, 10.0, size=(MONITOR_TICKS + 1, NUM_SEGMENTS))

    def run() -> float:
        seconds = 0.0
        for step in range(MONITOR_TICKS):
            # File one forecast per segment, as predict() would.
            for segment in range(NUM_SEGMENTS):
                reconciler.record(
                    segment, step + 1, float(speeds[step + 1, segment]) + 2.0, 80.0
                )
            batch = [
                Observation(
                    segment_id=segment,
                    step=step + 1,
                    speed_kmh=float(speeds[step + 1, segment]),
                    event=0.0,
                )
                for segment in range(NUM_SEGMENTS)
            ]
            start = time.perf_counter()
            samples = reconciler.reconcile(batch)
            error_monitor.observe(samples)
            input_monitor.observe(batch)
            seconds += time.perf_counter() - start
        return seconds

    seconds = run_once(benchmark, run)
    per_tick_ms = seconds / MONITOR_TICKS * 1e3
    record_metric(
        "test_bench_drift_monitor_tick_overhead",
        per_tick_ms=per_tick_ms,
        segments=NUM_SEGMENTS,
    )
    report(
        "## MLOps: drift-monitor overhead per tick "
        f"({NUM_SEGMENTS} segments x {MONITOR_TICKS} ticks)\n"
        f"reconcile + error window + PSI: {per_tick_ms:8.4f} ms/tick "
        "(required < 1 ms)"
    )
    assert per_tick_ms < 1.0


def test_bench_detect_to_swap_latency(benchmark, bench_preset, tmp_path):
    """Trigger-to-new-champion wall time: retrain + shadow + hot swap."""
    base = simulate(SimulationConfig(num_days=4, seed=BENCH_SEED))
    shifted = simulate(
        SimulationConfig(
            num_days=4, seed=BENCH_SEED + 1, congestion_knee=0.55, base_demand=0.45
        )
    )
    dataset = TrafficDataset(base, FeatureConfig(beta=1), seed=0)
    model = APOTS(predictor="F", adversarial=False, preset=bench_preset, seed=0)
    model.fit(dataset)
    champion = save_model(model, tmp_path / "champion")

    service = ForecastService.from_checkpoint(champion, base.num_segments)
    controller = ContinualController(
        service,
        champion,
        tmp_path / "work",
        config=ControllerConfig(
            # The trigger is driven below; keep the monitors quiet.
            drift=DriftConfig(error_ratio=50.0, psi_threshold=50.0, mean_shift_kmh=500.0),
            retrain=RetrainSpec(epochs=2, batch_size=32, min_windows=48),
            min_history_steps=64,
        ),
    )

    def feed(series, steps) -> None:
        for step in steps:
            controller.ingest_tick(
                Observation(
                    segment_id=segment,
                    step=step,
                    speed_kmh=float(series.speeds[segment, step]),
                    event=float(series.events[segment, step]),
                    temperature=float(series.temperature[step]),
                    precipitation=float(series.precipitation[step]),
                    day_type=tuple(series.day_types[step]),
                )
                for segment in range(series.num_segments)
            )

    # History holds a day of the *shifted* regime: the fine-tuned
    # challenger beats the base-regime champion, so the pipeline swaps.
    feed(shifted, range(320))

    def pipeline() -> float:
        from repro.mlops.drift import DriftDecision

        start = time.perf_counter()
        controller._run_pipeline(
            DriftDecision(monitor="error", reason="bench", step=320, stats={})
        )
        return time.perf_counter() - start

    seconds = run_once(benchmark, pipeline)
    record_metric(
        "test_bench_detect_to_swap_latency",
        detect_to_swap_s=seconds,
        swapped=controller.swap_count,
    )
    report(
        "## MLOps: detect-to-swap latency (retrain + shadow + swap, "
        f"{base.num_segments} segments, preset {bench_preset})\n"
        f"trigger -> new champion: {seconds:8.2f} s "
        f"(swapped: {bool(controller.swap_count)})"
    )
    assert controller.trigger_count == 1
    assert controller.swap_count == 1  # the challenger must actually win
