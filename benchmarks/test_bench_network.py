"""Bench: network scenario-engine throughput across city sizes.

Simulation throughput (segment-steps/s) at ~100 / ~1k / ~5k segments,
plus gravity-OD build-and-assign wall time on the 1k city.  All numbers
land in ``BENCH_<preset>.json`` via :func:`record_metric` so the perf
trajectory of the wave engine can be diffed across PRs.
"""

import time

from conftest import BENCH_SEED, record_metric, report, run_once

from repro.network import (
    gravity_od_matrix,
    grid_city,
    segment_demand_weights,
    simulate_network,
    zones_from_graph,
)
from repro.traffic.types import SimulationConfig

# Junction grids sized to land near the ISSUE's 100 / 1k / 5k segment tiers:
# segments = 2 * (rows*(cols-1) + cols*(rows-1)).
GRIDS = {"100": (5, 6), "1k": (16, 17), "5k": (35, 37)}


def _simulate(rows: int, cols: int) -> tuple[int, int, float]:
    graph = grid_city(rows, cols, seed=0)
    config = SimulationConfig(num_days=1, seed=BENCH_SEED)
    started = time.perf_counter()
    series = simulate_network(graph, config)
    elapsed = time.perf_counter() - started
    return len(graph), series.num_steps, elapsed


def test_network_sim_throughput(benchmark):
    def sweep():
        return {tier: _simulate(*dims) for tier, dims in GRIDS.items()}

    results = run_once(benchmark, sweep)
    lines = []
    for tier, (segments, steps, elapsed) in results.items():
        throughput = segments * steps / elapsed
        record_metric(
            "test_network_sim_throughput",
            **{
                f"segments_{tier}": segments,
                f"sim_s_{tier}": round(elapsed, 4),
                f"segment_steps_per_s_{tier}": round(throughput, 1),
            },
        )
        lines.append(
            f"{tier:>4}: {segments} segments x {steps} steps in {elapsed:.2f}s "
            f"({throughput:,.0f} segment-steps/s)"
        )
    report("network sim throughput\n" + "\n".join(lines))
    # Throughput should not fall off a cliff with size (vectorised
    # engine: the 5k city must stay within 20x of the 100-segment rate).
    small = results["100"][0] * results["100"][1] / results["100"][2]
    large = results["5k"][0] * results["5k"][1] / results["5k"][2]
    assert large > small / 20.0


def test_gravity_od_wall_time(benchmark):
    graph = grid_city(*GRIDS["1k"], seed=0)

    def build():
        zones = zones_from_graph(graph, seed=BENCH_SEED)
        od = gravity_od_matrix(zones)
        return segment_demand_weights(graph, od)

    started = time.perf_counter()
    weights = run_once(benchmark, build)
    elapsed = time.perf_counter() - started
    record_metric(
        "test_gravity_od_wall_time",
        segments=len(graph),
        zones=graph.num_zones,
        od_build_s=round(elapsed, 4),
    )
    report(
        f"gravity OD on {len(graph)} segments / {graph.num_zones} zones: "
        f"{elapsed:.3f}s"
    )
    assert weights.shape == (len(graph),)
    assert weights.min() >= 0.6 and weights.max() <= 1.6
