"""Parallel-substrate benchmarks: pool overhead and real-path speedups.

Three measurements:

* **pool concurrency** — 16 I/O-shaped tasks (sleeps) over 4 workers vs
  serial.  This isolates the pool machinery (dispatch, heartbeats,
  result collection) from CPU contention, so the ≥2x assertion holds on
  any machine, including single-core CI runners.
* **grid-search path** — ``core.tuning.grid_search`` over 4 candidate
  trainings, ``workers=4`` vs ``workers=1``.
* **epsilon-sweep path** — ``attacks.harness.evaluate_robustness`` over
  a 4-point PGD epsilon grid, ``workers=4`` vs ``workers=1``.

The two real paths are CPU-bound numpy, so their parallel speedup is
physically capped by the core count: with ``EFFECTIVE_CORES >= 2`` the
benches assert ≥2x (4 workers leave headroom over the 2x bar), below
that they only record the measured ratio into ``BENCH_<preset>.json`` —
a 1-core container cannot speed up CPU-bound work and pretending
otherwise would just institutionalise a flaky benchmark.  Either way
the parallel run must reproduce the serial numbers exactly.
"""

from __future__ import annotations

import os
import time

from repro import APOTS, FeatureConfig, SimulationConfig, TrafficDataset, simulate
from repro.attacks import EvalSlice, evaluate_robustness
from repro.core.config import ScalePreset
from repro.core.tuning import grid_search
from repro.parallel import WorkerPool

from conftest import BENCH_SEED, record_metric, report, run_once

WORKERS = 4
EFFECTIVE_CORES = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
    os.cpu_count() or 1
)
#: CPU-bound speedup assertions only make sense with real parallel hardware.
ASSERT_CPU_SPEEDUP = EFFECTIVE_CORES >= 2

SLEEP_TASKS = 16
SLEEP_S = 0.05

GRID_PRESET = ScalePreset(
    name="bench-parallel",
    num_days=8,
    width_factor=0.25,
    epochs=3,
    adversarial_epochs=1,
    batch_size=64,
    adversarial_batch_size=8,
)
EPSILONS_KMH = (1.0, 2.5, 5.0, 10.0)
PGD_STEPS = 12
SWEEP_SAMPLES = 64


def _sleep_task(_: int) -> float:
    time.sleep(SLEEP_S)
    return SLEEP_S


def test_bench_pool_concurrency(benchmark):
    def run() -> dict:
        serial_started = time.perf_counter()
        WorkerPool(1).map(_sleep_task, range(SLEEP_TASKS))
        serial_s = time.perf_counter() - serial_started
        parallel_started = time.perf_counter()
        WorkerPool(WORKERS).map(_sleep_task, range(SLEEP_TASKS))
        parallel_s = time.perf_counter() - parallel_started
        return {"serial_s": serial_s, "parallel_s": parallel_s,
                "speedup": serial_s / parallel_s}

    result = run_once(benchmark, run)
    record_metric("test_bench_pool_concurrency", workers=WORKERS, **result)
    report(
        f"pool concurrency ({SLEEP_TASKS} x {SLEEP_S:.2f}s tasks): "
        f"serial {result['serial_s']:.2f}s, {WORKERS} workers "
        f"{result['parallel_s']:.2f}s -> {result['speedup']:.1f}x"
    )
    assert result["speedup"] >= 2.0, (
        f"pool gained only {result['speedup']:.2f}x on I/O-shaped tasks; "
        f"dispatch overhead is eating the concurrency"
    )


def _bench_dataset() -> TrafficDataset:
    series = simulate(SimulationConfig(num_days=8, seed=BENCH_SEED))
    return TrafficDataset(series, FeatureConfig(alpha=12, beta=1, m=2), seed=0)


def test_bench_grid_search_parallel(benchmark):
    dataset = _bench_dataset()
    grid = {"learning_rate": [0.0005, 0.001, 0.003, 0.01]}

    def run() -> dict:
        serial_started = time.perf_counter()
        serial = grid_search("F", dataset, GRID_PRESET, train_grid=grid, seed=0, workers=1)
        serial_s = time.perf_counter() - serial_started
        parallel_started = time.perf_counter()
        parallel = grid_search(
            "F", dataset, GRID_PRESET, train_grid=grid, seed=0, workers=WORKERS
        )
        parallel_s = time.perf_counter() - parallel_started
        assert [e["validation_mape"] for e in serial.entries] == [
            e["validation_mape"] for e in parallel.entries
        ], "parallel grid search changed the scores"
        return {"serial_s": serial_s, "parallel_s": parallel_s,
                "speedup": serial_s / parallel_s, "candidates": len(serial.entries)}

    result = run_once(benchmark, run)
    record_metric(
        "test_bench_grid_search_parallel",
        workers=WORKERS, effective_cores=EFFECTIVE_CORES, **result,
    )
    report(
        f"grid search ({result['candidates']} candidates): serial "
        f"{result['serial_s']:.2f}s, {WORKERS} workers {result['parallel_s']:.2f}s "
        f"-> {result['speedup']:.2f}x ({EFFECTIVE_CORES} cores)"
    )
    if ASSERT_CPU_SPEEDUP:
        assert result["speedup"] >= 2.0, (
            f"grid search gained only {result['speedup']:.2f}x "
            f"with {WORKERS} workers on {EFFECTIVE_CORES} cores"
        )


def test_bench_epsilon_sweep_parallel(benchmark):
    dataset = _bench_dataset()
    model = APOTS(predictor="F", adversarial=False, preset="smoke", seed=0)
    model.fit(dataset)
    indices = dataset.subset("test")[:SWEEP_SAMPLES]
    batch = dataset.batch(indices)
    eval_slice = EvalSlice(
        batch.images, batch.day_types, batch.targets,
        dataset.features.targets_kmh[indices],
        dataset.features.last_input_kmh[indices],
    )

    def sweep(workers: int):
        return evaluate_robustness(
            model.predictor, model.scalers, eval_slice,
            attack_name="pgd", epsilons_kmh=EPSILONS_KMH,
            seed=0, steps=PGD_STEPS, workers=workers,
        )

    def run() -> dict:
        serial_started = time.perf_counter()
        serial = sweep(1)
        serial_s = time.perf_counter() - serial_started
        parallel_started = time.perf_counter()
        parallel = sweep(WORKERS)
        parallel_s = time.perf_counter() - parallel_started
        assert serial.render() == parallel.render(), "parallel sweep changed the report"
        return {"serial_s": serial_s, "parallel_s": parallel_s,
                "speedup": serial_s / parallel_s}

    result = run_once(benchmark, run)
    record_metric(
        "test_bench_epsilon_sweep_parallel",
        workers=WORKERS, effective_cores=EFFECTIVE_CORES,
        epsilons=len(EPSILONS_KMH), **result,
    )
    report(
        f"epsilon sweep ({len(EPSILONS_KMH)} x PGD-{PGD_STEPS} on {SWEEP_SAMPLES} "
        f"windows): serial {result['serial_s']:.2f}s, {WORKERS} workers "
        f"{result['parallel_s']:.2f}s -> {result['speedup']:.2f}x ({EFFECTIVE_CORES} cores)"
    )
    if ASSERT_CPU_SPEEDUP:
        assert result["speedup"] >= 2.0, (
            f"epsilon sweep gained only {result['speedup']:.2f}x "
            f"with {WORKERS} workers on {EFFECTIVE_CORES} cores"
        )
