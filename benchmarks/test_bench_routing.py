"""Bench: the route-guidance application layer end to end."""

import numpy as np
from conftest import BENCH_SEED, report, run_once

from repro.data import FactorMask
from repro.experiments.scenario import get_series, make_dataset, train_model
from repro.routing import Detour, evaluate_advisories, predicted_speed_field
from repro.routing.travel_time import traverse_time_minutes


def test_route_guidance(benchmark, bench_preset):
    def pipeline():
        series = get_series(bench_preset, BENCH_SEED)
        dataset = make_dataset(bench_preset, mask=FactorMask.both(), seed=BENCH_SEED)
        model = train_model("F", dataset, bench_preset, adversarial=False, seed=BENCH_SEED)
        field = predicted_speed_field(model, dataset)
        free = traverse_time_minutes(
            series.corridor, np.full_like(series.speeds, 100.0), 0, series.interval_minutes
        )
        detour = Detour(length_km=free * 1.35 / 60.0 * 55.0, speed_kmh=55.0)
        departures = np.arange(0, series.num_steps - 48, 53)
        forecast = evaluate_advisories(series, field, departures, detour)
        oracle = evaluate_advisories(series, series.speeds, departures, detour, margin_minutes=0.0)
        return forecast, oracle

    forecast, oracle = run_once(benchmark, pipeline)
    report(f"forecast: {forecast.render()}\noracle  : {oracle.render()}")
    # The forecast-driven advisory must capture real savings (> 0) and
    # cannot beat perfect information.
    assert forecast.minutes_saved <= oracle.minutes_possible + 1e-9
