"""Serving-layer benchmark: micro-batch throughput and cache efficiency.

Serves a 68-segment corridor from one trained checkpoint and replays a
synthetic observation stream, comparing

* a per-request loop (one forward per segment query) against the
  micro-batched ``predict_many`` path — the batched path must be at
  least 5x faster per forecast; and
* a repeated-query replay (many dashboard users per tick) — the
  TTL+LRU forecast cache must absorb > 90 % of requests.
"""

from __future__ import annotations

import time

import pytest

from repro import APOTS, FeatureConfig, SimulationConfig, TrafficDataset, simulate
from repro.serving import ForecastService, Observation
from repro.traffic import Corridor

from conftest import BENCH_SEED, report, run_once

#: Corridor served online; m=2 leaves NUM_SEGMENTS - 4 servable segments.
NUM_SEGMENTS = 68
WARMUP_TICKS = 12
MEASURE_TICKS = 30
#: Dashboard queries per segment per tick in the cache replay.
QUERIES_PER_TICK = 12


@pytest.fixture(scope="module")
def serving_model(bench_preset):
    """The paper's H (CNN+LSTM) predictor trained offline."""
    series = simulate(SimulationConfig(num_days=8, seed=BENCH_SEED))
    dataset = TrafficDataset(series, FeatureConfig(alpha=12, beta=1, m=2), seed=0)
    model = APOTS(predictor="H", adversarial=False, preset=bench_preset, seed=0)
    model.fit(dataset)
    return model


@pytest.fixture(scope="module")
def stream_series():
    """One day of observations for the big served corridor."""
    corridor = Corridor.gyeongbu(num_segments=NUM_SEGMENTS)
    return simulate(SimulationConfig(num_days=1, seed=BENCH_SEED + 1), corridor=corridor)


def feed(service: ForecastService, series, steps) -> None:
    for step in steps:
        service.ingest_many(
            Observation(
                segment_id=segment,
                step=step,
                speed_kmh=float(series.speeds[segment, step]),
                event=float(series.events[segment, step]),
                temperature=float(series.temperature[step]),
                precipitation=float(series.precipitation[step]),
                day_type=tuple(series.day_types[step]),
            )
            for segment in range(series.num_segments)
        )


def test_bench_micro_batch_throughput(benchmark, serving_model, stream_series):
    service = ForecastService(serving_model, num_segments=NUM_SEGMENTS, max_batch_size=64)
    servable = list(range(2, NUM_SEGMENTS - 2))
    feed(service, stream_series, range(WARMUP_TICKS))
    predictor = serving_model.predictor

    def replay() -> dict:
        # Phase A: per-request loop — one forward per queried segment.
        loop_seconds = 0.0
        tick = WARMUP_TICKS
        for tick in range(WARMUP_TICKS, WARMUP_TICKS + MEASURE_TICKS):
            feed(service, stream_series, [tick])
            start = time.perf_counter()
            for segment in servable:
                view = service.store.window(segment)
                predictor.predict(view.image[None], view.day_type[None], view.flat[None])
            loop_seconds += time.perf_counter() - start
        # Phase B: the same workload through the micro-batcher.
        batched_seconds = 0.0
        for tick in range(tick + 1, tick + 1 + MEASURE_TICKS):
            feed(service, stream_series, [tick])
            start = time.perf_counter()
            service.predict_many(servable, use_cache=False)
            batched_seconds += time.perf_counter() - start
        forecasts = MEASURE_TICKS * len(servable)
        return {
            "loop_per_s": forecasts / loop_seconds,
            "batched_per_s": forecasts / batched_seconds,
            "speedup": loop_seconds / batched_seconds,
            "snapshot": service.snapshot(),
        }

    result = run_once(benchmark, replay)
    snap = result["snapshot"]
    batch_sizes = snap["histograms"]["batch_size"]
    latency = snap["histograms"]["predict_many_latency_ms"]
    report(
        "## Serving: micro-batch throughput "
        f"({len(servable)} segments x {MEASURE_TICKS} ticks)\n"
        f"per-request loop : {result['loop_per_s']:10.0f} forecasts/s\n"
        f"predict_many     : {result['batched_per_s']:10.0f} forecasts/s\n"
        f"speedup          : {result['speedup']:10.1f}x (required >= 5x)\n"
        f"batch size       : mean {batch_sizes['mean']:.1f}, max {batch_sizes['max']:.0f}\n"
        f"predict_many lat : p50 {latency['p50']:.2f} ms, p99 {latency['p99']:.2f} ms"
    )
    assert result["speedup"] >= 5.0


def test_bench_cache_hit_rate(benchmark, serving_model, stream_series):
    service = ForecastService(serving_model, num_segments=NUM_SEGMENTS, max_batch_size=64)
    servable = list(range(2, NUM_SEGMENTS - 2))
    feed(service, stream_series, range(WARMUP_TICKS))

    def replay() -> dict:
        # Every tick, QUERIES_PER_TICK dashboard users ask for the whole
        # corridor; only the first user per tick should compute anything.
        for tick in range(WARMUP_TICKS, WARMUP_TICKS + MEASURE_TICKS):
            feed(service, stream_series, [tick])
            for _ in range(QUERIES_PER_TICK):
                service.predict_many(servable)
        return service.snapshot()

    snap = run_once(benchmark, replay)
    cache = snap["cache"]
    latency = snap["histograms"]["predict_many_latency_ms"]
    report(
        "## Serving: cache efficiency on a repeated-query replay "
        f"({QUERIES_PER_TICK} queries/segment/tick)\n"
        f"requests  : {snap['counters']['requests']:.0f}\n"
        f"hit rate  : {cache['hit_rate']:.3f} (required > 0.9)\n"
        f"cache size: {cache['size']} entries, "
        f"{cache['lru_evictions']} LRU / {cache['ttl_evictions']} TTL evictions\n"
        f"predict_many lat: p50 {latency['p50']:.2f} ms, p99 {latency['p99']:.2f} ms"
    )
    assert cache["hit_rate"] > 0.9
