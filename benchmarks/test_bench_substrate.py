"""Micro-benchmarks of the substrates: nn primitives and the simulator.

These time the hot paths every experiment exercises thousands of times:
a predictor forward/backward step, conv and LSTM primitives, and the
corridor simulator's step throughput.
"""

import time

import numpy as np
import pytest

from conftest import record_metric
from repro import nn
from repro.core import Discriminator, TrainSpec, build_predictor, table1_spec
from repro.core.adversarial import APOTSTrainer
from repro.data import FeatureConfig
from repro.traffic import SimulationConfig, simulate


@pytest.fixture(scope="module")
def features():
    return FeatureConfig()


def test_linear_forward_backward(benchmark):
    rng = np.random.default_rng(0)
    layer = nn.Linear(128, 128, rng=rng)
    x = nn.Tensor(rng.normal(size=(256, 128)), requires_grad=True)

    def step():
        layer.zero_grad()
        out = layer(x).relu()
        (out * out).mean().backward()

    benchmark(step)


def test_conv2d_forward_backward(benchmark):
    rng = np.random.default_rng(1)
    conv = nn.Conv2d(1, 32, 3, padding=1, rng=rng)
    x = nn.Tensor(rng.normal(size=(64, 1, 9, 12)), requires_grad=True)

    def step():
        conv.zero_grad()
        out = conv(x)
        (out * out).mean().backward()

    benchmark(step)


def test_lstm_forward_backward(benchmark):
    rng = np.random.default_rng(2)
    lstm = nn.LSTM(9, [64, 64], rng=rng)
    x = nn.Tensor(rng.normal(size=(64, 12, 9)), requires_grad=True)

    def step():
        for p in lstm.parameters():
            p.zero_grad()
        out, _ = lstm(x)
        (out * out).mean().backward()

    benchmark(step)


@pytest.mark.parametrize("kind", ["F", "L", "C", "H"])
def test_predictor_inference(benchmark, features, kind):
    rng = np.random.default_rng(3)
    predictor = build_predictor(kind, features, spec=table1_spec(kind, 0.125), rng=rng)
    images = rng.random((256, features.image_rows, features.alpha))
    day_types = rng.random((256, 4))
    flat = np.concatenate([images.reshape(256, -1), day_types], axis=1)
    benchmark(lambda: predictor.predict(images, day_types, flat))


def test_adversarial_step(benchmark, features):
    """One full P+D adversarial update at medium widths (compiled tapes)."""
    from repro.data import TrafficDataset

    series = simulate(SimulationConfig(num_days=4, seed=1))
    dataset = TrafficDataset(series, features, seed=1)
    spec = table1_spec("F", 0.125)

    def make_trainer(compile: bool) -> APOTSTrainer:
        rng = np.random.default_rng(4)
        predictor = build_predictor("F", features, spec=spec, rng=rng)
        disc = Discriminator(features, spec=spec, rng=rng)
        return APOTSTrainer(
            predictor, disc, TrainSpec(adversarial_batch_size=32, compile=compile)
        )

    anchors = dataset.rollout_anchors("train")[:32]
    batch = dataset.rollout_batch(anchors)
    trainers = {key: make_trainer(key == "compiled") for key in ("eager", "compiled")}

    def step_with(trainer: APOTSTrainer) -> None:
        trainer._discriminator_step(batch, features.alpha)
        trainer._predictor_step(batch, features.alpha)

    # Warm the tapes past record+validate so the timed region measures
    # the trusted-replay steady state (what a training loop runs in).
    # Both trainers start bit-identical and the compiled replay matches
    # eager bitwise, so their weights stay equal through the warmup and
    # the comparison below times identical arithmetic.
    for trainer in trainers.values():
        for _ in range(4):
            step_with(trainer)

    # Machine speed drifts between bench runs, so also record a
    # same-process eager reference: that ratio is comparable across
    # machines even when the absolute timings are not.
    ms_per_step = {}
    for key, trainer in trainers.items():
        start = time.perf_counter()
        for _ in range(20):
            step_with(trainer)
        ms_per_step[key] = 1e3 * (time.perf_counter() - start) / 20
    record_metric(
        "test_adversarial_step",
        eager_ms_per_step=ms_per_step["eager"],
        compiled_ms_per_step=ms_per_step["compiled"],
        speedup_x=ms_per_step["eager"] / ms_per_step["compiled"],
    )
    benchmark(lambda: step_with(trainers["compiled"]))


def test_simulator_throughput(benchmark):
    """Days of corridor simulation per call (10-day series)."""
    benchmark(lambda: simulate(SimulationConfig(num_days=10, seed=9)))
