"""Bench: regenerate Table II (non-speed factor ablation for APOTS_H)."""

from conftest import BENCH_SEED, report, run_once

from repro.experiments import table2


def test_table2(benchmark, bench_preset):
    result = run_once(benchmark, table2.run, preset=bench_preset, seed=BENCH_SEED)
    report(result.render())
    assert set(result.mape) == set(table2.CODES)
