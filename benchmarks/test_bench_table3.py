"""Bench: regenerate Table III (Q3 - the full model grid)."""

import numpy as np
from conftest import BENCH_SEED, report, run_once

from repro.experiments import table3


def test_table3(benchmark, bench_preset):
    result = run_once(benchmark, table3.run, preset=bench_preset, seed=BENCH_SEED)
    report(result.render())
    best_name, best_value = result.best_model()
    assert np.isfinite(best_value)
    # The paper's headline — Prophet, a calendar model that cannot react
    # to the last hour of traffic, loses to the best neural cell — holds
    # once models are actually trained; the smoke preset deliberately
    # undertrains (3 epochs), so there we only check the grid structure.
    if bench_preset != "smoke":
        prophet = result.cell("Prophet", "speed_only", "without_adv", "mape")
        assert prophet > best_value
    for model in result.neural_models:
        for data_row in ("speed_only", "speed_plus_add"):
            for adv in ("without_adv", "with_adv"):
                assert np.isfinite(result.cell(model, data_row, adv, "mape"))
