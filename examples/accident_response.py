"""Accident response: does the event channel help recovery forecasting?

The paper's non-speed data includes an accident/construction flag.  This
example finds an accident on the target road, then compares APOTS_H
trained with and without the Event factor (Table II's SE-vs-S contrast)
on the recovery trace — the situation a route-guidance system cares
about most.

Run with::

    python examples/accident_response.py [preset]
"""

import sys

from repro.data import FactorMask
from repro.experiments.fig1 import find_episode
from repro.experiments.fig6 import predict_episode
from repro.experiments.reporting import render_series
from repro.experiments.scenario import get_series, make_dataset, train_model
from repro.metrics import classify_regimes, mape


def main(preset: str = "smoke") -> None:
    seed = 2018
    series = get_series(preset, seed)

    episode = find_episode(series, "accident_recovery")
    if episode is None:
        raise SystemExit("no accident hit the target road in this simulation")
    print(f"accident episode starting {episode.labels[0]} (drop {episode.drop:.0f} km/h)\n")

    # S-T-W: everything except the event flag.
    without_event = make_dataset(preset, mask=FactorMask.table2("SWT"), seed=seed)
    # S-E-W-T: the full non-speed set.
    with_event = make_dataset(preset, mask=FactorMask.table2("SEWT"), seed=seed)

    model_without = train_model("H", without_event, preset, adversarial=True, seed=seed)
    model_with = train_model("H", with_event, preset, adversarial=True, seed=seed)

    traces = {
        "no-event": predict_episode(model_without, without_event, episode),
        "w/ event": predict_episode(model_with, with_event, episode),
    }
    print(
        render_series(
            episode.labels,
            {"Real": episode.speeds_kmh, **traces},
            title="Accident recovery: real vs predicted speed [km/h]",
            stride=2,
        )
    )
    for name, prediction in traces.items():
        print(f"{name:9s} episode MAPE: {mape(prediction, episode.speeds_kmh):6.2f} %")

    # Whole-test-set comparison on the abrupt regimes.
    print("\nwhole test set (abrupt regimes):")
    for name, model, dataset in (
        ("no-event", model_without, without_event),
        ("w/ event", model_with, with_event),
    ):
        report = model.evaluate(dataset)
        print(
            f"  {name:9s} MAPE whole {report.mape:6.2f} %  "
            f"abrupt-dec {report.regime_mape('abrupt_dec'):6.2f} %"
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "smoke")
