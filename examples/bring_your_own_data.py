"""Bring your own data: train APOTS on a raw speed matrix.

Real deployments have detector logs, not a simulator.  This example
shows the ingestion path: a plain (segments x time) km/h matrix plus a
start timestamp is everything APOTS needs — weather/event channels are
optional, and calendar features are derived automatically.

Here the "user data" is itself synthesised (a noisy double-rush-hour
profile) so the script runs offline; swap `make_user_data()` for your
own loader.

Run with::

    python examples/bring_your_own_data.py [preset]
"""

import datetime as dt
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import APOTS, FeatureConfig, TrafficDataset
from repro.metrics import mape
from repro.traffic import load_series, save_series, series_from_arrays


def make_user_data(days: int = 14, segments: int = 5, seed: int = 7) -> np.ndarray:
    """A stand-in for your detector logs: (segments, T) km/h at 5 min."""
    rng = np.random.default_rng(seed)
    steps_per_day = 288
    hours = np.tile(np.arange(steps_per_day) / 12.0, days)
    rush = np.exp(-0.5 * ((hours - 8.0) / 1.5) ** 2) + np.exp(-0.5 * ((hours - 18.5) / 1.5) ** 2)
    base = 95.0 - 55.0 * rush
    speeds = base[None, :] + rng.normal(0.0, 4.0, size=(segments, days * steps_per_day))
    return np.clip(speeds, 8.0, 110.0)


def main(preset: str = "smoke") -> None:
    speeds = make_user_data()
    print(f"raw speed matrix: {speeds.shape[0]} segments x {speeds.shape[1]} five-minute steps")

    series = series_from_arrays(
        speeds,
        start=dt.datetime(2018, 7, 2),
        interval_minutes=5,
        # no weather or incident feed in this deployment
    )

    # Series round-trip through a file, as a preprocessing pipeline would.
    with tempfile.TemporaryDirectory() as workdir:
        path = save_series(series, Path(workdir) / "user_series.npz")
        series = load_series(path)
        print(f"series checkpointed through {path.name}")

    dataset = TrafficDataset(series, FeatureConfig(alpha=12, beta=6, m=2), seed=0)
    model = APOTS(predictor="F", adversarial=True, preset=preset, seed=0)
    model.fit(dataset)

    report = model.evaluate(dataset)
    print(f"\n{model.name} trained on user data:")
    print(f"  test MAPE {report.mape:.2f} % over {report.regime_counts['whole']} samples")

    truth, last = dataset.evaluation_arrays("test")
    print(f"  persistence baseline MAPE {mape(last, truth):.2f} %")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "smoke")
