"""Model zoo shoot-out: APOTS vs classical baselines on one test set.

Reproduces the spirit of the paper's Table III row comparison — a
calendar-driven Prophet-style model cannot react to the last hour of
traffic and loses badly to anything that can, while APOTS adds accuracy
on top of the reactive baselines in the abrupt regimes.

Run with::

    python examples/compare_baselines.py [preset]
"""

import sys

from repro.baselines import (
    ARPredictor,
    HistoricalAverageBaseline,
    LastValueBaseline,
    ProphetForecaster,
)
from repro.data import FactorMask
from repro.experiments.reporting import render_table
from repro.experiments.scenario import make_dataset, train_model
from repro.metrics import all_errors, classify_regimes, mape


def main(preset: str = "smoke") -> None:
    seed = 2018
    dataset = make_dataset(preset, mask=FactorMask.both(), seed=seed)
    truth, last_input = dataset.evaluation_arrays("test")
    regimes = classify_regimes(last_input, truth)
    dec = regimes.abrupt_deceleration

    rows = []

    def add_row(name, prediction):
        errors = all_errors(prediction, truth)
        dec_mape = mape(prediction[dec], truth[dec]) if dec.any() else float("nan")
        rows.append([name, errors["mae"], errors["rmse"], errors["mape"], dec_mape])

    print("fitting baselines ...")
    add_row("Prophet", ProphetForecaster().fit(dataset).predict(dataset))
    add_row("HistoricalAvg", HistoricalAverageBaseline().fit(dataset).predict(dataset))
    add_row("LastValue", LastValueBaseline().fit(dataset).predict(dataset))
    add_row("AR(6)", ARPredictor(order=6).fit(dataset).predict(dataset))

    print("training neural models ...")
    for kind in ("F", "H"):
        plain = train_model(kind, dataset, preset, adversarial=False, seed=seed)
        add_row(kind, plain.predict(dataset))
        full = train_model(kind, dataset, preset, adversarial=True, seed=seed)
        add_row(f"APOTS_{kind}", full.predict(dataset))

    print()
    print(
        render_table(
            ["model", "MAE", "RMSE", "MAPE %", "abrupt-dec MAPE %"],
            rows,
            title=f"Baselines vs APOTS ({len(truth)} test samples, preset={preset})",
        )
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "smoke")
