"""Factor ablation: which contextual signal earns its keep? (Table II)

Trains APOTS_H with each non-speed factor combination of the paper's
Table II (S, SE, SW, ST, ..., SEWT) and prints the MAPE and Eq 9 gain of
each.  The paper finds Time >> Weather > Event; at small presets the
ordering is noisy but the harness is identical.

Run with::

    python examples/factor_ablation.py [preset] [predictor]
"""

import sys

from repro.experiments import table2


def main(preset: str = "smoke", kind: str = "H") -> None:
    print(f"running the Table II factor ablation for APOTS_{kind} at preset={preset!r} ...")
    result = table2.run(preset=preset, kind=kind)
    print()
    print(result.render())

    best = min(result.mape, key=result.mape.get)
    print(f"\nbest factor set: {best} (MAPE {result.mape[best]:.2f} %)")
    single_factors = {"SE": "Event", "SW": "Weather", "ST": "Time"}
    ranked = sorted(single_factors, key=result.gain, reverse=True)
    print("single-factor impact ranking:", " > ".join(single_factors[c] for c in ranked))


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "smoke",
        sys.argv[2] if len(sys.argv) > 2 else "H",
    )
