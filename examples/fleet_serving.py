"""Fleet serving: shard a corridor, survive a crash, find the knee.

Trains a small APOTS model, checkpoints it, then brings up a 2-shard
:class:`repro.fleet.ForecastFleet` — two replica processes, each
hosting a full :class:`repro.serving.ForecastService` for its half of
the corridor.  The demo shows the three properties the fleet layer
exists for:

1. **Shard transparency** — a mixed ``predict_many`` batch answered by
   the fleet is bitwise identical to a single in-process service fed
   the same stream (verified live).
2. **Graceful degradation** — one replica is hard-killed mid-demo; its
   segments shed to naive persistence while the survivor keeps serving
   model forecasts.
3. **Load shedding under saturation** — a deterministic open-loop
   replay (:mod:`repro.fleet.loadgen`) sweeps rate multipliers until
   the admission queues overflow and the shed rate lifts off zero.

Run with::

    python examples/fleet_serving.py [preset]

where ``preset`` is ``smoke`` (default), ``medium`` or ``paper``.
"""

import json
import sys
import tempfile

from repro import APOTS, FeatureConfig, SimulationConfig, TrafficDataset, simulate
from repro.core import save_model
from repro.fleet import ArrivalSchedule, ForecastFleet, run_open_loop
from repro.serving import Observation

WARM_TICKS = 15


def observation(series, segment: int, step: int) -> Observation:
    """What a roadside feed would emit for one segment at one tick."""
    return Observation(
        segment_id=segment,
        step=step,
        speed_kmh=float(series.speeds[segment, step]),
        event=float(series.events[segment, step]),
        temperature=float(series.temperature[step]),
        precipitation=float(series.precipitation[step]),
        day_type=tuple(series.day_types[step]),
    )


def replay(fleet, series, steps) -> None:
    for step in steps:
        fleet.ingest_many(
            observation(series, segment, step)
            for segment in range(series.num_segments)
        )


def main(preset: str = "smoke") -> None:
    print("simulating corridor traffic ...")
    series = simulate(SimulationConfig(num_days=6, seed=2018))

    print(f"training APOTS predictor at preset={preset!r} ...")
    dataset = TrafficDataset(series, FeatureConfig(alpha=12, beta=1, m=2), seed=0)
    model = APOTS(predictor="F", adversarial=False, preset=preset, seed=0)
    model.fit(dataset)

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        save_model(model, checkpoint_dir)
        query = [4, 0, 7, 2, 2, 8, 5, 1, 3, 6, 4]

        # 1. Shard transparency: 2 replica processes vs 1 in-process
        #    service, same checkpoint, same stream, same answers.
        print("\n[1] shard transparency: fleet(shards=2) vs fleet(shards=1)")
        with ForecastFleet(checkpoint_dir, series.num_segments, shards=1) as single:
            replay(single, series, range(WARM_TICKS))
            reference = single.predict_many(query)
        with ForecastFleet(checkpoint_dir, series.num_segments, shards=2) as fleet:
            replay(fleet, series, range(WARM_TICKS))
            answers = fleet.predict_many(query)
            identical = answers == reference
            print(f"    {len(query)} mixed queries, bitwise identical: {identical}")
            assert identical, "sharding must not change a single forecast"

            # 2. Graceful degradation: kill one replica mid-serve.
            lost = 1
            lo, hi = fleet.shard_map.owned_range(lost)
            print(f"\n[2] killing shard {lost} (segments {lo}..{hi - 1}) ...")
            fleet.kill_replica(lost)
            forecasts = fleet.predict_many(range(series.num_segments))
            for forecast in forecasts:
                tag = "SHED " if forecast.degraded_reason and "load shed" in (
                    forecast.degraded_reason
                ) else ""
                print(
                    f"    segment {forecast.segment_id}: "
                    f"{forecast.speed_kmh:6.1f} km/h  {tag}({forecast.source})"
                )
            print(f"    lost shards now: {fleet.lost_shards}")

        # 3. Saturation: open-loop replay, rate swept until sheds begin.
        print("\n[3] open-loop saturation sweep (deterministic schedule)")
        for rate in (10.0, 100.0):
            schedule = ArrivalSchedule.from_series(
                series,
                seed=7,
                rate=rate,
                ticks=8,
                start_step=WARM_TICKS,
                queries_per_tick=16.0,
                tick_seconds=0.25,
            )
            with ForecastFleet(
                checkpoint_dir,
                series.num_segments,
                shards=2,
                max_queue_per_shard=8,
            ) as fleet:
                replay(fleet, series, range(WARM_TICKS))
                print(f"    {run_open_loop(fleet, schedule).render()}")

        # The operator's fleet-wide view.
        with ForecastFleet(checkpoint_dir, series.num_segments, shards=2) as fleet:
            replay(fleet, series, range(3))
            snapshot = fleet.snapshot()
        print("\nfleet snapshot (operator view):")
        print(json.dumps({k: v for k, v in snapshot.items() if k != "replicas"},
                         indent=2, default=float))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "smoke")
