"""Quickstart: simulate a corridor, train APOTS_H, evaluate per regime.

Run with::

    python examples/quickstart.py [preset]

where ``preset`` is ``smoke`` (default, ~1 minute), ``medium`` or
``paper``.
"""

import sys

from repro import APOTS, FeatureConfig, SimulationConfig, TrafficDataset, simulate


def main(preset: str = "smoke") -> None:
    # 1. Simulate 2 weeks of Gyeongbu-corridor traffic at 5-minute
    #    resolution (the stand-in for the paper's Hyundai dataset).
    print("simulating corridor traffic ...")
    series = simulate(SimulationConfig(num_days=14, seed=2018))
    print(
        f"  {series.num_segments} road segments x {series.num_steps} steps, "
        f"mean target-road speed {series.target_speeds().mean():.1f} km/h"
    )

    # 2. Build windows: 12 past speeds (1 hour) + adjacent roads +
    #    event/weather/time channels; 80/20 split with a validation set.
    features = FeatureConfig(alpha=12, beta=6, m=2)
    dataset = TrafficDataset(series, features, seed=0)
    train, validation, test = dataset.split.sizes
    print(f"  windows: train={train} validation={validation} test={test}")

    # 3. Train the full model: Hybrid (CNN+LSTM) predictor with
    #    adversarial training and the conditional discriminator (Eq 4).
    print(f"training APOTS_H at preset={preset!r} ...")
    model = APOTS(predictor="H", adversarial=True, conditional=True, preset=preset, seed=0)
    model.fit(dataset, verbose=True)

    # 4. Evaluate on the held-out windows, overall and per abrupt-change
    #    regime (Eq 7/8, theta = +-0.3).
    report = model.evaluate(dataset)
    print(f"\n{model.name} on {report.regime_counts['whole']} test samples:")
    print(f"  MAE  {report.mae:6.2f} km/h")
    print(f"  RMSE {report.rmse:6.2f} km/h")
    print(f"  MAPE {report.mape:6.2f} %")
    for regime in ("normal", "abrupt_acc", "abrupt_dec"):
        count = report.regime_counts[regime]
        mape = report.regime_mape(regime)
        print(f"  {regime:10s} ({count:5d} samples): MAPE {mape:6.2f} %")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "smoke")
