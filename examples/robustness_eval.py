"""Adversarial robustness: attack a checkpointed model, then gate it.

Trains a small APOTS model on simulated corridor traffic, saves it with
the zoo (format v2, scalers included), reloads the checkpoint the way a
red team would receive it, and attacks the held-out test windows with a
physically plausible PGD perturbation at three epsilon budgets —
printing the clean-vs-attacked error table per traffic regime.  A
black-box SPSA run at the middle epsilon shows what an attacker without
weights still achieves through the predict callable alone.

Run with::

    python examples/robustness_eval.py [preset]

where ``preset`` is ``smoke`` (default), ``medium`` or ``paper``.
"""

import sys
import tempfile

from repro import APOTS, FeatureConfig, SimulationConfig, TrafficDataset, simulate
from repro.attacks import EvalSlice, evaluate_robustness
from repro.core import load_model, save_model

EPSILONS_KMH = (2.5, 5.0, 10.0)
MAX_SAMPLES = 96


def test_slice(dataset, max_samples: int) -> EvalSlice:
    """The held-out windows in the harness's array form."""
    indices = dataset.subset("test")[:max_samples]
    batch = dataset.batch(indices)
    return EvalSlice(
        images=batch.images,
        day_types=batch.day_types,
        targets_scaled=batch.targets,
        targets_kmh=dataset.features.targets_kmh[indices],
        last_input_kmh=dataset.features.last_input_kmh[indices],
    )


def main(preset: str = "smoke") -> None:
    # 1. Train a victim and write a zoo checkpoint.
    print("simulating corridor traffic ...")
    series = simulate(SimulationConfig(num_days=8, seed=2018))
    dataset = TrafficDataset(series, FeatureConfig(alpha=12, beta=1, m=2), seed=0)
    print(f"training APOTS predictor at preset={preset!r} ...")
    model = APOTS(predictor="H", adversarial=True, preset=preset, seed=0)
    model.fit(dataset)

    # 2. Reload from the checkpoint alone — the attacker's view of a
    #    deployed model (weights + the fitted scalers in the manifest).
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        save_model(model, checkpoint_dir)
        victim = load_model(checkpoint_dir)

    eval_slice = test_slice(dataset, MAX_SAMPLES)
    print(f"attacking {eval_slice.images.shape[0]} held-out windows ...\n")

    # 3. White-box PGD sweep: full-gradient attacker, plausibility box
    #    (speeds stay in [0, 130] km/h, rate-of-change bounded).
    report = evaluate_robustness(
        victim.predictor, victim.scalers, eval_slice,
        attack_name="pgd", epsilons_kmh=EPSILONS_KMH,
        model_name=victim.name, seed=0,
    )
    print(report.render())

    # 4. Black-box SPSA at the middle epsilon: no weights, no gradients,
    #    only the predict callable a serving endpoint exposes.
    spsa = evaluate_robustness(
        victim.predictor, victim.scalers, eval_slice,
        attack_name="spsa", epsilons_kmh=EPSILONS_KMH[1:2],
        model_name=victim.name, seed=0,
    )
    print()
    print(spsa.render())

    white = report.results[1]
    black = spsa.results[0]
    print(
        f"\nat eps={white.epsilon_kmh:.1f} km/h: white-box PGD costs "
        f"+{white.degradation():.3f} km/h MAE, black-box SPSA "
        f"+{black.degradation():.3f} km/h — gradient access matters, but a "
        "query-only attacker still degrades the forecast."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "smoke")
