"""Route guidance: turning speed forecasts into stay/divert advice.

The paper's motivation is ITS route optimisation.  This example closes
the loop: train APOTS, build a predicted speed field for the corridor,
and drive a stay-or-divert advisory, scoring it in minutes saved against
both an always-stay policy and a perfect-information oracle.

Run with::

    python examples/route_guidance.py [preset]
"""

import sys

import numpy as np

from repro.data import FactorMask
from repro.experiments.scenario import get_series, make_dataset, train_model
from repro.routing import Detour, evaluate_advisories, predicted_speed_field
from repro.routing.travel_time import traverse_time_minutes


def main(preset: str = "smoke") -> None:
    seed = 2018
    series = get_series(preset, seed)
    dataset = make_dataset(preset, mask=FactorMask.both(), seed=seed)

    print("training APOTS_F for the advisory ...")
    model = train_model("F", dataset, preset, adversarial=True, seed=seed)

    # The detour: ~35 % longer than the free-flow corridor run.
    free_flow_minutes = traverse_time_minutes(
        series.corridor, np.full_like(series.speeds, 100.0), 0, series.interval_minutes
    )
    detour = Detour(length_km=free_flow_minutes * 1.35 / 60.0 * 55.0, speed_kmh=55.0)
    print(
        f"corridor free-flow time {free_flow_minutes:.1f} min, "
        f"detour {detour.time_minutes:.1f} min"
    )

    field = predicted_speed_field(model, dataset)
    departures = np.arange(0, series.num_steps - 48, 53)

    forecast = evaluate_advisories(series, field, departures, detour)
    oracle_like = evaluate_advisories(series, series.speeds, departures, detour, margin_minutes=0.0)
    never = evaluate_advisories(series, np.full_like(series.speeds, 100.0), departures, detour)

    print(f"\nforecast-driven : {forecast.render()}")
    print(f"perfect info    : {oracle_like.render()}")
    print(f"never divert    : {never.render()}")
    captured = (
        forecast.minutes_saved / oracle_like.minutes_possible
        if oracle_like.minutes_possible > 0
        else float("nan")
    )
    print(f"\nthe forecast captures {captured:.0%} of the oracle's possible saving")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "smoke")
