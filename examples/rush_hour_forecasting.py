"""Rush-hour forecasting: plain predictor vs APOTS on a morning collapse.

The paper's Fig 1a/Fig 6a scenario: weekday morning speeds collapse from
free flow to stop-and-go within half an hour.  This example trains a
plain FC predictor and its APOTS counterpart, replays the worst morning
rush in the simulation, and prints the traces side by side.

Run with::

    python examples/rush_hour_forecasting.py [preset]
"""

import sys

from repro.data import FactorMask
from repro.experiments.fig1 import find_episode
from repro.experiments.fig6 import predict_episode
from repro.experiments.reporting import render_series
from repro.experiments.scenario import get_series, make_dataset, train_model
from repro.metrics import mape


def main(preset: str = "smoke") -> None:
    seed = 2018
    series = get_series(preset, seed)

    episode = find_episode(series, "morning_rush")
    if episode is None:
        raise SystemExit("no rush-hour episode in this simulation; try another seed")
    print(
        f"worst morning rush starts {episode.labels[0]}, "
        f"speed drops {episode.drop:.0f} km/h within 3 hours\n"
    )

    # Plain predictor: speed history only, no adversarial training.
    speed_only = make_dataset(preset, mask=FactorMask.speed_only(), seed=seed)
    plain = train_model("F", speed_only, preset, adversarial=False, seed=seed)

    # Full APOTS: adversarial training + adjacent roads + calendar/weather.
    with_context = make_dataset(preset, mask=FactorMask.both(), seed=seed)
    apots = train_model("F", with_context, preset, adversarial=True, seed=seed)

    traces = {
        "F": predict_episode(plain, speed_only, episode),
        "APOTS_F": predict_episode(apots, with_context, episode),
    }
    print(
        render_series(
            episode.labels,
            {"Real": episode.speeds_kmh, **traces},
            title="Morning rush: real vs predicted speed [km/h]",
            stride=2,
        )
    )
    for name, prediction in traces.items():
        print(f"{name:8s} episode MAPE: {mape(prediction, episode.speeds_kmh):6.2f} %")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "smoke")
