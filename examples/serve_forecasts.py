"""Online serving: train a model, checkpoint it, serve a live stream.

Trains a small APOTS model on simulated corridor traffic, saves it with
the zoo (format v2, scalers included), rebuilds a
:class:`repro.serving.ForecastService` from the checkpoint alone, then
replays the held-out final day as an observation stream — printing live
forecasts against what actually happened, and the telemetry snapshot an
operator dashboard would scrape.

Run with::

    python examples/serve_forecasts.py [preset]

where ``preset`` is ``smoke`` (default), ``medium`` or ``paper``.
"""

import json
import sys
import tempfile

from repro import APOTS, FeatureConfig, SimulationConfig, TrafficDataset, simulate
from repro.core import save_model
from repro.serving import ForecastService, Observation


def observation(series, segment: int, step: int) -> Observation:
    """What a roadside feed would emit for one segment at one tick."""
    return Observation(
        segment_id=segment,
        step=step,
        speed_kmh=float(series.speeds[segment, step]),
        event=float(series.events[segment, step]),
        temperature=float(series.temperature[step]),
        precipitation=float(series.precipitation[step]),
        day_type=tuple(series.day_types[step]),
    )


def main(preset: str = "smoke") -> None:
    # 1. Simulate 8 days; the final day is held out as the live stream.
    print("simulating corridor traffic ...")
    series = simulate(SimulationConfig(num_days=8, seed=2018))
    steps_per_day = 24 * 60 // series.interval_minutes
    history = series.slice_steps(0, series.num_steps - steps_per_day)
    target = series.corridor.target_index

    # 2. Train on the first 7 days and write a zoo checkpoint.
    print(f"training APOTS predictor at preset={preset!r} ...")
    features = FeatureConfig(alpha=12, beta=1, m=2)
    dataset = TrafficDataset(history, features, seed=0)
    model = APOTS(predictor="F", adversarial=False, preset=preset, seed=0)
    model.fit(dataset)

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        save_model(model, checkpoint_dir)

        # 3. Serve from the checkpoint alone: the manifest carries the
        #    fitted scalers, so raw km/h observations go straight in.
        service = ForecastService.from_checkpoint(
            checkpoint_dir, num_segments=series.num_segments
        )

        # 4. Replay the held-out day tick by tick.  Every tick ingests one
        #    observation per segment and asks for the whole corridor's
        #    forecasts in one micro-batched call; the target road is also
        #    queried a few extra times to exercise the cache, as many
        #    dashboard users would.
        print("replaying the held-out day as a live stream ...\n")
        first = series.num_steps - steps_per_day
        print(f"  {'time':>7s} {'observed':>9s} {'forecast':>9s} {'error':>7s}  source")
        for step in range(first, series.num_steps):
            service.ingest_many(
                observation(series, segment, step)
                for segment in range(series.num_segments)
            )
            forecasts = service.predict_many(range(series.num_segments))
            for _ in range(4):  # repeated dashboard queries within the tick
                service.predict(target)
            forecast = forecasts[target]
            if forecast.target_step < series.num_steps and step % 24 == 0:
                observed = series.speeds[target, forecast.target_step]
                stamp = series.timestamps[forecast.target_step].strftime("%H:%M")
                flag = "naive" if forecast.degraded else "model"
                print(
                    f"  {stamp:>7s} {observed:8.1f} {forecast.speed_kmh:9.1f} "
                    f"{forecast.speed_kmh - observed:+7.1f}  {flag}"
                )

        # 5. The operator's view: counters, latency percentiles, batch
        #    sizes and cache efficiency.
        print("\ntelemetry snapshot after one day of serving:")
        print(json.dumps(service.snapshot(), indent=2, default=float))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "smoke")
