"""Reproduction of *APOTS: A Model for Adversarial Prediction of Traffic
Speed* (Kim et al., ICDE 2022).

Subpackages
-----------
``repro.nn``
    From-scratch autograd / neural-network substrate on numpy.
``repro.traffic``
    Synthetic Gyeongbu-corridor traffic simulator (stands in for the
    proprietary Hyundai dataset).
``repro.data``
    Sliding windows, features (Eq 3/5/6), scaling and splits.
``repro.core``
    The APOTS model: predictors F/L/C/H, discriminator, adversarial
    training (Eq 1/2/4), and the :class:`repro.APOTS` facade.
``repro.baselines``
    Prophet-style additive model, naive and AR baselines.
``repro.metrics``
    MAE / RMSE / MAPE, abrupt-change regimes (Eq 7/8), gains (Eq 9).
``repro.experiments``
    Harness regenerating every table and figure of Section V.
``repro.serving``
    Online forecast serving: rolling state ingestion, micro-batching,
    forecast caching and telemetry around a trained checkpoint.
``repro.obs``
    Shared observability: counters/histograms, JSONL run recording
    with manifests, and GAN-health training monitors.
"""

from .core import APOTS, EvaluationReport
from .data import FactorMask, FeatureConfig, TrafficDataset
from .serving import Forecast, ForecastService, Observation
from .traffic import SimulationConfig, TrafficSeries, simulate

__version__ = "1.0.0"

__all__ = [
    "APOTS",
    "EvaluationReport",
    "FactorMask",
    "FeatureConfig",
    "TrafficDataset",
    "SimulationConfig",
    "TrafficSeries",
    "simulate",
    "Forecast",
    "ForecastService",
    "Observation",
    "__version__",
]
