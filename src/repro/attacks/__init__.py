"""Adversarial robustness: input-space attacks, evaluation, defense.

APOTS trains adversarially but the follow-up literature asks the
converse question — how fragile is the trained forecaster to small,
physically plausible perturbations of its *inputs*?  This package
answers it end to end:

* :mod:`~repro.attacks.gradients` — ``d loss / d input`` through the
  autograd substrate;
* :mod:`~repro.attacks.whitebox` — FGSM and PGD over speed windows;
* :mod:`~repro.attacks.blackbox` — SPSA and random noise against any
  predict-style callable (including a live service);
* :mod:`~repro.attacks.constraints` — the plausibility box every attack
  projects onto (speed range + rate-of-change stealthiness);
* :mod:`~repro.attacks.harness` / :mod:`~repro.attacks.report` —
  epsilon sweeps and per-regime clean-vs-attacked reports;
* :mod:`~repro.attacks.defense` — the serving-side
  :class:`PerturbationGate` (the only module ``repro.serving`` may
  import from here).

Layering: may import ``nn`` / ``metrics`` / ``obs`` / ``parallel``;
never ``core`` / ``data`` / ``traffic`` / ``serving`` /
``experiments``.  (``core`` sits *above* this package since
:mod:`repro.core.adversarial_training` reuses the attack primitives for
input-space adversarial training — see ``tools/check_imports.py``.)
"""

from .base import Attack, AttackResult, flatten_windows, speed_rows_kmh, with_speed_rows
from .blackbox import RandomNoiseAttack, SPSAAttack
from .constraints import MAX_PLAUSIBLE_SPEED_KMH, PlausibilityBox
from .defense import GateConfig, GateDecision, PerturbationGate
from .gradients import InputGradient, input_gradient
from .harness import (
    ATTACK_NAMES,
    EvalSlice,
    SweepShardError,
    build_attack,
    evaluate_robustness,
)
from .report import EpsilonResult, RobustnessReport
from .whitebox import FGSMAttack, PGDAttack

__all__ = [
    "Attack",
    "AttackResult",
    "flatten_windows",
    "speed_rows_kmh",
    "with_speed_rows",
    "RandomNoiseAttack",
    "SPSAAttack",
    "MAX_PLAUSIBLE_SPEED_KMH",
    "PlausibilityBox",
    "GateConfig",
    "GateDecision",
    "PerturbationGate",
    "InputGradient",
    "input_gradient",
    "ATTACK_NAMES",
    "EvalSlice",
    "SweepShardError",
    "build_attack",
    "evaluate_robustness",
    "EpsilonResult",
    "RobustnessReport",
    "FGSMAttack",
    "PGDAttack",
]
