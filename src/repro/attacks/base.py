"""Shared attack interface and the km/h <-> scaled-window codec.

Attacks perturb the *adjacent-speed rows* of the window image — the
readings a compromised roadside feed actually controls — in km/h, and
leave the non-speed channels (event, weather, hour, day-type) alone.
The codec here maps between that physical attack surface and the
scaled image/flat arrays the predictors consume, using the model's own
train-fitted scalers so the perturbed windows are bit-compatible with
what serving ingestion would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .constraints import PlausibilityBox

__all__ = [
    "AttackResult",
    "Attack",
    "speed_rows_kmh",
    "with_speed_rows",
    "flatten_windows",
]


def speed_rows_kmh(images: np.ndarray, scalers, num_roads: int) -> np.ndarray:
    """The (B, 2m+1, alpha) adjacent-speed rows of scaled images, in km/h."""
    return scalers.speed.inverse_transform(images[:, :num_roads, :])


def with_speed_rows(images: np.ndarray, speeds_kmh: np.ndarray, scalers, num_roads: int) -> np.ndarray:
    """Copy of ``images`` with the speed rows replaced by ``speeds_kmh``."""
    out = np.array(images, dtype=np.float64, copy=True)
    out[:, :num_roads, :] = scalers.speed.transform(speeds_kmh)
    return out


def flatten_windows(images: np.ndarray, day_types: np.ndarray) -> np.ndarray:
    """The (B, flat_dim) vector the F predictor reads, from image + bits."""
    return np.concatenate([images.reshape(images.shape[0], -1), day_types], axis=1)


@dataclass
class AttackResult:
    """One attacked batch.

    ``images`` are the adversarial scaled window images (non-speed rows
    untouched), ``speeds_kmh`` the perturbed speed rows in km/h, and
    ``losses`` the attack objective observed at each optimisation step
    (length 1 for single-step attacks).
    """

    images: np.ndarray
    speeds_kmh: np.ndarray
    reference_kmh: np.ndarray
    losses: list[float] = field(default_factory=list)

    @property
    def max_abs_delta_kmh(self) -> float:
        """Largest absolute perturbation actually emitted (stealth check)."""
        return float(np.max(np.abs(self.speeds_kmh - self.reference_kmh)))


class Attack:
    """Common interface: perturb scaled window batches within a box.

    Subclasses set :attr:`name` (the id used by the harness, CLI and
    run-log events) and implement :meth:`perturb`.
    """

    name: str = "?"

    def __init__(self, scalers, num_roads: int, constraint: PlausibilityBox):
        if scalers is None:
            raise ValueError(
                "attack needs the model's fitted feature scalers to map the "
                "km/h attack surface onto scaled inputs; fit() the model or "
                "load a format-v2 checkpoint"
            )
        self.scalers = scalers
        self.num_roads = num_roads
        self.constraint = constraint

    def perturb(self, images: np.ndarray, day_types: np.ndarray,
                targets: np.ndarray, recorder=None) -> AttackResult:
        """Return adversarial windows for a batch of scaled inputs.

        ``targets`` are scaled true speeds (the attack maximises squared
        error against them).  ``recorder`` is an optional
        :class:`repro.obs.RunRecorder`; attacks emit one ``attack_step``
        event per optimisation step when given one.
        """
        raise NotImplementedError

    def _record(self, recorder, step: int, loss: float) -> None:
        if recorder is not None:
            recorder.event(
                "attack_step",
                attack=self.name,
                epsilon=self.constraint.epsilon_kmh,
                step=step,
                loss=loss,
            )
