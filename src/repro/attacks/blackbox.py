"""Black-box attacks: SPSA gradient estimation and a random-noise floor.

Neither attack touches autograd — they only need a *predict-style
callable* ``predict_fn(images, day_types, flat) -> (B,) scaled
predictions``.  ``Predictor.predict`` has that signature, and so does a
live ``ForecastService``'s internal forward, so the same attacker works
against a checkpoint on disk or a deployed service it can only query.

SPSA (Spall; used against traffic predictors by Poudel & Li, PAPERS.md)
estimates the loss gradient from paired queries along random Rademacher
directions:

    ghat = (L(x + c*d) - L(x - c*d)) / (2c) * d

averaged over a handful of probes, then ascends its sign exactly like
PGD.  The random-noise attack is the sanity floor: any estimator worth
its queries must beat uniformly sampled plausible perturbations.
"""

from __future__ import annotations

import numpy as np

from .base import Attack, AttackResult, flatten_windows, speed_rows_kmh, with_speed_rows
from .constraints import PlausibilityBox

__all__ = ["SPSAAttack", "RandomNoiseAttack"]


def _per_sample_loss(predict_fn, images, day_types, targets) -> np.ndarray:
    """Squared forecast error per sample, shape (B,)."""
    predictions = np.asarray(predict_fn(images, day_types, flatten_windows(images, day_types)))
    return (predictions.reshape(-1) - np.asarray(targets).reshape(-1)) ** 2


class SPSAAttack(Attack):
    """Simultaneous-perturbation gradient estimation + sign ascent."""

    name = "spsa"

    def __init__(self, predict_fn, scalers, num_roads: int, constraint: PlausibilityBox,
                 steps: int = 8, samples: int = 8, probe_kmh: float = 1.0,
                 step_kmh: float | None = None, seed: int = 0):
        super().__init__(scalers, num_roads, constraint)
        if steps < 1 or samples < 1:
            raise ValueError("steps and samples must be >= 1")
        if probe_kmh <= 0:
            raise ValueError("probe_kmh must be positive")
        self.predict_fn = predict_fn
        self.steps = steps
        self.samples = samples
        self.probe_kmh = probe_kmh
        self.step_kmh = step_kmh if step_kmh is not None else 2.5 * constraint.epsilon_kmh / steps
        self.seed = seed

    def perturb(self, images, day_types, targets, recorder=None) -> AttackResult:
        images = np.asarray(images, dtype=np.float64)
        reference = speed_rows_kmh(images, self.scalers, self.num_roads)
        rng = np.random.default_rng(self.seed)
        attacked = reference.copy()
        losses: list[float] = []
        for step in range(self.steps):
            ghat = np.zeros_like(attacked)
            for _ in range(self.samples):
                direction = rng.choice([-1.0, 1.0], size=attacked.shape)
                plus = with_speed_rows(images, attacked + self.probe_kmh * direction,
                                       self.scalers, self.num_roads)
                minus = with_speed_rows(images, attacked - self.probe_kmh * direction,
                                        self.scalers, self.num_roads)
                loss_plus = _per_sample_loss(self.predict_fn, plus, day_types, targets)
                loss_minus = _per_sample_loss(self.predict_fn, minus, day_types, targets)
                slope = (loss_plus - loss_minus) / (2.0 * self.probe_kmh)
                ghat += slope[:, None, None] * direction
            attacked = attacked + self.step_kmh * np.sign(ghat)
            attacked = self.constraint.project(attacked, reference)
            adv_images = with_speed_rows(images, attacked, self.scalers, self.num_roads)
            loss = float(_per_sample_loss(self.predict_fn, adv_images, day_types, targets).sum())
            losses.append(loss)
            self._record(recorder, step, loss)
        adv_images = with_speed_rows(images, attacked, self.scalers, self.num_roads)
        return AttackResult(adv_images, attacked, reference, losses)


class RandomNoiseAttack(Attack):
    """Best-of-k uniform noise inside the plausibility box (query baseline)."""

    name = "random"

    def __init__(self, predict_fn, scalers, num_roads: int, constraint: PlausibilityBox,
                 tries: int = 8, seed: int = 0):
        super().__init__(scalers, num_roads, constraint)
        if tries < 1:
            raise ValueError("tries must be >= 1")
        self.predict_fn = predict_fn
        self.tries = tries
        self.seed = seed

    def perturb(self, images, day_types, targets, recorder=None) -> AttackResult:
        images = np.asarray(images, dtype=np.float64)
        reference = speed_rows_kmh(images, self.scalers, self.num_roads)
        rng = np.random.default_rng(self.seed)
        best = reference.copy()
        best_loss = _per_sample_loss(self.predict_fn, images, day_types, targets)
        losses: list[float] = []
        for step in range(self.tries):
            noise = rng.uniform(-self.constraint.epsilon_kmh,
                                self.constraint.epsilon_kmh, size=reference.shape)
            candidate = self.constraint.project(reference + noise, reference)
            adv_images = with_speed_rows(images, candidate, self.scalers, self.num_roads)
            loss = _per_sample_loss(self.predict_fn, adv_images, day_types, targets)
            improved = loss > best_loss
            best[improved] = candidate[improved]
            best_loss = np.maximum(best_loss, loss)
            total = float(best_loss.sum())
            losses.append(total)
            self._record(recorder, step, total)
        adv_images = with_speed_rows(images, best, self.scalers, self.num_roads)
        return AttackResult(adv_images, best, reference, losses)
