"""Physical-plausibility constraints on perturbed speed windows.

An input-space attacker who can report arbitrary speeds is trivially
detectable; the threat model that matters for a production forecast
service (Liu et al., Poudel & Li — see PAPERS.md) is an adversary whose
perturbed feed still *looks like traffic*.  :class:`PlausibilityBox`
encodes that feasible set, in the spirit of SA-Attack's stealthiness
constraints:

* an L-infinity budget ``epsilon_kmh`` around the truly observed speeds
  (small absolute perturbations per reading);
* absolute speed bounds — nothing below 0 or above 130 km/h, the
  expressway ceiling, survives even a cursory range check;
* a rate-of-change bound ``max_step_kmh`` on how fast the *perturbation*
  may grow or shrink between consecutive ticks, so the injected series
  keeps the corridor's temporal smoothness instead of adding
  high-frequency noise a jump detector would flag instantly.

Every attack step is projected back onto this set, so whatever the
optimiser proposes, the emitted windows stay physically plausible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PlausibilityBox", "MAX_PLAUSIBLE_SPEED_KMH"]

#: Hard ceiling for any plausible expressway reading (km/h).
MAX_PLAUSIBLE_SPEED_KMH = 130.0


@dataclass(frozen=True)
class PlausibilityBox:
    """The feasible set of perturbed speed windows around a reference.

    Parameters
    ----------
    epsilon_kmh:
        L-infinity perturbation budget per reading, in km/h.
    min_speed_kmh, max_speed_kmh:
        Absolute bounds any emitted speed must respect.
    max_step_kmh:
        Bound on ``|delta[t] - delta[t-1]|`` along the time (last) axis
        of the perturbation ``delta``; ``None`` disables the smoothness
        constraint (a noisier but stronger attacker).
    """

    epsilon_kmh: float
    min_speed_kmh: float = 0.0
    max_speed_kmh: float = MAX_PLAUSIBLE_SPEED_KMH
    max_step_kmh: float | None = 10.0

    def __post_init__(self):
        if self.epsilon_kmh < 0:
            raise ValueError("epsilon_kmh must be non-negative")
        if self.max_speed_kmh <= self.min_speed_kmh:
            raise ValueError("max_speed_kmh must exceed min_speed_kmh")
        if self.max_step_kmh is not None and self.max_step_kmh <= 0:
            raise ValueError("max_step_kmh must be positive (or None)")

    def project(self, speeds_kmh: np.ndarray, reference_kmh: np.ndarray) -> np.ndarray:
        """Project perturbed speeds onto the feasible set around a reference.

        ``reference_kmh`` is the truly observed window; time is the last
        axis.  Returns a new array; inputs are not modified.
        """
        reference = np.asarray(reference_kmh, dtype=np.float64)
        delta = np.asarray(speeds_kmh, dtype=np.float64) - reference
        lo = np.maximum(-self.epsilon_kmh, self.min_speed_kmh - reference)
        hi = np.minimum(self.epsilon_kmh, self.max_speed_kmh - reference)
        # If the reference itself leaves the speed box the bounds can
        # cross; collapse to the nearest feasible point instead of
        # producing an inverted interval.
        lo = np.minimum(lo, hi)
        # clip == minimum(maximum(x, lo), hi) elementwise; two direct
        # ufunc dispatches (np.clip routes through several Python
        # wrapper frames per call), in place — delta is this function's
        # own fresh array.
        np.maximum(delta, lo, out=delta)
        np.minimum(delta, hi, out=delta)
        if self.max_step_kmh is not None:
            # One forward pass: each tick's perturbation may move at most
            # max_step_kmh away from the previous tick's, within the box.
            # The recurrence is sequential along time, so keep the loop
            # but reuse two scratch rows instead of allocating per tick.
            step = self.max_step_kmh
            scratch = np.empty(delta.shape[:-1], dtype=np.float64)
            for t in range(1, delta.shape[-1]):
                previous = delta[..., t - 1]
                current = delta[..., t]
                # The box clamp above already left current >= lo[..., t],
                # so the lower rate bound max(lo_t, previous - step)
                # reduces to previous - step: max(c, max(lo_t, p - s))
                # == max(c, p - s) whenever c >= lo_t.  The upper bound
                # still needs both terms, and the collapsed-interval
                # cases (p - s > hi_t, or p + s < lo_t) land on the same
                # value either way — the min chain picks hi_t in the
                # first and p + s in the second, exactly as clamping
                # with a collapsed interval would.
                np.subtract(previous, step, out=scratch)
                np.maximum(current, scratch, out=current)
                np.add(previous, step, out=scratch)
                np.minimum(hi[..., t], scratch, out=scratch)
                np.minimum(current, scratch, out=current)
        return reference + delta

    def contains(self, speeds_kmh: np.ndarray, reference_kmh: np.ndarray, tol: float = 1e-9) -> bool:
        """Whether ``speeds_kmh`` already lies inside the feasible set."""
        projected = self.project(speeds_kmh, reference_kmh)
        return bool(np.all(np.abs(projected - np.asarray(speeds_kmh, dtype=np.float64)) <= tol))
