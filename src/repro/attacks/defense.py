"""Serving-side defense: screen ingested observations for implausibility.

The :class:`PerturbationGate` is the one piece of ``repro.attacks`` the
serving layer may import (enforced by ``tools/check_imports.py``).  It
inverts the attacker's own feasibility constraints: readings outside
the physical speed range, or jumping faster than traffic plausibly
moves between consecutive ticks, are flagged and the segment is
quarantined for a few ticks — long enough for the service to route its
forecasts through the naive-persistence degradation path instead of
feeding a possibly poisoned window to the model.

Threshold calibration (DESIGN.md §9): the synthetic corridor's natural
per-tick |speed change| has mean ~2.2 km/h and p99 ~10.8 km/h, while
incident onsets reach ~42 km/h — so a jump detector cannot separate
attacks from incidents perfectly.  The default ``max_jump_kmh`` trades
a small false-positive rate on incident ticks (which degrade to naive
persistence, a cheap and safe fallback) for catching any attack that
moves a reading by more than one epsilon-sized step at once.

The gate deliberately imports nothing from ``repro.serving`` (the
dependency points the other way) and keeps only O(segments) state.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GateConfig", "GateDecision", "PerturbationGate"]


@dataclass(frozen=True)
class GateConfig:
    """Plausibility thresholds for ingested speed readings.

    ``max_jump_kmh`` bounds the per-tick change versus the previous
    reading of the same segment; ``quarantine_ticks`` is how many
    subsequent steps a flagged segment stays suspect (so a single
    poisoned tick keeps the window quarantined while it remains inside
    the model's input horizon tail).
    """

    min_speed_kmh: float = 0.0
    max_speed_kmh: float = 130.0
    max_jump_kmh: float = 15.0
    quarantine_ticks: int = 3

    def __post_init__(self):
        if self.max_speed_kmh <= self.min_speed_kmh:
            raise ValueError("max_speed_kmh must exceed min_speed_kmh")
        if self.max_jump_kmh <= 0:
            raise ValueError("max_jump_kmh must be positive")
        if self.quarantine_ticks < 1:
            raise ValueError("quarantine_ticks must be >= 1")


@dataclass(frozen=True)
class GateDecision:
    """Outcome of screening one observation.

    ``safe_speed_kmh`` is the last reading accepted before the segment
    turned suspect — the value the degradation path should persist —
    and is ``None`` when no trusted reading exists yet.
    """

    segment_id: int | str
    step: int
    speed_kmh: float
    suspect: bool
    reason: str | None = None
    safe_speed_kmh: float | None = None


class PerturbationGate:
    """Stateful per-segment plausibility screen for a forecast service."""

    def __init__(self, config: GateConfig | None = None):
        self.config = config if config is not None else GateConfig()
        self._last_reading: dict[int | str, tuple[int, float]] = {}
        self._last_trusted: dict[int | str, float] = {}
        self._quarantined_until: dict[int | str, int] = {}
        self._checks = 0
        self._hits = 0
        self._hits_by_reason: dict[str, int] = {}

    # ------------------------------------------------------------------
    def screen(self, segment_id: int | str, step: int, speed_kmh: float) -> GateDecision:
        """Judge one reading; updates per-segment state either way."""
        cfg = self.config
        self._checks += 1
        reason = None
        if not (cfg.min_speed_kmh <= speed_kmh <= cfg.max_speed_kmh):
            reason = "out_of_range"
        else:
            previous = self._last_reading.get(segment_id)
            if previous is not None and abs(speed_kmh - previous[1]) > cfg.max_jump_kmh:
                reason = "implausible_jump"
        # The jump check always compares to the previous *reading*, even a
        # suspect one: a real incident then re-admits itself after one
        # quarantine (subsequent ticks move slowly from the new level),
        # while an attacker oscillating past the threshold re-triggers.
        self._last_reading[segment_id] = (step, speed_kmh)
        safe = self._last_trusted.get(segment_id)
        if reason is not None:
            self._hits += 1
            self._hits_by_reason[reason] = self._hits_by_reason.get(reason, 0) + 1
            self._quarantined_until[segment_id] = step + cfg.quarantine_ticks
            return GateDecision(segment_id, step, speed_kmh, True, reason, safe)
        if not self.is_quarantined(segment_id, step):
            self._last_trusted[segment_id] = speed_kmh
        return GateDecision(segment_id, step, speed_kmh, False, None, safe)

    # ------------------------------------------------------------------
    def is_quarantined(self, segment_id: int | str, step: int | None = None) -> bool:
        """Whether a segment is still inside its quarantine window."""
        until = self._quarantined_until.get(segment_id)
        if until is None:
            return False
        if step is None:
            last = self._last_reading.get(segment_id)
            step = last[0] if last is not None else until
        return step < until

    def safe_speed(self, segment_id: int | str) -> float | None:
        """Last reading accepted outside quarantine (None if never)."""
        return self._last_trusted.get(segment_id)

    def snapshot(self) -> dict:
        """Counters for telemetry surfaces."""
        return {
            "checks": self._checks,
            "hits": self._hits,
            "hits_by_reason": dict(self._hits_by_reason),
            "quarantined_segments": sorted(
                sid for sid in self._quarantined_until if self.is_quarantined(sid)
            ),
        }

    def reset(self) -> None:
        """Drop all per-segment state and counters."""
        self._last_reading.clear()
        self._last_trusted.clear()
        self._quarantined_until.clear()
        self._checks = 0
        self._hits = 0
        self._hits_by_reason.clear()
