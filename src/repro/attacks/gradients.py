"""Input-space gradients through the autograd substrate.

Training only ever differentiates with respect to *parameters*; the
input arrays are wrapped in plain (non-grad) Tensors.  Attacks need the
converse: ``d loss / d input`` with the weights frozen.
:func:`input_gradient` runs one forward/backward with the window image
as a ``requires_grad`` leaf.

The flat feature vector is rebuilt *inside* the graph from the image
and the day-type bits (exactly how ``repro.data`` derives it), so the
gradient reaches the image through every predictor body: F reads only
``flat``, C/L/H read ``images`` — either way the image leaf sees the
full chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn

__all__ = ["InputGradient", "input_gradient", "CompiledInputGradient"]


@dataclass(frozen=True)
class InputGradient:
    """One forward/backward against the inputs.

    ``grad_images`` is ``d objective / d image`` with shape
    ``(B, image_rows, alpha)``; ``predictions`` the scaled forward
    outputs; ``loss`` the scalar objective that was differentiated.
    """

    grad_images: np.ndarray
    predictions: np.ndarray
    loss: float


def input_gradient(predictor, images: np.ndarray, day_types: np.ndarray,
                   targets: np.ndarray | None = None) -> InputGradient:
    """Gradient of the prediction loss w.r.t. the input window image.

    With ``targets`` (scaled speeds) the objective is the *summed*
    squared error — a sum, not a mean, so each sample's gradient is
    independent of the batch size.  Without targets the objective is the
    summed prediction, giving ``d prediction / d input`` per sample.

    Raises
    ------
    RuntimeError
        When called inside :func:`repro.nn.no_grad`.  ``Tensor``
        silently drops ``requires_grad`` while grad is disabled
        (``tensor.py``), which would otherwise surface here as ``None``
        gradients long after the cause is gone from the stack.
    """
    if not nn.is_grad_enabled():
        raise RuntimeError(
            "input_gradient() called inside no_grad(): Tensor silently drops "
            "requires_grad while gradients are disabled, so the input leaf "
            "could never record a tape and its gradients would be None. "
            "Call input_gradient() outside the no_grad() context."
        )
    images = np.asarray(images, dtype=np.float64)
    day_types = np.asarray(day_types, dtype=np.float64)
    was_training = predictor.training
    predictor.eval()
    try:
        images_t = nn.Tensor(images, requires_grad=True)
        day_t = nn.Tensor(day_types)
        flat_t = nn.ops.concat([images_t.reshape(images.shape[0], -1), day_t], axis=1)
        predictions = predictor.forward(images_t, day_t, flat_t)
        if targets is None:
            objective = predictions.sum()
        else:
            residual = predictions - nn.Tensor(np.asarray(targets, dtype=np.float64))
            objective = (residual * residual).sum()
        objective.backward()
    finally:
        if was_training:
            predictor.train()
    assert images_t.grad is not None
    return InputGradient(
        grad_images=images_t.grad,
        predictions=predictions.data,
        loss=float(objective.data),
    )


class CompiledInputGradient:
    """Drop-in :func:`input_gradient` with tape replay for hot loops.

    Attack loops (PGD especially) call :func:`input_gradient` with the
    same shapes dozens of times per batch; this wrapper compiles the
    forward/backward through :class:`repro.nn.compile.CompiledFunction`
    — one tape per (targeted?, shape) signature — while reproducing the
    eager function bitwise (the compile layer validates every tape
    against eager before trusting it).  Instances are stateful (they own
    the tapes), so build one per predictor and reuse it across calls.
    """

    def __init__(self, predictor):
        from ..nn.compile import CompiledFunction

        self.predictor = predictor
        self._predictor_modules = None

        def targeted_fn(images, day_types, targets):
            flat = nn.ops.concat([images.reshape(images.shape[0], -1), day_types], axis=1)
            predictions = predictor.forward(images, day_types, flat)
            residual = predictions - targets
            return (residual * residual).sum(), predictions

        def untargeted_fn(images, day_types):
            flat = nn.ops.concat([images.reshape(images.shape[0], -1), day_types], axis=1)
            predictions = predictor.forward(images, day_types, flat)
            return predictions.sum(), predictions

        # input_grads_only: attacks read d objective / d image and never
        # param.grad, so trusted replays skip every weight-grad GEMM.
        self._targeted = CompiledFunction(
            targeted_fn, grad_indices=(0,), name="input_gradient_targeted",
            input_grads_only=True,
        )
        self._untargeted = CompiledFunction(
            untargeted_fn, grad_indices=(0,), name="input_gradient",
            input_grads_only=True,
        )

    def __call__(self, predictor, images: np.ndarray, day_types: np.ndarray,
                 targets: np.ndarray | None = None) -> InputGradient:
        """Same contract as :func:`input_gradient` (predictor must match)."""
        if predictor is not self.predictor:
            # A different model means different parameters than the tapes
            # recorded; fall back to the general eager path.
            return input_gradient(predictor, images, day_types, targets)
        if not nn.is_grad_enabled():
            raise RuntimeError(
                "input_gradient() called inside no_grad(): Tensor silently drops "
                "requires_grad while gradients are disabled, so the input leaf "
                "could never record a tape and its gradients would be None. "
                "Call input_gradient() outside the no_grad() context."
            )
        images = np.asarray(images, dtype=np.float64)
        day_types = np.asarray(day_types, dtype=np.float64)
        # Inline eval()/train(): the recursive module walk is measurable
        # at PGD-step frequency, and this instance is pinned to one
        # predictor whose structure does not change.
        if self._predictor_modules is None:
            self._predictor_modules = list(predictor.modules())
        was_training = predictor.training
        for module in self._predictor_modules:
            object.__setattr__(module, "training", False)
        try:
            if targets is None:
                run = self._untargeted(images, day_types)
            else:
                run = self._targeted(images, day_types, np.asarray(targets, dtype=np.float64))
            run.backward()
        finally:
            if was_training:
                for module in self._predictor_modules:
                    object.__setattr__(module, "training", True)
        objective, predictions = run.outputs
        grad = run.input_grad(0)
        assert grad is not None
        return InputGradient(
            grad_images=grad,
            # Copy: replayed outputs alias the tape's buffers and would
            # mutate under the caller on the next call.
            predictions=np.array(predictions.data, copy=True),
            loss=float(objective.data),
        )
