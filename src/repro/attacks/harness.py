"""Robustness evaluation harness: epsilon sweeps over an eval slice.

The harness is deliberately array-in / report-out: it takes the scaled
window arrays a caller already extracted from its dataset (plus the
km/h arrays the regime metrics need) and never imports ``repro.data``
or ``repro.serving`` — the attacks layer sits beside ``core`` and below
both (see ``tools/check_imports.py``).  ``repro.experiments.robustness``
does the dataset plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..metrics.errors import all_errors
from ..metrics.regimes import classify_regimes
from ..parallel import TaskFailure, parallel_map
from .base import Attack, flatten_windows
from .blackbox import RandomNoiseAttack, SPSAAttack
from .constraints import PlausibilityBox
from .report import EpsilonResult, RobustnessReport
from .whitebox import FGSMAttack, PGDAttack

__all__ = [
    "ATTACK_NAMES",
    "EvalSlice",
    "SweepShardError",
    "build_attack",
    "evaluate_robustness",
]


class SweepShardError(RuntimeError):
    """A parallel sweep shard failed, annotated with its grid point.

    The worker pool reports failures by task index, which is meaningless
    to someone staring at a robustness sweep; this wraps the underlying
    :class:`repro.parallel.TaskFailure` with the attack name and the
    epsilon the shard was evaluating.  The original failure stays
    reachable as :attr:`failure` (and as ``__cause__``).
    """

    def __init__(self, attack: str, epsilon_kmh: float, failure: TaskFailure):
        super().__init__(
            f"robustness sweep shard failed for attack={attack!r} at "
            f"epsilon={epsilon_kmh:g} km/h (after {failure.attempts} "
            f"attempt(s)): {failure.reason}"
        )
        self.attack = attack
        self.epsilon_kmh = float(epsilon_kmh)
        self.failure = failure

#: Attack ids accepted by :func:`build_attack` and the robustness CLI.
ATTACK_NAMES = ("fgsm", "pgd", "spsa", "random")


@dataclass(frozen=True)
class EvalSlice:
    """The arrays one robustness sweep evaluates over.

    ``images`` / ``day_types`` / ``targets_scaled`` are exactly what the
    predictor consumes; ``targets_kmh`` / ``last_input_kmh`` feed the
    regime classification (``dataset.evaluation_arrays``).
    """

    images: np.ndarray
    day_types: np.ndarray
    targets_scaled: np.ndarray
    targets_kmh: np.ndarray
    last_input_kmh: np.ndarray

    def __post_init__(self):
        n = self.images.shape[0]
        for name in ("day_types", "targets_scaled", "targets_kmh", "last_input_kmh"):
            if getattr(self, name).shape[0] != n:
                raise ValueError(f"{name} is not aligned with images ({n} samples)")
        if n == 0:
            raise ValueError("cannot evaluate robustness over zero samples")

    def take(self, max_samples: int | None) -> "EvalSlice":
        """The first ``max_samples`` samples (all when None)."""
        if max_samples is None or max_samples >= self.images.shape[0]:
            return self
        sl = slice(0, max_samples)
        return EvalSlice(self.images[sl], self.day_types[sl], self.targets_scaled[sl],
                         self.targets_kmh[sl], self.last_input_kmh[sl])


def build_attack(name: str, predictor, scalers, constraint: PlausibilityBox,
                 seed: int = 0, **kwargs) -> Attack:
    """Construct an attack by id against a predictor + its scalers.

    Black-box attacks get only ``predictor.predict`` — they treat the
    model as a query oracle, as they would a remote service.
    """
    num_roads = predictor.features.num_roads
    if name == "fgsm":
        return FGSMAttack(predictor, scalers, constraint, **kwargs)
    if name == "pgd":
        return PGDAttack(predictor, scalers, constraint, seed=seed, **kwargs)
    if name == "spsa":
        return SPSAAttack(predictor.predict, scalers, num_roads, constraint,
                          seed=seed, **kwargs)
    if name == "random":
        return RandomNoiseAttack(predictor.predict, scalers, num_roads, constraint,
                                 seed=seed, **kwargs)
    raise ValueError(f"unknown attack {name!r}; have {ATTACK_NAMES}")


#: Worker-side shared state for the per-epsilon shards: the victim and
#: the eval arrays ship once per worker (or ride the fork), so each
#: epsilon task is just a float.
_SWEEP_CONTEXT: dict | None = None


def _init_sweep_worker(
    predictor, scalers, images, day_types, targets_scaled, targets_kmh,
    last_input_kmh, masks, attack_name, max_step_kmh, seed, attack_kwargs,
) -> None:
    global _SWEEP_CONTEXT
    _SWEEP_CONTEXT = {
        "predictor": predictor,
        "scalers": scalers,
        "images": images,
        "day_types": day_types,
        "targets_scaled": targets_scaled,
        "targets_kmh": targets_kmh,
        "last_input_kmh": last_input_kmh,
        "masks": masks,
        "attack_name": attack_name,
        "max_step_kmh": max_step_kmh,
        "seed": seed,
        "attack_kwargs": attack_kwargs,
    }


def _sweep_one_epsilon(epsilon: float) -> tuple[str, float, dict]:
    """One epsilon grid point: (attack name, max |delta|, attacked errors)."""
    ctx = _SWEEP_CONTEXT
    predictor, scalers = ctx["predictor"], ctx["scalers"]
    images, day_types = ctx["images"], ctx["day_types"]
    constraint = PlausibilityBox(epsilon_kmh=float(epsilon), max_step_kmh=ctx["max_step_kmh"])
    attack = build_attack(ctx["attack_name"], predictor, scalers, constraint,
                          seed=ctx["seed"], **ctx["attack_kwargs"])
    attacked = attack.perturb(images, day_types, ctx["targets_scaled"])
    adv_flat = flatten_windows(attacked.images, day_types)
    adv_scaled = predictor.predict(attacked.images, day_types, adv_flat)
    adv_kmh = scalers.speed.inverse_transform(adv_scaled)
    adv_by_regime = _errors_by_regime(adv_kmh, ctx["targets_kmh"], ctx["masks"])
    return attack.name, attacked.max_abs_delta_kmh, adv_by_regime


def evaluate_robustness(
    predictor,
    scalers,
    eval_slice: EvalSlice,
    attack_name: str = "pgd",
    epsilons_kmh: Sequence[float] = (1.0, 2.5, 5.0),
    max_step_kmh: float | None = 10.0,
    model_name: str | None = None,
    recorder=None,
    seed: int = 0,
    workers: int = 1,
    **attack_kwargs,
) -> RobustnessReport:
    """Sweep an epsilon grid and report clean-vs-attacked errors.

    Clean errors are computed once; each epsilon re-runs the attack
    under a fresh :class:`PlausibilityBox`.  With a ``recorder`` the
    sweep emits per-step ``attack_step`` events and one
    ``robustness_summary`` event per grid point.

    With ``workers > 1`` the epsilon grid points run as parallel shards
    (each attack is seeded per-epsilon-independently already, so the
    numbers match the serial sweep exactly).  Per-step ``attack_step``
    events are parent-side only and therefore unavailable in this mode;
    the per-epsilon ``robustness_summary`` events are still emitted, in
    grid order, once the shards return.
    """
    images = np.asarray(eval_slice.images, dtype=np.float64)
    day_types = np.asarray(eval_slice.day_types, dtype=np.float64)
    flat = flatten_windows(images, day_types)
    clean_scaled = predictor.predict(images, day_types, flat)
    clean_kmh = scalers.speed.inverse_transform(clean_scaled)
    masks = classify_regimes(eval_slice.last_input_kmh, eval_slice.targets_kmh)
    clean_by_regime = _errors_by_regime(clean_kmh, eval_slice.targets_kmh, masks)

    results: list[EpsilonResult] = []
    if workers > 1 and len(epsilons_kmh) > 1:
        initargs = (
            predictor, scalers, images, day_types, eval_slice.targets_scaled,
            eval_slice.targets_kmh, eval_slice.last_input_kmh, masks,
            attack_name, max_step_kmh, seed, attack_kwargs,
        )
        try:
            shard_results = parallel_map(
                _sweep_one_epsilon,
                [float(epsilon) for epsilon in epsilons_kmh],
                workers=workers,
                root_seed=seed,
                initializer=_init_sweep_worker,
                initargs=initargs,
            )
        except TaskFailure as failure:
            # The pool reports a bare task index; re-raise with the grid
            # point the shard was evaluating so the operator sees which
            # attack/epsilon blew up, not "task 2 failed".
            raise SweepShardError(
                attack_name, float(epsilons_kmh[failure.index]), failure
            ) from failure
        for epsilon, (name, max_abs_delta, adv_by_regime) in zip(epsilons_kmh, shard_results):
            result = EpsilonResult(
                attack=name,
                epsilon_kmh=float(epsilon),
                num_samples=int(images.shape[0]),
                max_abs_delta_kmh=max_abs_delta,
                clean=clean_by_regime,
                attacked=adv_by_regime,
                regime_counts=masks.counts(),
            )
            results.append(result)
            if recorder is not None:
                recorder.event(
                    "robustness_summary",
                    attack=result.attack,
                    epsilon=float(epsilon),
                    num_samples=result.num_samples,
                    clean_mae=result.clean["whole"]["mae"],
                    attacked_mae=result.attacked["whole"]["mae"],
                    clean_rmse=result.clean["whole"]["rmse"],
                    attacked_rmse=result.attacked["whole"]["rmse"],
                    clean_mape=result.clean["whole"]["mape"],
                    attacked_mape=result.attacked["whole"]["mape"],
                )
        name = model_name if model_name is not None else getattr(predictor, "kind", "model")
        return RobustnessReport(model=name, results=results)

    for epsilon in epsilons_kmh:
        constraint = PlausibilityBox(epsilon_kmh=float(epsilon), max_step_kmh=max_step_kmh)
        attack = build_attack(attack_name, predictor, scalers, constraint,
                              seed=seed, **attack_kwargs)
        attacked = attack.perturb(images, day_types, eval_slice.targets_scaled,
                                  recorder=recorder)
        adv_flat = flatten_windows(attacked.images, day_types)
        adv_scaled = predictor.predict(attacked.images, day_types, adv_flat)
        adv_kmh = scalers.speed.inverse_transform(adv_scaled)
        adv_by_regime = _errors_by_regime(adv_kmh, eval_slice.targets_kmh, masks)
        result = EpsilonResult(
            attack=attack.name,
            epsilon_kmh=float(epsilon),
            num_samples=int(images.shape[0]),
            max_abs_delta_kmh=attacked.max_abs_delta_kmh,
            clean=clean_by_regime,
            attacked=adv_by_regime,
            regime_counts=masks.counts(),
        )
        results.append(result)
        if recorder is not None:
            recorder.event(
                "robustness_summary",
                attack=attack.name,
                epsilon=float(epsilon),
                num_samples=result.num_samples,
                clean_mae=result.clean["whole"]["mae"],
                attacked_mae=result.attacked["whole"]["mae"],
                clean_rmse=result.clean["whole"]["rmse"],
                attacked_rmse=result.attacked["whole"]["rmse"],
                clean_mape=result.clean["whole"]["mape"],
                attacked_mape=result.attacked["whole"]["mape"],
            )
    name = model_name if model_name is not None else getattr(predictor, "kind", "model")
    return RobustnessReport(model=name, results=results)


def _errors_by_regime(predictions_kmh, targets_kmh, masks) -> dict[str, dict[str, float]]:
    # Same convention as APOTS.evaluate: NaN cells for empty regimes.
    by_regime: dict[str, dict[str, float]] = {}
    for regime, mask in masks.as_dict().items():
        if mask.sum() == 0:
            by_regime[regime] = {"mae": float("nan"), "rmse": float("nan"), "mape": float("nan")}
        else:
            by_regime[regime] = all_errors(predictions_kmh[mask], targets_kmh[mask])
    return by_regime
