"""Structured robustness results: clean vs attacked errors per regime.

The harness produces one :class:`EpsilonResult` per point of the
epsilon sweep and wraps them in a :class:`RobustnessReport`, which both
renders as a terminal table (the experiments CLI calls ``render()``)
and serialises to plain dicts for run logs and downstream tooling.

Per-regime cells can be NaN when a regime has no samples in the
evaluated slice (the same convention ``APOTS.evaluate`` uses); the
renderer prints those as ``-``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["EpsilonResult", "RobustnessReport", "REGIME_ORDER", "METRIC_ORDER"]

REGIME_ORDER = ("whole", "normal", "abrupt_acc", "abrupt_dec")
METRIC_ORDER = ("mae", "rmse", "mape")


@dataclass(frozen=True)
class EpsilonResult:
    """Clean-vs-attacked errors for one (attack, epsilon) grid point.

    ``clean`` / ``attacked`` map regime name -> metric name -> value
    (km/h for mae/rmse, percent for mape; NaN for empty regimes).
    """

    attack: str
    epsilon_kmh: float
    num_samples: int
    max_abs_delta_kmh: float
    clean: dict[str, dict[str, float]]
    attacked: dict[str, dict[str, float]]
    regime_counts: dict[str, int]

    def degradation(self, metric: str = "mae", regime: str = "whole") -> float:
        """Attacked minus clean error — how much the attack costs."""
        return self.attacked[regime][metric] - self.clean[regime][metric]

    def to_dict(self) -> dict:
        return {
            "attack": self.attack,
            "epsilon_kmh": self.epsilon_kmh,
            "num_samples": self.num_samples,
            "max_abs_delta_kmh": self.max_abs_delta_kmh,
            "clean": {r: dict(m) for r, m in self.clean.items()},
            "attacked": {r: dict(m) for r, m in self.attacked.items()},
            "regime_counts": dict(self.regime_counts),
        }


@dataclass(frozen=True)
class RobustnessReport:
    """An epsilon sweep for one model under one attack family."""

    model: str
    results: list[EpsilonResult] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"model": self.model, "results": [r.to_dict() for r in self.results]}

    def render(self) -> str:
        lines = [f"Robustness of {self.model} (errors in km/h; mape in %)", ""]
        header = (f"{'attack':<8} {'eps':>5} {'regime':<10} {'n':>6} "
                  f"{'clean mae':>10} {'adv mae':>10} {'clean rmse':>10} "
                  f"{'adv rmse':>10} {'clean mape':>10} {'adv mape':>10}")
        lines.append(header)
        lines.append("-" * len(header))
        for result in self.results:
            for regime in REGIME_ORDER:
                clean = result.clean[regime]
                attacked = result.attacked[regime]
                lines.append(
                    f"{result.attack:<8} {result.epsilon_kmh:>5.1f} {regime:<10} "
                    f"{result.regime_counts.get(regime, 0):>6d} "
                    f"{_cell(clean['mae'])} {_cell(attacked['mae'])} "
                    f"{_cell(clean['rmse'])} {_cell(attacked['rmse'])} "
                    f"{_cell(clean['mape'])} {_cell(attacked['mape'])}"
                )
            delta = result.degradation()
            lines.append(
                f"{'':8} max |delta| emitted {result.max_abs_delta_kmh:.2f} km/h; "
                f"whole-set mae degradation {delta:+.3f} km/h"
            )
        return "\n".join(lines)


def _cell(value: float) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return f"{'-':>10}"
    return f"{value:>10.3f}"
