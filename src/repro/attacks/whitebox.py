"""White-box gradient attacks: FGSM and projected gradient descent.

Both attacks maximise the squared forecast error by moving the speed
rows of the window image along the sign of ``d loss / d input``
(Goodfellow et al.'s fast gradient sign, and its iterated PGD form from
Madry et al.), then project back onto the :class:`PlausibilityBox` so
every emitted window stays physically plausible.

Steps are taken in *km/h* space.  The MinMax speed scaler is linear
with a positive slope, so the chain rule only rescales the gradient by
a positive constant — the km/h sign direction equals the scaled sign
direction, and budgets stay interpretable in physical units.
"""

from __future__ import annotations

import numpy as np

from .base import Attack, AttackResult, speed_rows_kmh, with_speed_rows
from .constraints import PlausibilityBox
from .gradients import CompiledInputGradient, input_gradient

__all__ = ["FGSMAttack", "PGDAttack"]


class FGSMAttack(Attack):
    """Single-step fast gradient sign attack on the speed rows.

    ``gradient_fn`` swaps the backward engine (same call contract as
    :func:`repro.attacks.gradients.input_gradient`); ``compile=True`` is
    shorthand for a per-attack :class:`CompiledInputGradient`, which
    replays the forward/backward tape instead of rebuilding the graph
    each call — bit-identical by construction (validated before trust).
    """

    name = "fgsm"

    def __init__(self, predictor, scalers, constraint: PlausibilityBox,
                 gradient_fn=None, compile: bool = False):
        super().__init__(scalers, predictor.features.num_roads, constraint)
        self.predictor = predictor
        if gradient_fn is None:
            gradient_fn = CompiledInputGradient(predictor) if compile else input_gradient
        self.gradient_fn = gradient_fn

    def perturb(self, images, day_types, targets, recorder=None) -> AttackResult:
        images = np.asarray(images, dtype=np.float64)
        reference = speed_rows_kmh(images, self.scalers, self.num_roads)
        result = self.gradient_fn(self.predictor, images, day_types, targets)
        grad_speeds = result.grad_images[:, :self.num_roads, :]
        attacked = np.sign(grad_speeds)
        attacked *= self.constraint.epsilon_kmh
        attacked += reference
        attacked = self.constraint.project(attacked, reference)
        adv_images = with_speed_rows(images, attacked, self.scalers, self.num_roads)
        self._record(recorder, 0, result.loss)
        return AttackResult(adv_images, attacked, reference, [result.loss])


class PGDAttack(Attack):
    """Iterated FGSM with projection after every step (Madry et al.).

    ``step_kmh`` defaults to ``2.5 * epsilon / steps`` so the iterate can
    traverse the budget and still refine near the boundary.  With
    ``random_start`` the iterate begins at a uniform point inside the
    box instead of the clean window, which avoids starting on the flat
    spot of a saturated activation.
    """

    name = "pgd"

    def __init__(self, predictor, scalers, constraint: PlausibilityBox, steps: int = 10,
                 step_kmh: float | None = None, random_start: bool = True,
                 seed: int = 0, gradient_fn=None, compile: bool = False):
        super().__init__(scalers, predictor.features.num_roads, constraint)
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self.predictor = predictor
        self.steps = steps
        self.step_kmh = step_kmh if step_kmh is not None else 2.5 * constraint.epsilon_kmh / steps
        self.random_start = random_start
        self.seed = seed
        if gradient_fn is None:
            # See FGSMAttack: compile=True replays the per-step tape, the
            # big win here since PGD calls the gradient `steps` times.
            gradient_fn = CompiledInputGradient(predictor) if compile else input_gradient
        self.gradient_fn = gradient_fn

    def perturb(self, images, day_types, targets, recorder=None) -> AttackResult:
        images = np.asarray(images, dtype=np.float64)
        reference = speed_rows_kmh(images, self.scalers, self.num_roads)
        rng = np.random.default_rng(self.seed)
        if self.random_start:
            noise = rng.uniform(-self.constraint.epsilon_kmh,
                                self.constraint.epsilon_kmh, size=reference.shape)
            attacked = self.constraint.project(reference + noise, reference)
        else:
            attacked = reference.copy()
        losses: list[float] = []
        for step in range(self.steps):
            adv_images = with_speed_rows(images, attacked, self.scalers, self.num_roads)
            result = self.gradient_fn(self.predictor, adv_images, day_types, targets)
            grad_speeds = result.grad_images[:, :self.num_roads, :]
            attacked = attacked + self.step_kmh * np.sign(grad_speeds)
            attacked = self.constraint.project(attacked, reference)
            losses.append(result.loss)
            self._record(recorder, step, result.loss)
        adv_images = with_speed_rows(images, attacked, self.scalers, self.num_roads)
        return AttackResult(adv_images, attacked, reference, losses)
