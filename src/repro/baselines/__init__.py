"""``repro.baselines`` — statistical and naive comparison models."""

from .arima import ARPredictor
from .cgan import CGANConfig, CGANPredictor
from .naive import HistoricalAverageBaseline, LastValueBaseline
from .prophet import Prophet, ProphetForecaster

__all__ = [
    "ARPredictor",
    "CGANConfig",
    "CGANPredictor",
    "HistoricalAverageBaseline",
    "LastValueBaseline",
    "Prophet",
    "ProphetForecaster",
]
