"""Autoregressive baselines (the ARIMA lineage of the related work).

``ARPredictor`` fits an AR(p) model by ordinary least squares on the
training windows' own histories and predicts each test target from its
window — the classical statistical approach ([1] in the paper) that the
deep models are meant to improve upon.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import TrafficDataset

__all__ = ["ARPredictor"]


class ARPredictor:
    """AR(p): s_t = c + sum_i phi_i * s_{t-i} + eps, fit by OLS.

    Parameters
    ----------
    order:
        Number of lags p; bounded by the window length alpha.
    ridge:
        Small L2 term for numerical stability.
    """

    def __init__(self, order: int = 6, ridge: float = 1e-6):
        if order < 1:
            raise ValueError("order must be at least 1")
        self.order = order
        self.ridge = ridge
        self._coefficients: np.ndarray | None = None

    def _lag_matrix(self, dataset: TrafficDataset, indices: np.ndarray) -> np.ndarray:
        """(N, order + 1) design: intercept + most recent ``order`` speeds."""
        config = dataset.config
        if self.order > config.alpha:
            raise ValueError(f"order {self.order} exceeds window length alpha={config.alpha}")
        images = dataset.features.images[indices]
        target_row = config.m
        window_kmh = dataset.kmh(images[:, target_row, :])  # (N, alpha)
        lags = window_kmh[:, -self.order :][:, ::-1]  # most recent first
        return np.column_stack([np.ones(len(indices)), lags])

    def fit(self, dataset: TrafficDataset) -> "ARPredictor":
        indices = dataset.subset("train")
        design = self._lag_matrix(dataset, indices)
        targets = dataset.features.targets_kmh[indices]
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self._coefficients = np.linalg.solve(gram, design.T @ targets)
        return self

    def predict(self, dataset: TrafficDataset, subset: str = "test") -> np.ndarray:
        if self._coefficients is None:
            raise RuntimeError("predict() called before fit()")
        indices = dataset.subset(subset)
        return self._lag_matrix(dataset, indices) @ self._coefficients
