"""Conditional GAN (cGAN) speed predictor — the paper's named future work.

Section VI plans a comparison "with other basic models (e.g., cGAN
[48])" (Mirza & Osindero, 2014).  This module implements it: a generator
receives the conditioning features plus a noise vector and emits the
next speed; a discriminator judges (speed, condition) pairs.  Unlike
APOTS, the cGAN (a) judges *single speeds*, not rolled sequences, and
(b) has no supervised MSE anchor by default — exactly the two design
choices APOTS argues for, so this baseline doubles as an ablation of
both at once.

A small supervised weight is exposed (``mse_weight``) because a pure
cGAN regressor is known to be unstable; the default keeps it weak so
the comparison stays faithful to "basic cGAN".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..data.dataset import TrafficDataset, iterate_batches

__all__ = ["CGANConfig", "CGANPredictor"]


@dataclass(frozen=True)
class CGANConfig:
    """Architecture and optimisation knobs for the cGAN baseline."""

    noise_dim: int = 8
    generator_widths: tuple[int, ...] = (64, 32)
    discriminator_widths: tuple[int, ...] = (64, 32)
    learning_rate: float = 0.001
    epochs: int = 10
    batch_size: int = 64
    mse_weight: float = 0.1
    num_prediction_samples: int = 16  # generator draws averaged at test time
    seed: int = 0

    def __post_init__(self):
        if self.noise_dim < 1:
            raise ValueError("noise_dim must be positive")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")


class CGANPredictor:
    """cGAN over (condition = flattened window features, output = speed)."""

    def __init__(self, config: CGANConfig | None = None, condition_dim: int | None = None):
        self.config = config if config is not None else CGANConfig()
        self._condition_dim = condition_dim
        self.generator: nn.Sequential | None = None
        self.discriminator: nn.Sequential | None = None
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def _build(self, condition_dim: int) -> None:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        def stack(dims):
            layers = nn.Sequential()
            for i in range(len(dims) - 2):
                layers.append(nn.Linear(dims[i], dims[i + 1], rng=rng))
                layers.append(nn.LeakyReLU(0.2))
            layers.append(nn.Linear(dims[-2], dims[-1], rng=rng))
            return layers

        self._condition_dim = condition_dim
        g_dims = [condition_dim + cfg.noise_dim, *cfg.generator_widths, 1]
        d_dims = [condition_dim + 1, *cfg.discriminator_widths, 1]
        self.generator = stack(g_dims)
        self.discriminator = stack(d_dims)

    def _generate(self, condition: np.ndarray, rng: np.random.Generator) -> nn.Tensor:
        noise = rng.normal(size=(condition.shape[0], self.config.noise_dim))
        inputs = np.concatenate([condition, noise], axis=1)
        return self.generator(nn.Tensor(inputs)).reshape(-1)

    # ------------------------------------------------------------------
    def fit(self, dataset: TrafficDataset) -> "CGANPredictor":
        """Adversarially train the generator on the train split."""
        cfg = self.config
        flat = dataset.features.flat()
        if self.generator is None:
            self._build(flat.shape[1])
        g_opt = nn.Adam(self.generator.parameters(), lr=cfg.learning_rate)
        d_opt = nn.Adam(self.discriminator.parameters(), lr=cfg.learning_rate)
        bce = nn.BCEWithLogitsLoss()
        mse = nn.MSELoss()
        rng = np.random.default_rng(cfg.seed)
        train = dataset.subset("train")

        for _ in range(cfg.epochs):
            for indices in iterate_batches(train, cfg.batch_size, rng=rng):
                condition = flat[indices]
                real = dataset.features.targets[indices]

                # Discriminator: real (condition, speed) vs generated.
                with nn.no_grad():
                    fake_speeds = self._generate(condition, rng).data
                d_opt.zero_grad()
                real_logits = self.discriminator(
                    nn.Tensor(np.concatenate([condition, real[:, None]], axis=1))
                ).reshape(-1)
                fake_logits = self.discriminator(
                    nn.Tensor(np.concatenate([condition, fake_speeds[:, None]], axis=1))
                ).reshape(-1)
                d_loss = bce(real_logits, np.ones(len(indices))) + bce(
                    fake_logits, np.zeros(len(indices))
                )
                d_loss.backward()
                d_opt.step()

                # Generator: fool D (+ optional weak supervised anchor).
                g_opt.zero_grad()
                generated = self._generate(condition, rng)
                joined = nn.ops.concat([nn.Tensor(condition), generated.reshape(-1, 1)], axis=1)
                g_loss = bce(self.discriminator(joined).reshape(-1), np.ones(len(indices)))
                if cfg.mse_weight > 0:
                    g_loss = g_loss + mse(generated, real) * cfg.mse_weight
                g_loss.backward()
                g_opt.step()
                self.discriminator.zero_grad()
        return self

    def predict(self, dataset: TrafficDataset, subset: str = "test") -> np.ndarray:
        """Average several generator draws per window, in km/h."""
        if self.generator is None:
            raise RuntimeError("predict() called before fit()")
        indices = dataset.subset(subset)
        condition = dataset.features.flat(indices)
        rng = np.random.default_rng(self.config.seed + 1)
        draws = []
        with nn.no_grad():
            for _ in range(self.config.num_prediction_samples):
                draws.append(self._generate(condition, rng).data)
        return dataset.kmh(np.mean(draws, axis=0))
