"""Naive forecasting baselines.

Not in the paper's tables, but indispensable sanity anchors for the
benchmark harness: a learning model that cannot beat *last value* on
normal samples, or *historical average* on calendar structure, has
learned nothing.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import TrafficDataset

__all__ = ["LastValueBaseline", "HistoricalAverageBaseline"]


class LastValueBaseline:
    """Predict the last observed target-road speed (persistence)."""

    def fit(self, dataset: TrafficDataset) -> "LastValueBaseline":
        return self  # nothing to learn

    def predict(self, dataset: TrafficDataset, subset: str = "test") -> np.ndarray:
        indices = dataset.subset(subset)
        return dataset.features.last_input_kmh[indices].copy()


class HistoricalAverageBaseline:
    """Predict the train-split mean speed for (day kind, time of day).

    Day kind distinguishes working days from weekends/holidays; time of
    day is the 5-minute slot index.  Slots unseen in training fall back
    to the global mean.
    """

    def __init__(self):
        self._table: dict[tuple[int, int], float] = {}
        self._global_mean: float | None = None

    @staticmethod
    def _keys(dataset: TrafficDataset, indices: np.ndarray) -> np.ndarray:
        """(N, 2) array of (day_kind, slot) keys per window target."""
        series = dataset.series
        steps = dataset.features.target_steps[indices]
        steps_per_day = (24 * 60) // series.interval_minutes
        slots = steps % steps_per_day
        # day kind 1 = weekday (paper's weekday bit), 0 = weekend/holiday.
        day_kinds = dataset.features.day_types[indices][:, 0].astype(int)
        return np.column_stack([day_kinds, slots])

    def fit(self, dataset: TrafficDataset) -> "HistoricalAverageBaseline":
        indices = dataset.subset("train")
        keys = self._keys(dataset, indices)
        values = dataset.features.targets_kmh[indices]
        self._global_mean = float(values.mean())
        sums: dict[tuple[int, int], list[float]] = {}
        for (kind, slot), value in zip(map(tuple, keys), values):
            sums.setdefault((kind, slot), []).append(float(value))
        self._table = {key: float(np.mean(vals)) for key, vals in sums.items()}
        return self

    def predict(self, dataset: TrafficDataset, subset: str = "test") -> np.ndarray:
        if self._global_mean is None:
            raise RuntimeError("predict() called before fit()")
        indices = dataset.subset(subset)
        keys = self._keys(dataset, indices)
        return np.array(
            [self._table.get(tuple(key), self._global_mean) for key in keys], dtype=np.float64
        )
