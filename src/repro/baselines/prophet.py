"""A Prophet-style additive time-series baseline (Section V-B, Q3).

Facebook Prophet decomposes a series into trend + seasonality + holiday
effects fit by MAP estimation.  We implement the same additive design —
piecewise-linear trend, daily/weekly Fourier seasonality, holiday-window
indicator effects — and fit it by ridge-regularised least squares, which
yields equivalent point forecasts for this use.

The paper configures Prophet with holiday upper/lower windows of 1 and
otherwise default scales; our defaults mirror that (``holiday_window=1``).
As in the paper, a calendar-driven model cannot react to the traffic
state of the last hour, and its MAPE is far above the neural models' —
Prophet's 102.42 is the worst row of Table III.
"""

from __future__ import annotations

import datetime as dt
import math

import numpy as np

from ..traffic.calendar import KOREAN_HOLIDAYS_2018

__all__ = ["Prophet", "ProphetForecaster"]


class Prophet:
    """Additive trend + seasonality + holiday regression.

    Parameters
    ----------
    daily_order, weekly_order:
        Fourier orders of the daily / weekly seasonality (Prophet's
        defaults are 10 / 3).
    n_changepoints:
        Number of potential trend changepoints over the training span.
    holiday_window:
        Days around each holiday that receive their own effect
        (paper: upper and lower windows of 1).
    ridge:
        L2 regularisation strength of the least-squares fit.
    holidays:
        The holiday calendar (defaults to the study period's Korean
        public holidays).
    """

    def __init__(
        self,
        daily_order: int = 10,
        weekly_order: int = 3,
        n_changepoints: int = 20,
        holiday_window: int = 1,
        ridge: float = 1.0,
        holidays: frozenset[dt.date] = KOREAN_HOLIDAYS_2018,
        use_holidays: bool = True,
    ):
        if daily_order < 1 or weekly_order < 0:
            raise ValueError("Fourier orders out of range")
        self.daily_order = daily_order
        self.weekly_order = weekly_order
        self.n_changepoints = n_changepoints
        self.holiday_window = holiday_window
        self.ridge = ridge
        self.holidays = holidays
        self.use_holidays = use_holidays
        self._weights: np.ndarray | None = None
        self._t0: dt.datetime | None = None
        self._t1: dt.datetime | None = None
        self._changepoints: np.ndarray | None = None
        self._holiday_days: list[dt.date] = []

    # ------------------------------------------------------------------
    def _scaled_time(self, timestamps: list[dt.datetime]) -> np.ndarray:
        """Time scaled to [0, 1] over the training span."""
        assert self._t0 is not None and self._t1 is not None
        span = (self._t1 - self._t0).total_seconds() or 1.0
        return np.array([(t - self._t0).total_seconds() / span for t in timestamps])

    def _design_matrix(self, timestamps: list[dt.datetime]) -> np.ndarray:
        """Build the regression design matrix for a list of timestamps."""
        n = len(timestamps)
        columns: list[np.ndarray] = [np.ones(n)]

        # Piecewise-linear trend: base slope + hinge terms at changepoints.
        t = self._scaled_time(timestamps)
        columns.append(t)
        assert self._changepoints is not None
        for cp in self._changepoints:
            columns.append(np.maximum(0.0, t - cp))

        # Daily seasonality.
        day_frac = np.array(
            [(s.hour * 3600 + s.minute * 60 + s.second) / 86400.0 for s in timestamps]
        )
        for k in range(1, self.daily_order + 1):
            columns.append(np.sin(2.0 * math.pi * k * day_frac))
            columns.append(np.cos(2.0 * math.pi * k * day_frac))

        # Weekly seasonality.
        week_frac = np.array([(s.weekday() + day_frac[i]) / 7.0 for i, s in enumerate(timestamps)])
        for k in range(1, self.weekly_order + 1):
            columns.append(np.sin(2.0 * math.pi * k * week_frac))
            columns.append(np.cos(2.0 * math.pi * k * week_frac))

        # Holiday effects with +-window indicator columns.
        if self.use_holidays:
            for day in self._holiday_days:
                for offset in range(-self.holiday_window, self.holiday_window + 1):
                    target = day + dt.timedelta(days=offset)
                    columns.append(
                        np.array([1.0 if s.date() == target else 0.0 for s in timestamps])
                    )
        return np.column_stack(columns)

    # ------------------------------------------------------------------
    def fit(self, timestamps: list[dt.datetime], values: np.ndarray) -> "Prophet":
        """Fit the additive model on (timestamp, value) observations."""
        values = np.asarray(values, dtype=np.float64)
        if len(timestamps) != len(values):
            raise ValueError("timestamps and values must be aligned")
        if len(values) < 10:
            raise ValueError("need at least 10 observations to fit")
        self._t0, self._t1 = min(timestamps), max(timestamps)
        self._changepoints = np.linspace(0.0, 0.9, self.n_changepoints, endpoint=False)[1:]
        self._holiday_days = sorted(self.holidays)
        design = self._design_matrix(timestamps)
        # Ridge least squares: (X'X + rI) w = X'y.
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ values)
        return self

    def predict(self, timestamps: list[dt.datetime]) -> np.ndarray:
        """Point forecasts at arbitrary timestamps."""
        if self._weights is None:
            raise RuntimeError("predict() called before fit()")
        return self._design_matrix(timestamps) @ self._weights


class ProphetForecaster:
    """Dataset-protocol adapter: fit on train targets, predict test targets.

    Matches the fit/predict interface of the neural models and the other
    baselines so the Table III harness can treat every row uniformly.
    """

    def __init__(self, model: Prophet | None = None):
        self.model = model if model is not None else Prophet()

    def _target_timestamps(self, dataset, indices: np.ndarray) -> list[dt.datetime]:
        steps = dataset.features.target_steps[indices]
        return [dataset.series.timestamps[s] for s in steps]

    def fit(self, dataset) -> "ProphetForecaster":
        indices = dataset.subset("train")
        stamps = self._target_timestamps(dataset, indices)
        values = dataset.features.targets_kmh[indices]
        self.model.fit(stamps, values)
        return self

    def predict(self, dataset, subset: str = "test") -> np.ndarray:
        indices = dataset.subset(subset)
        return self.model.predict(self._target_timestamps(dataset, indices))
