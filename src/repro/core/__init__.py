"""``repro.core`` — the APOTS model: predictors, discriminator, training."""

from .adversarial import AdversarialHistory, APOTSTrainer
from .adversarial_training import AdversarialAugmenter, AugmentInfo
from .config import PRESETS, ModelSpec, ScalePreset, TrainSpec, table1_spec
from .data_parallel import DataParallelTrainer
from .discriminator import Discriminator
from .model import APOTS, EvaluationReport
from .predictors import (
    CNNPredictor,
    FCPredictor,
    HybridPredictor,
    LSTMPredictor,
    Predictor,
    build_predictor,
)
from .trainer import SupervisedTrainer, TrainHistory
from .tuning import GridSearchResult, expand_grid, grid_search
from .zoo import load_model, model_fingerprint, save_model

__all__ = [
    "AdversarialHistory",
    "AdversarialAugmenter",
    "AugmentInfo",
    "APOTSTrainer",
    "PRESETS",
    "ModelSpec",
    "ScalePreset",
    "TrainSpec",
    "table1_spec",
    "Discriminator",
    "APOTS",
    "EvaluationReport",
    "CNNPredictor",
    "FCPredictor",
    "HybridPredictor",
    "LSTMPredictor",
    "Predictor",
    "build_predictor",
    "SupervisedTrainer",
    "DataParallelTrainer",
    "TrainHistory",
    "GridSearchResult",
    "expand_grid",
    "grid_search",
    "load_model",
    "model_fingerprint",
    "save_model",
]
