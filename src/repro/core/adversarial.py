"""Adversarial training of APOTS (Sections III and IV).

Implements the minimax game of Eq 4:

* **Predictor step** — minimise
  ``J_P = w_mse * MSE(rolled predictions, real speeds)
        + w_adv * adversarial(D(predicted sequence | E))``
  where the predicted sequence for anchor window ``t`` is the alpha
  consecutive one-step predictions ending at the anchor's target
  (Section III-A's rollout), and the paper's footnote fixes the loss
  ratio at alpha : 1 (``w_mse`` defaults to alpha).
* **Discriminator step** — maximise
  ``J_D = log D(real | E) + log(1 - D(fake | E))``,
  trained as binary cross-entropy on logits.

The paper's objective uses the saturating generator loss
``log(1 - D(fake))``; by default we train the non-saturating variant
``-log D(fake)`` (Goodfellow et al., 2014 recommend it for gradient
signal) and expose ``saturating_adv_loss`` to flip back.

Observability: ``fit`` accepts an optional
:class:`repro.obs.RunRecorder` (falling back to the ambient recorder
installed by the experiment CLI).  With one attached it emits
``d_step`` / ``p_step`` / ``adv_epoch`` events, times the two update
kinds as latency sections, and runs a
:class:`repro.obs.GanHealthMonitor` over D probabilities, the
adversarial-loss share and pre-clip gradient norms.  Without one the
instrumentation branches are skipped entirely (zero-cost default).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import asdict, dataclass, field

import numpy as np

from .. import nn
from ..data.dataset import RolloutBatch, TrafficDataset, iterate_batches
from ..obs import GanHealthMonitor, RunRecorder, current_recorder
from .config import TrainSpec
from .discriminator import Discriminator
from .predictors import Predictor

__all__ = ["AdversarialHistory", "APOTSTrainer"]


def _mean(values: list[float]) -> float:
    """Mean of a possibly-empty list without numpy's RuntimeWarning.

    ``spec.discriminator_steps == 0`` or ``max_steps_per_epoch == 0``
    legitimately produce empty per-epoch lists; ``np.mean([])`` would
    warn and poison the history with a warning-wrapped NaN.
    """
    return float(np.mean(values)) if values else float("nan")


@dataclass
class AdversarialHistory:
    """Per-epoch adversarial training diagnostics."""

    predictor_loss: list[float] = field(default_factory=list)
    mse_loss: list[float] = field(default_factory=list)
    adversarial_loss: list[float] = field(default_factory=list)
    discriminator_loss: list[float] = field(default_factory=list)
    discriminator_real_prob: list[float] = field(default_factory=list)
    discriminator_fake_prob: list[float] = field(default_factory=list)
    predictor_grad_norm: list[float] = field(default_factory=list)
    discriminator_grad_norm: list[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.predictor_loss)


class APOTSTrainer:
    """Alternating P / D optimisation over rollout batches."""

    def __init__(
        self,
        predictor: Predictor,
        discriminator: Discriminator,
        spec: TrainSpec | None = None,
    ):
        self.predictor = predictor
        self.discriminator = discriminator
        self.spec = spec if spec is not None else TrainSpec()
        self.p_optimizer = nn.Adam(predictor.parameters(), lr=self.spec.learning_rate)
        self.d_optimizer = nn.Adam(discriminator.parameters(), lr=self.spec.learning_rate)
        self.bce = nn.BCEWithLogitsLoss()
        self.mse = nn.MSELoss()
        self._cf_roll = None
        self._cf_dstep = None
        self._cf_ploss = None
        # One rollout per (batch, predictor version): the D steps and the
        # P step of a batch all see the same P parameters, so Ŝ can be
        # rolled once and shared instead of recomputed per sub-step.
        self._roll_cache: tuple | None = None
        self._p_version = 0
        if self.spec.compile:
            self._build_compiled()

    def _build_compiled(self) -> None:
        """Build the tape-replay functions for the hot sub-steps.

        Three :class:`repro.nn.compile.CompiledFunction` pieces cover a
        training step, cut at the rollout predictions so the expensive
        P rollout runs exactly once per batch:

        * ``rollout``: group windows -> flat predictions (B * alpha,);
        * ``d_step``: (fake view, real view[, condition]) -> D loss and
          both logit vectors;
        * ``p_loss``: (sequences[, condition]) -> (total, mse, adv) with
          the sequences as a gradient *input*; its input gradient seeds
          ``rollout``'s backward, which is bitwise the same chain rule
          the eager single-graph backward applies.

        Every piece self-validates bitwise against eager before being
        trusted (see :mod:`repro.nn.compile`), so a construct replay
        cannot reproduce only costs the speedup, never correctness.
        """
        from ..nn.compile import CompiledFunction

        conditional = self.discriminator.conditional

        def roll_fn(images, day_types, flat):
            return self.predictor.forward(images, day_types, flat)

        self._cf_roll = CompiledFunction(roll_fn, name="apots_rollout")

        def dstep_body(fake, real, condition):
            real_logits = self.discriminator(real, condition)
            fake_logits = self.discriminator(fake, condition)
            n = fake.shape[0]
            loss = self.bce(real_logits, np.ones(n)) + self.bce(fake_logits, np.zeros(n))
            return loss, real_logits, fake_logits

        def ploss_body(sequences, targets, condition):
            alpha = sequences.shape[1]
            predictions = sequences.reshape(-1)
            mse_loss = self.mse(predictions, targets)
            length = self.discriminator.sequence_length
            fake_logits = self.discriminator(sequences[:, alpha - length :], condition)
            if self.spec.saturating_adv_loss:
                adv_loss = (1.0 - fake_logits.sigmoid().clip(1e-7, 1.0 - 1e-7)).log().mean()
            else:
                adv_loss = self.bce(fake_logits, np.ones(sequences.shape[0]))
            w_mse = self.spec.mse_weight if self.spec.mse_weight is not None else float(alpha)
            total = mse_loss * w_mse + adv_loss * self.spec.adv_weight
            return total, mse_loss, adv_loss

        if conditional:
            dstep_fn = dstep_body
            ploss_fn = ploss_body
        else:

            def dstep_fn(fake, real):
                return dstep_body(fake, real, None)

            def ploss_fn(sequences, targets):
                return ploss_body(sequences, targets, None)

        self._cf_dstep = CompiledFunction(dstep_fn, name="apots_d_step")
        self._cf_ploss = CompiledFunction(ploss_fn, grad_indices=(0,), name="apots_p_loss")

    def _batch_rollout(self, batch: RolloutBatch):
        """The batch's compiled rollout run, computed once per P version."""
        cached = self._roll_cache
        if cached is not None and cached[0] is batch and cached[1] == self._p_version:
            return cached[2]
        run = self._cf_roll(batch.group_images, batch.group_day_types, batch.group_flat)
        self._roll_cache = (batch, self._p_version, run)
        return run

    def _make_augmenter(self, dataset: TrafficDataset):
        """The input-space adversarial augmenter, or None when disabled.

        Imported lazily so the default ``robust_fraction=0.0`` path
        never touches :mod:`repro.attacks` at all.
        """
        if self.spec.robust_fraction <= 0.0:
            return None
        from .adversarial_training import AdversarialAugmenter

        return AdversarialAugmenter.from_spec(
            self.predictor, dataset.features.scalers, self.spec
        )

    # ------------------------------------------------------------------
    def _predict_sequences(self, batch: RolloutBatch, alpha: int) -> tuple[nn.Tensor, nn.Tensor]:
        """Roll P over each anchor's alpha windows.

        Returns (per-window predictions (B*alpha,), sequences (B, alpha)).
        """
        predictions = self.predictor.predict_arrays(
            batch.group_images, batch.group_day_types, batch.group_flat
        )
        sequences = predictions.reshape(batch.num_anchors, alpha)
        return predictions, sequences

    def _sequence_view(self, sequences: np.ndarray) -> np.ndarray:
        """Slice sequences to what D inspects (last `sequence_length` steps).

        The paper feeds the full alpha-long sequence; the single-speed
        ablation (Section III-A's cautionary variant) uses length 1.
        """
        return sequences[:, -self.discriminator.sequence_length :]

    def _discriminator_step(
        self, batch: RolloutBatch, alpha: int
    ) -> tuple[float, float, float, float]:
        """One D update; returns (loss, real prob, fake prob, grad norm)."""
        if self._cf_dstep is not None:
            return self._discriminator_step_compiled(batch, alpha)
        with nn.no_grad():
            _, fake_sequences = self._predict_sequences(batch, alpha)
        fake = nn.Tensor(self._sequence_view(fake_sequences.data))  # detached
        real = nn.Tensor(self._sequence_view(batch.real_sequences(alpha)))
        condition = nn.Tensor(batch.condition) if self.discriminator.conditional else None

        real_logits = self.discriminator(real, condition)
        fake_logits = self.discriminator(fake, condition)
        ones = np.ones(batch.num_anchors)
        zeros = np.zeros(batch.num_anchors)
        loss = self.bce(real_logits, ones) + self.bce(fake_logits, zeros)

        self.d_optimizer.zero_grad()
        loss.backward()
        grad_norm = self.d_optimizer.clip_grad_norm(self.spec.grad_clip)
        self.d_optimizer.step()

        with nn.no_grad():
            real_prob = float(real_logits.sigmoid().data.mean())
            fake_prob = float(fake_logits.sigmoid().data.mean())
        return loss.item(), real_prob, fake_prob, grad_norm

    def _discriminator_step_compiled(
        self, batch: RolloutBatch, alpha: int
    ) -> tuple[float, float, float, float]:
        """Compiled D update: shared rollout values + replayed D pass."""
        roll = self._batch_rollout(batch)
        sequences = roll.outputs[0].data.reshape(batch.num_anchors, alpha)
        fake = self._sequence_view(sequences)
        real = self._sequence_view(batch.real_sequences(alpha))
        args = [fake, real]
        if self.discriminator.conditional:
            args.append(batch.condition)
        run = self._cf_dstep(*args)
        loss, real_logits, fake_logits = run.outputs

        self.d_optimizer.zero_grad()
        run.backward()
        grad_norm = self.d_optimizer.clip_grad_norm(self.spec.grad_clip)
        self.d_optimizer.step()

        with nn.no_grad():
            real_prob = float(nn.Tensor(real_logits.data).sigmoid().data.mean())
            fake_prob = float(nn.Tensor(fake_logits.data).sigmoid().data.mean())
        return loss.item(), real_prob, fake_prob, grad_norm

    def _predictor_step_compiled(
        self, batch: RolloutBatch, alpha: int
    ) -> tuple[float, float, float, float, float]:
        """Compiled P update: one rollout, loss replay, seeded BPTT.

        The chain rule is split at the predictions: the p-loss piece
        produces d(total)/d(sequences) as an input gradient, which then
        seeds the rollout tape's backward into P's parameters — the same
        contraction the eager single-graph backward performs.
        """
        roll = self._batch_rollout(batch)
        sequences = roll.outputs[0].data.reshape(batch.num_anchors, alpha)
        args = [sequences, batch.group_targets]
        if self.discriminator.conditional:
            args.append(batch.condition)
        run = self._cf_ploss(*args)
        total, mse_loss, adv_loss = run.outputs
        results = (total.item(), mse_loss.item(), adv_loss.item())
        fake_std = float(sequences.std())

        self.p_optimizer.zero_grad()
        run.backward()
        roll.backward(run.input_grad(0).reshape(-1))
        grad_norm = self.p_optimizer.clip_grad_norm(self.spec.grad_clip)
        self.p_optimizer.step()
        self.discriminator.zero_grad()
        self._p_version += 1
        return results[0], results[1], results[2], grad_norm, fake_std

    def _predictor_step(
        self, batch: RolloutBatch, alpha: int
    ) -> tuple[float, float, float, float, float]:
        """One P update; returns (total, mse, adv, grad norm, fake std)."""
        if self._cf_ploss is not None:
            return self._predictor_step_compiled(batch, alpha)
        predictions, sequences = self._predict_sequences(batch, alpha)
        mse_loss = self.mse(predictions, batch.group_targets)

        condition = nn.Tensor(batch.condition) if self.discriminator.conditional else None
        length = self.discriminator.sequence_length
        fake_logits = self.discriminator(sequences[:, alpha - length :], condition)
        if self.spec.saturating_adv_loss:
            # log(1 - D(fake)) minimised directly, as written in Eq 1.
            adv_loss = (1.0 - fake_logits.sigmoid().clip(1e-7, 1.0 - 1e-7)).log().mean()
        else:
            # Non-saturating: minimise -log D(fake) == BCE against ones.
            adv_loss = self.bce(fake_logits, np.ones(batch.num_anchors))

        w_mse = self.spec.mse_weight if self.spec.mse_weight is not None else float(alpha)
        total = mse_loss * w_mse + adv_loss * self.spec.adv_weight

        self.p_optimizer.zero_grad()
        # Only P's parameters are updated, but D's grads must not leak
        # into its optimiser state: clear them after backward.
        total.backward()
        grad_norm = self.p_optimizer.clip_grad_norm(self.spec.grad_clip)
        self.p_optimizer.step()
        self.discriminator.zero_grad()
        # Spread of the generated sequences: the mode-collapse signal.
        fake_std = float(sequences.data.std())
        return total.item(), mse_loss.item(), adv_loss.item(), grad_norm, fake_std

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: TrafficDataset,
        verbose: bool = False,
        recorder: RunRecorder | None = None,
    ) -> AdversarialHistory:
        """Run the alternating game for ``spec.epochs`` epochs.

        ``recorder`` defaults to the ambient :func:`repro.obs.use_recorder`
        recorder; pass one explicitly to capture a standalone run.
        """
        alpha = dataset.config.alpha
        anchors = dataset.rollout_anchors("train")
        if len(anchors) == 0:
            raise RuntimeError(
                "no adversarial anchors available; the train split has no "
                f"run of {alpha} consecutive windows"
            )
        rec = recorder if recorder is not None else current_recorder()
        monitor = GanHealthMonitor(rec) if rec is not None else None
        if rec is not None:
            rec.annotate(trainer="APOTSTrainer", train_spec=asdict(self.spec), seed=self.spec.seed)
        section = rec.section if rec is not None else (lambda name: nullcontext())
        rng = np.random.default_rng(self.spec.seed)
        history = AdversarialHistory()
        self.predictor.train()
        self.discriminator.train()
        augmenter = self._make_augmenter(dataset)

        global_step = 0
        for epoch in range(self.spec.epochs):
            p_losses, mse_losses, adv_losses, d_losses = [], [], [], []
            real_probs, fake_probs = [], []
            p_norms, d_norms = [], []
            batches = iterate_batches(anchors, self.spec.adversarial_batch_size, rng=rng)
            for step, anchor_indices in enumerate(batches):
                if self.spec.max_steps_per_epoch is not None and step >= self.spec.max_steps_per_epoch:
                    break
                batch = dataset.rollout_batch(anchor_indices)
                if augmenter is not None:
                    # Both D and P then see the same mixed batch: D judges
                    # sequences predicted from attacked inputs as "fake",
                    # exactly the samples P must learn to make realistic.
                    with section("adv_augment"):
                        batch, aug = augmenter.augment_rollout(
                            batch, alpha, epoch=epoch, step=global_step
                        )
                    if aug.num_perturbed > 0:
                        if monitor is not None:
                            monitor.observe_robust(
                                global_step,
                                clean_loss=aug.clean_loss,
                                robust_loss=aug.robust_loss,
                            )
                        if rec is not None:
                            rec.event(
                                "adv_train_step",
                                epoch=epoch,
                                step=step,
                                epsilon=aug.epsilon_kmh,
                                num_perturbed=aug.num_perturbed,
                                num_samples=aug.num_samples,
                                clean_loss=aug.clean_loss,
                                robust_loss=aug.robust_loss,
                                max_abs_delta_kmh=aug.max_abs_delta_kmh,
                            )
                for _ in range(self.spec.discriminator_steps):
                    with section("d_step"):
                        d_loss, real_prob, fake_prob, d_norm = self._discriminator_step(
                            batch, alpha
                        )
                    d_losses.append(d_loss)
                    real_probs.append(real_prob)
                    fake_probs.append(fake_prob)
                    d_norms.append(d_norm)
                    if monitor is not None:
                        monitor.observe_discriminator(
                            global_step,
                            loss=d_loss,
                            real_prob=real_prob,
                            fake_prob=fake_prob,
                            grad_norm=d_norm,
                        )
                    if rec is not None:
                        rec.event(
                            "d_step",
                            epoch=epoch,
                            step=step,
                            loss=d_loss,
                            real_prob=real_prob,
                            fake_prob=fake_prob,
                            grad_norm=d_norm,
                        )
                with section("p_step"):
                    p_loss, mse_loss, adv_loss, p_norm, fake_std = self._predictor_step(
                        batch, alpha
                    )
                p_losses.append(p_loss)
                mse_losses.append(mse_loss)
                adv_losses.append(adv_loss)
                p_norms.append(p_norm)
                if monitor is not None or rec is not None:
                    adv_share = abs(adv_loss * self.spec.adv_weight) / (abs(p_loss) + 1e-12)
                    if monitor is not None:
                        monitor.observe_predictor(
                            global_step,
                            loss=p_loss,
                            mse=mse_loss,
                            adv=adv_loss,
                            adv_share=adv_share,
                            grad_norm=p_norm,
                            fake_std=fake_std,
                        )
                    if rec is not None:
                        rec.event(
                            "p_step",
                            epoch=epoch,
                            step=step,
                            loss=p_loss,
                            mse_loss=mse_loss,
                            adv_loss=adv_loss,
                            adv_share=adv_share,
                            grad_norm=p_norm,
                            fake_std=fake_std,
                        )
                global_step += 1

            history.predictor_loss.append(_mean(p_losses))
            history.mse_loss.append(_mean(mse_losses))
            history.adversarial_loss.append(_mean(adv_losses))
            history.discriminator_loss.append(_mean(d_losses))
            history.discriminator_real_prob.append(_mean(real_probs))
            history.discriminator_fake_prob.append(_mean(fake_probs))
            history.predictor_grad_norm.append(_mean(p_norms))
            history.discriminator_grad_norm.append(_mean(d_norms))
            if rec is not None:
                rec.event(
                    "adv_epoch",
                    epoch=epoch,
                    predictor_loss=history.predictor_loss[-1],
                    mse_loss=history.mse_loss[-1],
                    adversarial_loss=history.adversarial_loss[-1],
                    discriminator_loss=history.discriminator_loss[-1],
                    discriminator_real_prob=history.discriminator_real_prob[-1],
                    discriminator_fake_prob=history.discriminator_fake_prob[-1],
                    predictor_grad_norm=history.predictor_grad_norm[-1],
                    discriminator_grad_norm=history.discriminator_grad_norm[-1],
                )
            if verbose:
                print(
                    f"epoch {epoch + 1}/{self.spec.epochs}: "
                    f"P {history.predictor_loss[-1]:.4f} "
                    f"(mse {history.mse_loss[-1]:.5f}, adv {history.adversarial_loss[-1]:.4f}) "
                    f"D {history.discriminator_loss[-1]:.4f} "
                    f"real {history.discriminator_real_prob[-1]:.2f} "
                    f"fake {history.discriminator_fake_prob[-1]:.2f}"
                )
        self.predictor.eval()
        self.discriminator.eval()
        return history
