"""Input-space adversarial training: on-the-fly FGSM/PGD batch augmentation.

APOTS is adversarial only in *output* space — the discriminator judges
predicted sequences — so the trained predictor is soft against
*input*-space perturbations (the ``repro.attacks`` sweeps quantify it).
Liu & Liu (arXiv:2210.02447) show adversarial training is the standard
remedy for spatiotemporal forecasters: mix attacked windows into every
minibatch so the predictor learns to forecast through them.

:class:`AdversarialAugmenter` implements that loop-closing step for
both trainers.  Per batch it

1. deterministically selects ``robust_fraction`` of the samples (for
   rollout batches: of the *anchors*, so each selected anchor's whole
   alpha-window history is perturbed coherently),
2. attacks the selected windows with FGSM or a short PGD, projected
   onto the same :class:`~repro.attacks.constraints.PlausibilityBox`
   the evaluation sweeps use — perturbed windows stay physically
   plausible km/h traffic, and
3. splices the adversarial windows back into the batch (rebuilding the
   flat feature rows exactly as ``repro.data`` derives them), so the
   optimiser sees a mixed clean+perturbed batch of unchanged size.

Determinism contract: every augmenter decision (sample selection, PGD
random start) is driven by a seed derived via
:func:`repro.parallel.seeding.derive_task_seed` from ``(seed,
global_step)`` only.  Augmentation always runs in the *parent* process
— :class:`repro.core.DataParallelTrainer` shards the already-augmented
batch — so the perturbed inputs are bitwise-identical under any worker
count, preserving the ``(root_seed, task_index)`` seeding contract.

Layering: this is the one ``repro.core`` module allowed to import from
``repro.attacks`` (leaf modules only — see the carve-out in
``tools/check_imports.py``); ``repro.attacks`` in turn never imports
``repro.core``, so the dependency stays acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attacks.base import flatten_windows
from ..attacks.constraints import PlausibilityBox
from ..attacks.whitebox import FGSMAttack, PGDAttack
from ..data.dataset import Batch, RolloutBatch
from ..parallel.seeding import derive_task_seed
from .config import EPSILON_SCHEDULES, TRAIN_ATTACKS

__all__ = ["AugmentInfo", "AdversarialAugmenter"]


@dataclass(frozen=True)
class AugmentInfo:
    """Diagnostics of one mixed-batch augmentation.

    ``clean_loss`` / ``robust_loss`` are the mean squared scaled errors
    of the predictor on the *selected* windows before and after the
    perturbation — the robust-vs-clean divergence signal the
    GAN-health monitor watches.  Both are NaN when nothing was
    perturbed (``num_perturbed == 0``).
    """

    epsilon_kmh: float
    num_perturbed: int
    num_samples: int
    clean_loss: float
    robust_loss: float
    max_abs_delta_kmh: float


class AdversarialAugmenter:
    """Generate on-the-fly adversarial minibatch perturbations.

    Parameters
    ----------
    predictor:
        The model under training (gradients are taken through it; its
        weights are never updated here).
    scalers:
        The dataset's fitted feature scalers — the attack surface is
        km/h, the batch arrays are scaled.
    robust_fraction:
        Fraction of each batch (anchors, for rollout batches) replaced
        by adversarial counterparts; at least one sample is perturbed
        whenever the fraction is positive.
    epsilon_kmh:
        Full L-infinity budget of the training-time attacker.
    total_epochs:
        Length of the training run, anchoring ``epsilon_schedule``.
    epsilon_schedule:
        ``"constant"`` uses ``epsilon_kmh`` from epoch 0; ``"linear"``
        ramps linearly from ``epsilon_kmh / total_epochs`` at epoch 0
        to the full budget at the final epoch (curriculum warm-up).
    attack:
        ``"fgsm"`` (one gradient step per batch, the cheap default) or
        ``"pgd"`` with ``pgd_steps`` iterations.
    max_step_kmh:
        The plausibility box's per-tick rate bound (None disables it).
    seed:
        Root of the per-batch seed derivation.
    """

    def __init__(
        self,
        predictor,
        scalers,
        *,
        robust_fraction: float,
        epsilon_kmh: float,
        total_epochs: int,
        epsilon_schedule: str = "constant",
        attack: str = "fgsm",
        pgd_steps: int = 3,
        max_step_kmh: float | None = 10.0,
        seed: int = 0,
        compile: bool = False,
    ):
        if scalers is None:
            raise ValueError(
                "adversarial training needs the dataset's fitted scalers to "
                "map the km/h attack surface onto scaled window images"
            )
        if not 0.0 < robust_fraction <= 1.0:
            raise ValueError(f"robust_fraction must be in (0, 1], got {robust_fraction}")
        if epsilon_kmh <= 0:
            raise ValueError(f"epsilon_kmh must be positive, got {epsilon_kmh}")
        if total_epochs < 1:
            raise ValueError(f"total_epochs must be >= 1, got {total_epochs}")
        if epsilon_schedule not in EPSILON_SCHEDULES:
            raise ValueError(
                f"unknown epsilon_schedule {epsilon_schedule!r}; have {EPSILON_SCHEDULES}"
            )
        if attack not in TRAIN_ATTACKS:
            raise ValueError(f"unknown training attack {attack!r}; have {TRAIN_ATTACKS}")
        if pgd_steps < 1:
            raise ValueError(f"pgd_steps must be >= 1, got {pgd_steps}")
        self.predictor = predictor
        self.scalers = scalers
        self.robust_fraction = float(robust_fraction)
        self.epsilon_kmh = float(epsilon_kmh)
        self.total_epochs = int(total_epochs)
        self.epsilon_schedule = epsilon_schedule
        self.attack = attack
        self.pgd_steps = int(pgd_steps)
        self.max_step_kmh = max_step_kmh
        self.seed = int(seed)
        # Compiled gradient/forward engines are held once here (attacks
        # are rebuilt per batch for their constraint, so per-attack tapes
        # would never get past their validation calls).
        self._gradient_fn = None
        self._cf_predict = None
        self._predictor_modules = None
        if compile:
            from ..attacks.gradients import CompiledInputGradient
            from ..nn.compile import CompiledFunction

            self._gradient_fn = CompiledInputGradient(predictor)

            def predict_fn(images, day_types, flat):
                return predictor.forward(images, day_types, flat)

            self._cf_predict = CompiledFunction(
                predict_fn, name="augment_predict", forward_only=True
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, predictor, scalers, spec) -> "AdversarialAugmenter":
        """Build from a :class:`repro.core.config.TrainSpec`."""
        return cls(
            predictor,
            scalers,
            robust_fraction=spec.robust_fraction,
            epsilon_kmh=spec.adv_epsilon_kmh,
            total_epochs=spec.epochs,
            epsilon_schedule=spec.epsilon_schedule,
            attack=spec.adv_attack,
            pgd_steps=spec.adv_pgd_steps,
            max_step_kmh=spec.adv_max_step_kmh,
            seed=spec.seed,
            compile=spec.compile,
        )

    # ------------------------------------------------------------------
    def epsilon_at(self, epoch: int) -> float:
        """The scheduled L-infinity budget for ``epoch`` (0-based)."""
        if self.epsilon_schedule == "constant":
            return self.epsilon_kmh
        return self.epsilon_kmh * min(1.0, (epoch + 1) / self.total_epochs)

    def _selection(self, num_units: int, rng: np.random.Generator) -> np.ndarray:
        """Sorted indices of the units to perturb (>= 1 when any exist)."""
        if num_units == 0:
            return np.array([], dtype=np.int64)
        count = max(1, int(round(self.robust_fraction * num_units)))
        return np.sort(rng.permutation(num_units)[:count])

    def _build_attack(self, constraint: PlausibilityBox, attack_seed: int):
        if self.attack == "fgsm":
            return FGSMAttack(
                self.predictor, self.scalers, constraint,
                gradient_fn=self._gradient_fn,
            )
        return PGDAttack(
            self.predictor, self.scalers, constraint,
            steps=self.pgd_steps, seed=attack_seed,
            gradient_fn=self._gradient_fn,
        )

    def _mse(self, images: np.ndarray, day_types: np.ndarray, targets: np.ndarray) -> float:
        """Grad-free mean squared scaled error on a sub-batch."""
        flat = flatten_windows(images, day_types)
        # The compiled forward covers one predict() chunk; larger batches
        # would change the BLAS call pattern, so they stay on the eager
        # chunked path.
        if self._cf_predict is not None and len(flat) <= 1024:
            # Inline eval()/train() over a cached module list — the
            # recursive walk is measurable at attack-loop frequency, and
            # the augmenter's predictor structure is fixed for its life.
            if self._predictor_modules is None:
                self._predictor_modules = list(self.predictor.modules())
            was_training = self.predictor.training
            for module in self._predictor_modules:
                object.__setattr__(module, "training", False)
            try:
                run = self._cf_predict(images, day_types, flat)
            finally:
                if was_training:
                    for module in self._predictor_modules:
                        object.__setattr__(module, "training", True)
            prediction = run.outputs[0].data
            return float(np.mean((prediction - targets) ** 2))
        prediction = self.predictor.predict(images, day_types, flat)
        return float(np.mean((prediction - targets) ** 2))

    def _perturb_rows(
        self,
        images: np.ndarray,
        day_types: np.ndarray,
        targets: np.ndarray,
        rows: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, AugmentInfo]:
        """Attack ``rows`` of a row-aligned window batch.

        Returns ``(adv_images, adv_flat, info)``; rows not selected are
        bitwise-untouched copies of the input.
        """
        num_samples = int(images.shape[0])
        if rows.size == 0 or epsilon <= 0:
            return (
                images,
                flatten_windows(images, day_types),
                AugmentInfo(epsilon, 0, num_samples, float("nan"), float("nan"), 0.0),
            )
        sub_images = images[rows]
        sub_day_types = day_types[rows]
        sub_targets = targets[rows]
        constraint = PlausibilityBox(epsilon_kmh=epsilon, max_step_kmh=self.max_step_kmh)
        attack = self._build_attack(constraint, int(rng.integers(0, 2**63 - 1)))
        result = attack.perturb(sub_images, sub_day_types, sub_targets)
        if self.attack == "fgsm":
            # FGSM's recorded loss is the *clean* summed squared error on
            # exactly this sub-batch (one gradient call, taken before the
            # step), so the clean forward need not run twice: np.mean is
            # the same pairwise sum followed by one division by the count.
            clean_loss = result.losses[0] / sub_targets.size
        else:
            # PGD's first loss sits at the random start, not the clean
            # window; keep the explicit clean forward.
            clean_loss = self._mse(sub_images, sub_day_types, sub_targets)
        robust_loss = self._mse(result.images, sub_day_types, sub_targets)
        adv_images = np.array(images, dtype=np.float64, copy=True)
        adv_images[rows] = result.images
        adv_flat = flatten_windows(adv_images, day_types)
        info = AugmentInfo(
            epsilon_kmh=epsilon,
            num_perturbed=int(rows.size),
            num_samples=num_samples,
            clean_loss=clean_loss,
            robust_loss=robust_loss,
            max_abs_delta_kmh=result.max_abs_delta_kmh,
        )
        return adv_images, adv_flat, info

    # ------------------------------------------------------------------
    def augment_batch(self, batch: Batch, *, epoch: int, step: int) -> tuple[Batch, AugmentInfo]:
        """Mixed clean+perturbed version of a supervised minibatch.

        ``step`` is the trainer's global batch counter; together with
        the augmenter's root seed it fully determines the perturbation.
        """
        rng = np.random.default_rng(derive_task_seed(self.seed, step))
        rows = self._selection(len(batch), rng)
        epsilon = self.epsilon_at(epoch)
        images, flat, info = self._perturb_rows(
            batch.images, batch.day_types, batch.targets, rows, epsilon, rng
        )
        if info.num_perturbed == 0:
            return batch, info
        return (
            Batch(
                images=images,
                day_types=batch.day_types,
                flat=flat,
                targets=batch.targets,
                indices=batch.indices,
            ),
            info,
        )

    def augment_rollout(
        self, batch: RolloutBatch, alpha: int, *, epoch: int, step: int
    ) -> tuple[RolloutBatch, AugmentInfo]:
        """Mixed clean+perturbed version of an adversarial rollout batch.

        Selection operates on *anchors*: every window of a selected
        anchor's alpha-long history is perturbed, so the predicted
        sequence the discriminator judges comes from a coherently
        attacked feed rather than a mix of clean and attacked windows.
        """
        rng = np.random.default_rng(derive_task_seed(self.seed, step))
        anchors = self._selection(batch.num_anchors, rng)
        rows = (anchors[:, None] * alpha + np.arange(alpha)[None, :]).reshape(-1)
        epsilon = self.epsilon_at(epoch)
        images, flat, info = self._perturb_rows(
            batch.group_images, batch.group_day_types, batch.group_targets, rows, epsilon, rng
        )
        if info.num_perturbed == 0:
            return batch, info
        return (
            RolloutBatch(
                group_images=images,
                group_day_types=batch.group_day_types,
                group_flat=flat,
                group_targets=batch.group_targets,
                condition=batch.condition,
                anchor_targets=batch.anchor_targets,
                anchors=batch.anchors,
            ),
            info,
        )
