"""Attention-based predictor — an extension beyond the paper's four bodies.

Section VI plans comparisons against newer models; attention networks
are the obvious family ([19]–[25] cite several).  This predictor applies
single-head scaled dot-product self-attention over the alpha timesteps
of the feature sequence, pools the attended sequence, and regresses the
next speed.  It plugs into everything the other predictors do: plain
training, the APOTS adversarial game, evaluation, checkpoints.
"""

from __future__ import annotations

import math

import numpy as np

from .. import nn
from ..data.features import FeatureConfig
from .config import ModelSpec

__all__ = ["AttentionPredictor", "SelfAttention"]


class SelfAttention(nn.Module):
    """Single-head scaled dot-product self-attention over (B, T, D)."""

    def __init__(self, input_dim: int, attention_dim: int, rng: np.random.Generator):
        super().__init__()
        self.attention_dim = attention_dim
        self.query = nn.Linear(input_dim, attention_dim, rng=rng)
        self.key = nn.Linear(input_dim, attention_dim, rng=rng)
        self.value = nn.Linear(input_dim, attention_dim, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        """Return the attended sequence, shape (B, T, attention_dim)."""
        q = self.query(x)  # (B, T, A)
        k = self.key(x)
        v = self.value(x)
        scores = (q @ k.transpose(0, 2, 1)) * (1.0 / math.sqrt(self.attention_dim))
        weights = nn.ops.softmax(scores, axis=-1)  # (B, T, T)
        return weights @ v

    def attention_weights(self, x: np.ndarray) -> np.ndarray:
        """Grad-free attention map for interpretability, (B, T, T)."""
        with nn.no_grad():
            t = nn.Tensor(x)
            q = self.query(t)
            k = self.key(t)
            scores = (q @ k.transpose(0, 2, 1)) * (1.0 / math.sqrt(self.attention_dim))
            return nn.ops.softmax(scores, axis=-1).data


class AttentionPredictor(nn.Module):
    """A: attention over time, mean-pooled, with the persistence skip.

    Registered as predictor kind "A" (see ``repro.core.build_predictor``);
    not part of the paper's grid, so the Section V experiments ignore it
    unless explicitly requested.
    """

    kind = "A"

    def __init__(self, features: FeatureConfig, spec: ModelSpec | None = None, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.features = features
        width = spec.fc_widths[-1] if spec is not None else 64
        self.embed = nn.Linear(features.image_rows, width, rng=rng)
        self.attention = SelfAttention(width, width, rng=rng)
        self.head = nn.Linear(width + 4 + 1, 1, rng=rng)

    def forward(self, images: nn.Tensor, day_types: nn.Tensor, flat: nn.Tensor) -> nn.Tensor:
        sequence = images.transpose(0, 2, 1)  # (B, alpha, rows)
        embedded = self.embed(sequence).tanh()
        attended = self.attention(embedded)  # (B, alpha, width)
        pooled = attended.mean(axis=1)
        last_speed = images[:, self.features.m, -1].reshape(-1, 1)
        return self.head(nn.ops.concat([pooled, day_types, last_speed], axis=1)).reshape(-1)

    # The Predictor helpers are reused via duck typing in build_predictor;
    # define them here to keep the same public contract.
    def predict_arrays(self, images, day_types, flat):
        return self.forward(nn.Tensor(images), nn.Tensor(day_types), nn.Tensor(flat))

    def predict(self, images, day_types, flat, batch_size: int = 1024):
        was_training = self.training
        self.eval()
        outputs = []
        with nn.no_grad():
            for start in range(0, len(flat), batch_size):
                sl = slice(start, start + batch_size)
                outputs.append(self.predict_arrays(images[sl], day_types[sl], flat[sl]).data)
        if was_training:
            self.train()
        return np.concatenate(outputs) if outputs else np.array([])
