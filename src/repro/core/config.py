"""Hyper-parameters of APOTS (paper Table I) and scale presets.

Table I of the paper:

===============  =====================  ==============================
Predictor        Hidden layers          Hidden nodes / filter sizes
===============  =====================  ==============================
F (FC)           4                      512, 128, 256, 64
L (LSTM)         2                      512, 512
C (CNN)          3                      128, 32, 64; filters 3x3, 1x1, 3x3
H (Hybrid: L+C)  CNN (3) + LSTM (2)     CNN (128, 32, 64) + LSTM (512, 512)
===============  =====================  ==============================

Learning rate 0.001 for every model.  The discriminator is five
fully-connected layers (Section V-A).

Training a 20-cell grid of GANs at paper widths is too slow for CI on a
numpy substrate, so :class:`ScalePreset` scales widths / epochs / data
volume; ``paper`` is the faithful setting, ``smoke`` is for tests and
benchmarks, ``medium`` is the compromise used to produce EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "PredictorKind",
    "ModelSpec",
    "TrainSpec",
    "ScalePreset",
    "PRESETS",
    "EPSILON_SCHEDULES",
    "TRAIN_ATTACKS",
    "table1_spec",
]

#: Valid predictor identifiers, named as in the paper.
PredictorKind = str  # "F" | "L" | "C" | "H" | "A" (attention extension)

_VALID_KINDS = ("F", "L", "C", "H", "A")  # "A" = attention extension


def _scaled(widths: list[int], factor: float, minimum: int = 8) -> list[int]:
    """Scale layer widths down by ``factor`` with a floor."""
    return [max(minimum, int(round(w * factor))) for w in widths]


@dataclass(frozen=True)
class ModelSpec:
    """Architecture of one predictor plus the shared discriminator."""

    kind: PredictorKind
    fc_widths: list[int] = field(default_factory=lambda: [512, 128, 256, 64])
    lstm_widths: list[int] = field(default_factory=lambda: [512, 512])
    cnn_channels: list[int] = field(default_factory=lambda: [128, 32, 64])
    cnn_kernels: list[tuple[int, int]] = field(default_factory=lambda: [(3, 3), (1, 1), (3, 3)])
    discriminator_widths: list[int] = field(default_factory=lambda: [256, 128, 64, 32])

    def __post_init__(self):
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown predictor kind {self.kind!r}; expected one of {_VALID_KINDS}")
        if len(self.cnn_channels) != len(self.cnn_kernels):
            raise ValueError("cnn_channels and cnn_kernels must have the same length")

    def scaled(self, width_factor: float) -> "ModelSpec":
        """Return a copy with every width multiplied by ``width_factor``."""
        if width_factor == 1.0:
            return self
        return replace(
            self,
            fc_widths=_scaled(self.fc_widths, width_factor),
            lstm_widths=_scaled(self.lstm_widths, width_factor),
            cnn_channels=_scaled(self.cnn_channels, width_factor, minimum=4),
            discriminator_widths=_scaled(self.discriminator_widths, width_factor),
        )


#: Valid ``TrainSpec.epsilon_schedule`` values for adversarial training.
EPSILON_SCHEDULES = ("constant", "linear")

#: Attacks usable at *training* time (evaluation sweeps support more).
TRAIN_ATTACKS = ("fgsm", "pgd")


@dataclass(frozen=True)
class TrainSpec:
    """Optimisation settings (paper: Adam, lr = 0.001).

    The ``robust_*`` / ``adv_epsilon_*`` fields configure input-space
    adversarial training (see :mod:`repro.core.adversarial_training`);
    the default ``robust_fraction=0.0`` disables it entirely and keeps
    training bitwise-identical to the pre-augmenter behaviour.
    """

    learning_rate: float = 0.001
    epochs: int = 20
    batch_size: int = 128
    adversarial_batch_size: int = 32
    discriminator_steps: int = 1
    mse_weight: float | None = None  # None -> alpha (the paper's alpha:1 rule)
    adv_weight: float = 1.0
    grad_clip: float = 5.0
    saturating_adv_loss: bool = False  # paper writes log(1-D); non-saturating trains better
    max_steps_per_epoch: int | None = None  # subsample batches for speed
    early_stopping_patience: int | None = None  # epochs without val improvement
    robust_fraction: float = 0.0  # fraction of each batch perturbed adversarially
    adv_epsilon_kmh: float = 5.0  # training-time L-inf budget (km/h)
    epsilon_schedule: str = "constant"  # "constant" | "linear" warm-up
    adv_attack: str = "fgsm"  # "fgsm" | "pgd"
    adv_pgd_steps: int = 3
    adv_max_step_kmh: float | None = 10.0  # plausibility per-tick rate bound
    compile: bool = False  # tape-replay the training hot path (repro.nn.compile)
    seed: int = 0

    def __post_init__(self):
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs <= 0 or self.batch_size <= 0 or self.adversarial_batch_size <= 0:
            raise ValueError("epochs and batch sizes must be positive")
        if not 0.0 <= self.robust_fraction <= 1.0:
            raise ValueError(f"robust_fraction must be in [0, 1], got {self.robust_fraction}")
        if self.adv_epsilon_kmh <= 0:
            raise ValueError(f"adv_epsilon_kmh must be positive, got {self.adv_epsilon_kmh}")
        if self.epsilon_schedule not in EPSILON_SCHEDULES:
            raise ValueError(
                f"unknown epsilon_schedule {self.epsilon_schedule!r}; have {EPSILON_SCHEDULES}"
            )
        if self.adv_attack not in TRAIN_ATTACKS:
            raise ValueError(f"unknown adv_attack {self.adv_attack!r}; have {TRAIN_ATTACKS}")
        if self.adv_pgd_steps < 1:
            raise ValueError(f"adv_pgd_steps must be >= 1, got {self.adv_pgd_steps}")
        if self.adv_max_step_kmh is not None and self.adv_max_step_kmh <= 0:
            raise ValueError(
                f"adv_max_step_kmh must be positive or None, got {self.adv_max_step_kmh}"
            )


@dataclass(frozen=True)
class ScalePreset:
    """One experiment scale: data volume, widths and epochs."""

    name: str
    num_days: int
    width_factor: float
    epochs: int
    adversarial_epochs: int
    batch_size: int = 128
    adversarial_batch_size: int = 32
    max_steps_per_epoch: int | None = None

    def train_spec(self, adversarial: bool = False, seed: int = 0) -> TrainSpec:
        """Build the TrainSpec this preset implies."""
        return TrainSpec(
            epochs=self.adversarial_epochs if adversarial else self.epochs,
            batch_size=self.batch_size,
            adversarial_batch_size=self.adversarial_batch_size,
            max_steps_per_epoch=self.max_steps_per_epoch,
            seed=seed,
        )


PRESETS: dict[str, ScalePreset] = {
    "smoke": ScalePreset(
        name="smoke",
        num_days=10,
        width_factor=0.0625,  # 512 -> 32
        epochs=3,
        adversarial_epochs=2,
        batch_size=128,
        adversarial_batch_size=16,
        max_steps_per_epoch=12,
    ),
    "medium": ScalePreset(
        name="medium",
        num_days=60,
        width_factor=0.0625,  # 512 -> 32; single-core numpy is BLAS-bound
        epochs=16,
        adversarial_epochs=10,
        batch_size=256,
        adversarial_batch_size=32,
        max_steps_per_epoch=60,
    ),
    "paper": ScalePreset(
        name="paper",
        num_days=122,
        width_factor=1.0,
        epochs=30,
        adversarial_epochs=20,
        batch_size=128,
        adversarial_batch_size=32,
    ),
}


def table1_spec(kind: PredictorKind, width_factor: float = 1.0) -> ModelSpec:
    """The paper's Table I architecture for ``kind``, optionally scaled."""
    return ModelSpec(kind=kind).scaled(width_factor)
