"""Data-parallel supervised training over a worker group.

:class:`DataParallelTrainer` is a drop-in :class:`SupervisedTrainer`
that splits every minibatch into contiguous shards, has one replica
process per shard compute the shard's gradient, averages the gradients
(weighted by shard size, so the average equals the full-batch gradient)
and applies **one** synchronized Adam step in the parent.  Everything
else — batch order, early stopping, gradient clipping, obs events —
is inherited unchanged, which is what pins the equivalence:

* ``workers=1`` never spawns a process and is *bitwise* identical to
  :class:`SupervisedTrainer` (it literally runs the parent class's
  step);
* ``workers>1`` matches the serial trainer step-for-step up to
  floating-point summation order (the per-shard partial sums of the
  same per-sample terms), held to tight tolerance by
  ``tests/core/test_data_parallel.py``.

The wire protocol is deliberately dumb: the parent ships the current
parameter arrays plus the shard's batch arrays down a pipe each step
and gets ``(loss, n_samples, gradients)`` back
(:class:`repro.parallel.WorkerGroup`).  On this numpy substrate the
arrays are small and pipe transport is cheap relative to the
forward/backward work; replicas hold no optimiser state, so a restart
can rebuild the group from the parent's parameters at any step.

Because the predictors' train-mode forward is deterministic (no
dropout in any Table I architecture), replicas need no RNG
coordination; if a stochastic layer is ever added, shard gradients
would need per-shard seeds derived the :mod:`repro.parallel.seeding`
way and the serial-equivalence pin would have to be relaxed.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.dataset import TrafficDataset
from ..obs import RunRecorder
from ..parallel import WorkerGroup
from .config import TrainSpec
from .predictors import Predictor
from .trainer import SupervisedTrainer, TrainHistory

__all__ = ["DataParallelTrainer"]


class _Replica:
    """Worker-side model copy answering gradient requests."""

    def __init__(self, predictor: Predictor):
        self.predictor = predictor
        self.predictor.train()
        self.params = predictor.parameters()
        self.loss_fn = nn.MSELoss()

    def grad_shard(self, param_arrays, images, day_types, flat, targets):
        """The shard's (mean loss, sample count, gradient arrays)."""
        for param, array in zip(self.params, param_arrays):
            param.data = array
        prediction = self.predictor.predict_arrays(images, day_types, flat)
        loss = self.loss_fn(prediction, targets)
        for param in self.params:
            param.zero_grad()
        loss.backward()
        grads = [None if p.grad is None else np.array(p.grad) for p in self.params]
        return loss.item(), int(images.shape[0]), grads


class _ReplicaFactory:
    """Picklable factory building the replica inside the worker."""

    def __init__(self, predictor: Predictor):
        self.predictor = predictor

    def __call__(self) -> _Replica:
        return _Replica(self.predictor)


class DataParallelTrainer(SupervisedTrainer):
    """Shard minibatch gradients across processes; one Adam step per batch.

    Parameters match :class:`SupervisedTrainer` plus:

    workers:
        Number of replica processes.  ``<= 1`` is the exact serial path.
    context:
        Multiprocessing start method (``"fork"``/``"spawn"``/None for
        the platform default).  Spawn works because the replica factory
        ships the predictor by pickle.
    """

    def __init__(
        self,
        predictor: Predictor,
        spec: TrainSpec | None = None,
        workers: int = 2,
        context=None,
    ):
        super().__init__(predictor, spec)
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        self.workers = workers
        self.context = context
        self._group: WorkerGroup | None = None
        self._params = predictor.parameters()

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: TrafficDataset,
        verbose: bool = False,
        recorder: RunRecorder | None = None,
    ) -> TrainHistory:
        if self.workers <= 1:
            return super().fit(dataset, verbose=verbose, recorder=recorder)
        self._group = WorkerGroup(
            _ReplicaFactory(self.predictor), self.workers, context=self.context
        )
        try:
            return super().fit(dataset, verbose=verbose, recorder=recorder)
        finally:
            self._group.close()
            self._group = None

    # ------------------------------------------------------------------
    def _shards(self, n: int) -> list[slice]:
        """Contiguous, near-even, non-empty sample slices of ``range(n)``."""
        bounds = np.linspace(0, n, num=min(self.workers, n) + 1, dtype=int)
        return [
            slice(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
        ]

    def _train_step(self, batch) -> tuple[float, float]:
        shards = self._shards(batch.images.shape[0]) if self._group is not None else []
        if len(shards) <= 1:
            # One shard would round-trip arrays for nothing — and with a
            # single shard the serial step is the same computation.
            return super()._train_step(batch)
        param_arrays = [param.data for param in self._params]
        calls = [
            (
                param_arrays,
                batch.images[shard],
                batch.day_types[shard],
                batch.flat[shard],
                batch.targets[shard],
            )
            for shard in shards
        ]
        replies = self._group.scatter("grad_shard", calls)
        total = sum(count for _, count, _ in replies)
        loss_value = sum(loss * count for loss, count, _ in replies) / total
        for position, param in enumerate(self._params):
            accumulated = None
            for _, count, grads in replies:
                grad = grads[position]
                if grad is None:
                    continue
                weighted = (count / total) * grad
                accumulated = weighted if accumulated is None else accumulated + weighted
            param.grad = accumulated
        grad_norm = nn.clip_grad_norm(self._params, self.spec.grad_clip)
        self.optimizer.step()
        return float(loss_value), grad_norm
