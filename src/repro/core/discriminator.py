"""The APOTS discriminator (Section III-A, V-A).

A five-layer fully-connected network receiving an alpha-long speed
*sequence* (never a single speed — Section III-A explains why) plus the
additional-data condition E (Eq 4).  Outputs a raw logit; probabilities
come from a sigmoid, but training uses the logits for stability.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.features import FeatureConfig
from .config import ModelSpec

__all__ = ["Discriminator"]


class Discriminator(nn.Module):
    """D(sequence | E) -> logit that the sequence is real.

    Parameters
    ----------
    features:
        Window geometry (supplies alpha and condition_dim).
    spec:
        Hidden widths (Table I's discriminator is 5 FC layers: four
        hidden + one output).
    conditional:
        When False the condition input is ignored structurally
        (the Eq 1/2 unconditional game); the input size stays fixed so
        weights remain comparable — a zero condition is simply expected.
    sequence_length:
        Length of the speed sequence D inspects.  Defaults to alpha (the
        paper's choice); 1 reproduces the naive single-speed variant that
        Section III-A argues degrades training (kept for the ablation
        bench).
    """

    def __init__(
        self,
        features: FeatureConfig,
        spec: ModelSpec | None = None,
        conditional: bool = True,
        sequence_length: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        widths = list(spec.discriminator_widths) if spec is not None else [256, 128, 64, 32]
        self.features = features
        self.conditional = conditional
        self.sequence_length = sequence_length if sequence_length is not None else features.alpha
        if not 1 <= self.sequence_length <= features.alpha:
            raise ValueError(f"sequence_length must be in [1, alpha], got {self.sequence_length}")
        input_dim = self.sequence_length + (features.condition_dim if conditional else 0)
        dims = [input_dim] + widths + [1]
        stack = nn.Sequential()
        for i in range(len(dims) - 2):
            stack.append(nn.Linear(dims[i], dims[i + 1], rng=rng))
            stack.append(nn.LeakyReLU(0.2))
        stack.append(nn.Linear(dims[-2], dims[-1], rng=rng))
        self.net = stack

    def forward(self, sequences: nn.Tensor, condition: nn.Tensor | None = None) -> nn.Tensor:
        """Return (B,) logits for (B, alpha) sequences."""
        if self.conditional:
            if condition is None:
                raise ValueError("conditional discriminator requires a condition")
            x = nn.ops.concat([sequences, condition], axis=1)
        else:
            x = sequences
        return self.net(x).reshape(-1)

    def probability(self, sequences: np.ndarray, condition: np.ndarray | None = None) -> np.ndarray:
        """Grad-free D(.) probabilities for numpy inputs."""
        with nn.no_grad():
            cond = nn.Tensor(condition) if condition is not None else None
            logits = self.forward(nn.Tensor(sequences), cond)
            return logits.sigmoid().data
