"""The APOTS facade — the library's main entry point.

Wires together a predictor (F / L / C / H), the optional adversarial
game, and the feature configuration, behind a fit / predict / evaluate
API:

>>> from repro import APOTS
>>> from repro.data import TrafficDataset
>>> from repro.traffic import simulate, SimulationConfig
>>> series = simulate(SimulationConfig(num_days=10))
>>> dataset = TrafficDataset(series)
>>> model = APOTS(predictor="H", preset="smoke", seed=0)
>>> model.fit(dataset)                                    # doctest: +SKIP
>>> report = model.evaluate(dataset, subset="test")       # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import TrafficDataset
from ..data.features import FeatureConfig, FeatureScalers
from ..data.profile import ReferenceProfile
from ..metrics.errors import all_errors
from ..metrics.regimes import RegimeMasks, classify_regimes
from ..obs import RunRecorder
from .adversarial import AdversarialHistory, APOTSTrainer
from .config import PRESETS, ModelSpec, ScalePreset, TrainSpec, table1_spec
from .discriminator import Discriminator
from .predictors import Predictor, build_predictor
from .trainer import SupervisedTrainer, TrainHistory

__all__ = ["EvaluationReport", "APOTS"]


@dataclass
class EvaluationReport:
    """Errors per regime plus the raw arrays behind them."""

    overall: dict[str, float]
    by_regime: dict[str, dict[str, float]]
    regime_counts: dict[str, int]
    predictions_kmh: np.ndarray
    targets_kmh: np.ndarray

    @property
    def mape(self) -> float:
        return self.overall["mape"]

    @property
    def mae(self) -> float:
        return self.overall["mae"]

    @property
    def rmse(self) -> float:
        return self.overall["rmse"]

    def regime_mape(self, regime: str) -> float:
        """MAPE of one regime ('whole', 'normal', 'abrupt_acc', 'abrupt_dec')."""
        return self.by_regime[regime]["mape"]


class APOTS:
    """Adversarial Prediction Of Traffic Speed.

    Parameters
    ----------
    predictor:
        One of "F", "L", "C", "H" (Table I names).
    features:
        Window geometry; must match the dataset it is fitted on.
    adversarial:
        Whether to run the Eq 4 minimax game (the "w/ Adv." columns).
    conditional:
        Whether D is conditioned on the additional data E (Eq 4 vs the
        unconditional Eq 1/2 game).  Ignored when ``adversarial=False``.
    preset:
        Name of a :data:`repro.core.config.PRESETS` scale, or a
        :class:`ScalePreset`.  Controls widths and training length.
    train_spec:
        Full manual control over optimisation; overrides the preset's
        training settings when given.
    seed:
        Master seed for weight init and batch shuffling.
    """

    def __init__(
        self,
        predictor: str = "H",
        features: FeatureConfig | None = None,
        adversarial: bool = True,
        conditional: bool = True,
        preset: str | ScalePreset = "medium",
        train_spec: TrainSpec | None = None,
        model_spec: ModelSpec | None = None,
        seed: int = 0,
    ):
        self.features = features if features is not None else FeatureConfig()
        self.adversarial = adversarial
        self.seed = seed
        if isinstance(preset, str):
            try:
                preset = PRESETS[preset]
            except KeyError:
                raise ValueError(f"unknown preset {preset!r}; have {sorted(PRESETS)}") from None
        self.preset = preset
        self.train_spec = (
            train_spec
            if train_spec is not None
            else preset.train_spec(adversarial=adversarial, seed=seed)
        )
        spec = model_spec if model_spec is not None else table1_spec(predictor, preset.width_factor)
        self.spec = spec
        rng = np.random.default_rng(seed)
        self.predictor: Predictor = build_predictor(predictor, self.features, spec=spec, rng=rng)
        self.discriminator: Discriminator | None = None
        if adversarial:
            self.discriminator = Discriminator(
                self.features, spec=spec, conditional=conditional, rng=rng
            )
        self.history: TrainHistory | AdversarialHistory | None = None
        #: Train-fitted feature scalers, recorded by :meth:`fit` (and by
        #: checkpoint loading) so that online serving can transform raw
        #: km/h observations exactly as training did.
        self.scalers: FeatureScalers | None = None
        #: Distribution profile of the raw km/h speeds this model was
        #: fitted on (``repro.data.ReferenceProfile``), recorded by
        #: :meth:`fit` and carried in format-v3 checkpoints so serving
        #: can monitor input drift.  ``None`` on unfitted models and on
        #: v1/v2 checkpoints.
        self.reference_profile: "ReferenceProfile | None" = None

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self.predictor.kind

    @property
    def name(self) -> str:
        """Paper-style display name, e.g. "APOTS_H" or "F"."""
        return f"APOTS_{self.kind}" if self.adversarial else self.kind

    def _check_dataset(self, dataset: TrafficDataset) -> None:
        # Graph-neighbourhood configs carry a row layout; when either side
        # has one, alpha/m agreement is not enough — the whole geometry
        # (including the layout's row map) must match.
        graph_sided = hasattr(dataset.config, "layout") or hasattr(self.features, "layout")
        if graph_sided:
            if dataset.config != self.features:
                raise ValueError(
                    "dataset feature geometry does not match the model "
                    f"(model {type(self.features).__name__} alpha={self.features.alpha} "
                    f"m={self.features.m} rows={self.features.num_roads}, dataset "
                    f"{type(dataset.config).__name__} alpha={dataset.config.alpha} "
                    f"m={dataset.config.m} rows={dataset.config.num_roads}; layouts "
                    f"must be identical)"
                )
            return
        if dataset.config.alpha != self.features.alpha or dataset.config.m != self.features.m:
            raise ValueError(
                "dataset feature geometry does not match the model "
                f"(model alpha={self.features.alpha} m={self.features.m}, "
                f"dataset alpha={dataset.config.alpha} m={dataset.config.m})"
            )

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: TrafficDataset,
        verbose: bool = False,
        recorder: "RunRecorder | None" = None,
    ) -> "APOTS":
        """Train on the dataset's train split; returns self.

        ``recorder`` (a :class:`repro.obs.RunRecorder`) is forwarded to
        the trainer; without one the trainer falls back to the ambient
        recorder, and with neither the run is unobserved (zero cost).
        """
        self._check_dataset(dataset)
        self.scalers = dataset.features.scalers
        self.reference_profile = ReferenceProfile.from_series(dataset.series)
        if self.adversarial:
            assert self.discriminator is not None
            trainer = APOTSTrainer(self.predictor, self.discriminator, self.train_spec)
        else:
            trainer = SupervisedTrainer(self.predictor, self.train_spec)
        self.history = trainer.fit(dataset, verbose=verbose, recorder=recorder)
        return self

    def predict(self, dataset: TrafficDataset, subset: str = "test") -> np.ndarray:
        """Predict km/h speeds for a dataset partition."""
        self._check_dataset(dataset)
        indices = dataset.subset(subset)
        batch = dataset.batch(indices)
        scaled = self.predictor.predict(batch.images, batch.day_types, batch.flat)
        return dataset.kmh(scaled)

    def evaluate(self, dataset: TrafficDataset, subset: str = "test") -> EvaluationReport:
        """Errors overall and per abrupt-change regime (Section V-B)."""
        predictions = self.predict(dataset, subset)
        targets_kmh, last_input_kmh = dataset.evaluation_arrays(subset)
        masks: RegimeMasks = classify_regimes(last_input_kmh, targets_kmh)
        by_regime = {}
        for regime, mask in masks.as_dict().items():
            if mask.sum() == 0:
                by_regime[regime] = {"mae": float("nan"), "rmse": float("nan"), "mape": float("nan")}
            else:
                by_regime[regime] = all_errors(predictions[mask], targets_kmh[mask])
        return EvaluationReport(
            overall=all_errors(predictions, targets_kmh),
            by_regime=by_regime,
            regime_counts=masks.counts(),
            predictions_kmh=predictions,
            targets_kmh=targets_kmh,
        )
