"""The four predictor bodies of APOTS: F, C, L and H (Section IV-B).

Every predictor consumes the same fixed-size inputs (the Q2 zero-filling
rule keeps sizes constant across ablations) and emits one scaled speed
per sample:

* **F** — fully connected over the flattened feature vector;
* **C** — CNN over the (roads + non-speed channels) x time image (Eq 6),
  with the day-type bits joined at the dense head;
* **L** — stacked LSTM over the per-timestep feature sequence;
* **H** — the hybrid: the CNN stack extracts spatio-temporal features
  column-by-column, then the LSTM reads the resulting sequence (LC-RNN
  style [24]).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.features import FeatureConfig
from .config import ModelSpec, table1_spec

__all__ = ["Predictor", "FCPredictor", "CNNPredictor", "LSTMPredictor", "HybridPredictor", "build_predictor"]


class Predictor(nn.Module):
    """Common interface: arrays in, scaled speed predictions out.

    Subclasses implement :meth:`forward` over pre-built Tensors; the
    :meth:`predict_arrays` helper wraps plain numpy arrays, and
    :meth:`predict` runs batched grad-free inference.
    """

    kind: str = "?"

    def __init__(self, features: FeatureConfig):
        super().__init__()
        self.features = features

    def forward(self, images: nn.Tensor, day_types: nn.Tensor, flat: nn.Tensor) -> nn.Tensor:
        raise NotImplementedError

    def predict_arrays(
        self, images: np.ndarray, day_types: np.ndarray, flat: np.ndarray
    ) -> nn.Tensor:
        """Forward over raw arrays (used inside training loops)."""
        return self.forward(nn.Tensor(images), nn.Tensor(day_types), nn.Tensor(flat))

    def predict(
        self,
        images: np.ndarray,
        day_types: np.ndarray,
        flat: np.ndarray,
        batch_size: int = 1024,
    ) -> np.ndarray:
        """Grad-free batched inference returning a (N,) numpy array."""
        was_training = self.training
        self.eval()
        outputs = []
        with nn.no_grad():
            for start in range(0, len(flat), batch_size):
                sl = slice(start, start + batch_size)
                outputs.append(self.predict_arrays(images[sl], day_types[sl], flat[sl]).data)
        if was_training:
            self.train()
        return np.concatenate(outputs) if outputs else np.array([])


def _fc_stack(dims: list[int], rng: np.random.Generator) -> nn.Sequential:
    """Build Linear+ReLU blocks ending with a Linear to the last dim."""
    stack = nn.Sequential()
    for i in range(len(dims) - 2):
        stack.append(nn.Linear(dims[i], dims[i + 1], rng=rng))
        stack.append(nn.ReLU())
    stack.append(nn.Linear(dims[-2], dims[-1], rng=rng))
    return stack


class FCPredictor(Predictor):
    """F: the paper's basic fully-connected model (4 hidden layers)."""

    kind = "F"

    def __init__(self, features: FeatureConfig, spec: ModelSpec | None = None, rng=None):
        super().__init__(features)
        spec = spec if spec is not None else table1_spec("F")
        rng = rng if rng is not None else np.random.default_rng()
        dims = [features.flat_dim] + list(spec.fc_widths) + [1]
        self.net = _fc_stack(dims, rng)

    def forward(self, images: nn.Tensor, day_types: nn.Tensor, flat: nn.Tensor) -> nn.Tensor:
        return self.net(flat).reshape(-1)


class _ConvStack(nn.Module):
    """The Table I CNN trunk: shape-preserving conv layers with ReLU."""

    def __init__(self, channels: list[int], kernels: list[tuple[int, int]], rng):
        super().__init__()
        layers = nn.Sequential()
        in_channels = 1
        for out_channels, kernel in zip(channels, kernels):
            padding = (kernel[0] // 2, kernel[1] // 2)  # preserve H x W
            layers.append(nn.Conv2d(in_channels, out_channels, kernel, padding=padding, rng=rng))
            layers.append(nn.ReLU())
            in_channels = out_channels
        self.layers = layers
        self.out_channels = in_channels

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.layers(x)


class CNNPredictor(Predictor):
    """C: convolutional model over the feature image [47]."""

    kind = "C"

    def __init__(self, features: FeatureConfig, spec: ModelSpec | None = None, rng=None):
        super().__init__(features)
        spec = spec if spec is not None else table1_spec("C")
        rng = rng if rng is not None else np.random.default_rng()
        self.trunk = _ConvStack(spec.cnn_channels, spec.cnn_kernels, rng)
        conv_dim = self.trunk.out_channels * features.image_rows * features.alpha
        self.head = _fc_stack([conv_dim + 4, max(32, conv_dim // 16), 1], rng)

    def forward(self, images: nn.Tensor, day_types: nn.Tensor, flat: nn.Tensor) -> nn.Tensor:
        batch = images.shape[0]
        x = images.reshape(batch, 1, *images.shape[1:])
        features = self.trunk(x).reshape(batch, -1)
        return self.head(nn.ops.concat([features, day_types], axis=1)).reshape(-1)


class LSTMPredictor(Predictor):
    """L: stacked LSTM over the per-timestep feature sequence [9].

    The dense head reads the final hidden state, the day-type bits, and
    the last observed target-road speed (a skip connection): the
    recurrence then only has to model the *deviation* from persistence,
    which is what makes an LSTM competitive at small training budgets.
    """

    kind = "L"

    def __init__(self, features: FeatureConfig, spec: ModelSpec | None = None, rng=None):
        super().__init__(features)
        spec = spec if spec is not None else table1_spec("L")
        rng = rng if rng is not None else np.random.default_rng()
        self.lstm = nn.LSTM(features.image_rows, list(spec.lstm_widths), rng=rng)
        self.head = nn.Linear(spec.lstm_widths[-1] + 4 + 1, 1, rng=rng)

    def forward(self, images: nn.Tensor, day_types: nn.Tensor, flat: nn.Tensor) -> nn.Tensor:
        sequence = images.transpose(0, 2, 1)  # (B, alpha, rows)
        outputs, _ = self.lstm(sequence)
        last = outputs[:, -1, :]
        last_speed = images[:, self.features.m, -1].reshape(-1, 1)
        return self.head(nn.ops.concat([last, day_types, last_speed], axis=1)).reshape(-1)


class HybridPredictor(Predictor):
    """H: CNN feature extraction followed by LSTM sequence modelling [24].

    The conv trunk preserves the time axis; per timestep the (channel x
    road) activations are flattened, so the LSTM reads an alpha-long
    sequence of spatial feature vectors — spatio-temporal then
    sequential, as Section IV-B argues.  Flattening (rather than pooling
    over roads) keeps each road's identity visible to the recurrence.
    """

    kind = "H"

    def __init__(self, features: FeatureConfig, spec: ModelSpec | None = None, rng=None):
        super().__init__(features)
        spec = spec if spec is not None else table1_spec("H")
        rng = rng if rng is not None else np.random.default_rng()
        self.trunk = _ConvStack(spec.cnn_channels, spec.cnn_kernels, rng)
        per_step_dim = self.trunk.out_channels * features.image_rows
        self.lstm = nn.LSTM(per_step_dim, list(spec.lstm_widths), rng=rng)
        self.head = nn.Linear(spec.lstm_widths[-1] + 4 + 1, 1, rng=rng)

    def forward(self, images: nn.Tensor, day_types: nn.Tensor, flat: nn.Tensor) -> nn.Tensor:
        batch = images.shape[0]
        x = images.reshape(batch, 1, *images.shape[1:])
        conv = self.trunk(x)  # (B, C, rows, alpha)
        per_step = conv.reshape(batch, -1, conv.shape[3])  # (B, C*rows, alpha)
        sequence = per_step.transpose(0, 2, 1)  # (B, alpha, C*rows)
        outputs, _ = self.lstm(sequence)
        last = outputs[:, -1, :]
        # Persistence skip (see LSTMPredictor): predict the deviation.
        last_speed = images[:, self.features.m, -1].reshape(-1, 1)
        return self.head(nn.ops.concat([last, day_types, last_speed], axis=1)).reshape(-1)


def _attention_cls():
    from .attention import AttentionPredictor

    return AttentionPredictor


_REGISTRY = {"F": FCPredictor, "L": LSTMPredictor, "C": CNNPredictor, "H": HybridPredictor}


def build_predictor(
    kind: str,
    features: FeatureConfig,
    spec: ModelSpec | None = None,
    rng: np.random.Generator | None = None,
) -> Predictor:
    """Instantiate a predictor by its paper name (F / L / C / H)."""
    if kind == "A":
        cls = _attention_cls()
    else:
        try:
            cls = _REGISTRY[kind]
        except KeyError:
            valid = sorted(_REGISTRY) + ["A"]
            raise ValueError(f"unknown predictor kind {kind!r}; expected one of {valid}") from None
    return cls(features, spec=spec if spec is not None else table1_spec(kind), rng=rng)
