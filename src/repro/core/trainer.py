"""Plain supervised training (the paper's "w/o Adv." column).

Minimises the per-speed MSE of Eq 1's first term only.  Tracks train and
validation loss per epoch; the experiment harness uses validation MAPE
for early-stopping-style model selection when requested.

Observability mirrors :class:`repro.core.adversarial.APOTSTrainer`:
``fit`` accepts an optional :class:`repro.obs.RunRecorder` (falling
back to the ambient one), emits ``step`` / ``epoch`` / ``early_stop``
events with losses and pre-clip gradient norms, and runs a
:class:`repro.obs.TrainingMonitor` that flags NaN/Inf losses and
gradient norms.  Without a recorder the extra branches are skipped.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import asdict, dataclass, field

import numpy as np

from .. import nn
from ..data.dataset import TrafficDataset, iterate_batches
from ..obs import RunRecorder, TrainingMonitor, current_recorder
from .config import TrainSpec
from .predictors import Predictor

__all__ = ["TrainHistory", "SupervisedTrainer"]


@dataclass
class TrainHistory:
    """Per-epoch losses collected during a fit."""

    train_loss: list[float] = field(default_factory=list)
    validation_loss: list[float] = field(default_factory=list)
    grad_norm: list[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)


class SupervisedTrainer:
    """Adam + MSE trainer for any :class:`Predictor`.

    With ``spec.robust_fraction > 0`` each minibatch is adversarially
    augmented in place before the optimiser step (see
    :mod:`repro.core.adversarial_training`); the default 0.0 keeps
    training bitwise-identical to the augmenter-free behaviour.
    """

    def __init__(self, predictor: Predictor, spec: TrainSpec | None = None):
        self.predictor = predictor
        self.spec = spec if spec is not None else TrainSpec()
        self.optimizer = nn.Adam(predictor.parameters(), lr=self.spec.learning_rate)
        self.loss_fn = nn.MSELoss()
        self._compiled_step = None
        if self.spec.compile:
            from ..nn.compile import CompiledFunction

            def step_fn(images, day_types, flat, targets):
                prediction = self.predictor.forward(images, day_types, flat)
                return self.loss_fn(prediction, targets)

            self._compiled_step = CompiledFunction(step_fn, name="supervised_step")

    def _make_augmenter(self, dataset: TrafficDataset):
        """The input-space adversarial augmenter, or None when disabled.

        Imported lazily so the default ``robust_fraction=0.0`` path
        never touches :mod:`repro.attacks` at all.
        """
        if self.spec.robust_fraction <= 0.0:
            return None
        from .adversarial_training import AdversarialAugmenter

        return AdversarialAugmenter.from_spec(
            self.predictor, dataset.features.scalers, self.spec
        )

    def _train_step(self, batch) -> tuple[float, float]:
        """One optimiser update over ``batch``; returns (loss, grad norm).

        The single override point for trainers that change *where* the
        gradient is computed (see :class:`repro.core.DataParallelTrainer`)
        without touching the epoch loop, early stopping or telemetry.
        """
        if self._compiled_step is not None:
            run = self._compiled_step(batch.images, batch.day_types, batch.flat, batch.targets)
            self.optimizer.zero_grad()
            run.backward()
            grad_norm = self.optimizer.clip_grad_norm(self.spec.grad_clip)
            self.optimizer.step()
            return run.outputs[0].item(), grad_norm
        prediction = self.predictor.predict_arrays(batch.images, batch.day_types, batch.flat)
        loss = self.loss_fn(prediction, batch.targets)
        self.optimizer.zero_grad()
        loss.backward()
        grad_norm = self.optimizer.clip_grad_norm(self.spec.grad_clip)
        self.optimizer.step()
        return loss.item(), grad_norm

    def _epoch_batches(self, dataset: TrafficDataset, rng: np.random.Generator):
        batches = iterate_batches(
            dataset.subset("train"), self.spec.batch_size, rng=rng, shuffle=True
        )
        limit = self.spec.max_steps_per_epoch
        for step, indices in enumerate(batches):
            if limit is not None and step >= limit:
                return
            yield dataset.batch(indices)

    def fit(
        self,
        dataset: TrafficDataset,
        verbose: bool = False,
        recorder: RunRecorder | None = None,
    ) -> TrainHistory:
        """Train for up to ``spec.epochs`` epochs; returns the loss history.

        With ``spec.early_stopping_patience`` set, training stops after
        that many epochs without a validation improvement and the best
        weights (by validation loss) are restored.  ``recorder``
        defaults to the ambient :func:`repro.obs.use_recorder` recorder.
        """
        rng = np.random.default_rng(self.spec.seed)
        history = TrainHistory()
        rec = recorder if recorder is not None else current_recorder()
        monitor = TrainingMonitor(rec) if rec is not None else None
        if rec is not None:
            rec.annotate(
                trainer=type(self).__name__, train_spec=asdict(self.spec), seed=self.spec.seed
            )
        section = rec.section if rec is not None else (lambda name: nullcontext())
        patience = self.spec.early_stopping_patience
        best_val = float("inf")
        best_state = None
        stale_epochs = 0
        self.predictor.train()
        augmenter = self._make_augmenter(dataset)
        global_step = 0
        for epoch in range(self.spec.epochs):
            losses = []
            grad_norms = []
            for step, batch in enumerate(self._epoch_batches(dataset, rng)):
                if augmenter is not None:
                    # Augmentation runs here in the parent — before any
                    # sharding a subclass does — so the perturbed batch
                    # is identical under every worker count.
                    with section("adv_augment"):
                        batch, aug = augmenter.augment_batch(
                            batch, epoch=epoch, step=global_step
                        )
                    if aug.num_perturbed > 0:
                        if monitor is not None:
                            monitor.observe_robust(
                                global_step,
                                clean_loss=aug.clean_loss,
                                robust_loss=aug.robust_loss,
                            )
                        if rec is not None:
                            rec.event(
                                "adv_train_step",
                                epoch=epoch,
                                step=step,
                                epsilon=aug.epsilon_kmh,
                                num_perturbed=aug.num_perturbed,
                                num_samples=aug.num_samples,
                                clean_loss=aug.clean_loss,
                                robust_loss=aug.robust_loss,
                                max_abs_delta_kmh=aug.max_abs_delta_kmh,
                            )
                with section("train_step"):
                    loss_value, grad_norm = self._train_step(batch)
                losses.append(loss_value)
                grad_norms.append(grad_norm)
                if monitor is not None:
                    monitor.check_finite(global_step, train_loss=loss_value, grad_norm=grad_norm)
                if rec is not None:
                    rec.event(
                        "step", epoch=epoch, step=step, loss=loss_value, grad_norm=grad_norm
                    )
                global_step += 1
            history.train_loss.append(float(np.mean(losses)) if losses else float("nan"))
            history.grad_norm.append(float(np.mean(grad_norms)) if grad_norms else float("nan"))
            val_loss = self.validation_loss(dataset)
            history.validation_loss.append(val_loss)
            if rec is not None:
                rec.event(
                    "epoch",
                    epoch=epoch,
                    train_loss=history.train_loss[-1],
                    validation_loss=val_loss,
                    grad_norm=history.grad_norm[-1],
                )
            if verbose:
                print(
                    f"epoch {epoch + 1}/{self.spec.epochs}: "
                    f"train {history.train_loss[-1]:.5f} val {val_loss:.5f}"
                )
            if patience is not None and np.isfinite(val_loss):
                if val_loss < best_val - 1e-12:
                    best_val = val_loss
                    best_state = self.predictor.state_dict()
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= patience:
                        if verbose:
                            print(f"early stop after epoch {epoch + 1} (patience {patience})")
                        if rec is not None:
                            rec.event("early_stop", epoch=epoch, patience=patience)
                        break
        if best_state is not None:
            self.predictor.load_state_dict(best_state)
        self.predictor.eval()
        return history

    def validation_loss(self, dataset: TrafficDataset) -> float:
        """Mean squared error on the validation subset."""
        indices = dataset.subset("validation")
        if len(indices) == 0:
            return float("nan")
        batch = dataset.batch(indices)
        prediction = self.predictor.predict(batch.images, batch.day_types, batch.flat)
        return float(np.mean((prediction - batch.targets) ** 2))
