"""Hyper-parameter tuning on the validation split (Section V-A).

The paper tunes each predictor "by a grid search, evaluating the
accuracy on the validation set" — 20 % of the training samples.  This
module reproduces that workflow: a declarative grid over training
hyper-parameters and/or architecture widths, scored by validation MAPE.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..data.dataset import TrafficDataset
from ..metrics.errors import mape
from .config import ModelSpec, ScalePreset, TrainSpec, table1_spec
from .model import APOTS

__all__ = ["GridSearchResult", "grid_search", "expand_grid"]


def expand_grid(grid: dict[str, list]) -> Iterator[dict[str, Any]]:
    """Yield every combination of a {name: [values]} grid (sorted keys)."""
    if not grid:
        yield {}
        return
    keys = sorted(grid)
    for values in itertools.product(*(grid[k] for k in keys)):
        yield dict(zip(keys, values))


@dataclass
class GridSearchResult:
    """All evaluated configurations, best first."""

    entries: list[dict] = field(default_factory=list)

    def sort(self) -> None:
        self.entries.sort(key=lambda e: e["validation_mape"])

    @property
    def best(self) -> dict:
        if not self.entries:
            raise ValueError("grid search evaluated no configurations")
        return self.entries[0]

    def best_model(self) -> APOTS:
        return self.best["model"]

    def render(self) -> str:
        lines = ["grid search (validation MAPE, best first):"]
        for entry in self.entries:
            params = ", ".join(f"{k}={v}" for k, v in entry["params"].items())
            lines.append(f"  {entry['validation_mape']:7.2f}  {params}")
        return "\n".join(lines)


def _validation_mape(model: APOTS, dataset: TrafficDataset) -> float:
    """Validation-set MAPE in km/h units."""
    prediction = model.predict(dataset, subset="validation")
    truth, _ = dataset.evaluation_arrays("validation")
    return mape(prediction, truth)


def grid_search(
    kind: str,
    dataset: TrafficDataset,
    preset: ScalePreset,
    train_grid: dict[str, list] | None = None,
    width_factors: list[float] | None = None,
    adversarial: bool = False,
    seed: int = 0,
) -> GridSearchResult:
    """Grid-search training hyper-parameters and/or widths for one predictor.

    Parameters
    ----------
    kind:
        Predictor name (F / L / C / H).
    dataset:
        Dataset whose validation split scores each configuration.
    preset:
        Scale preset providing the base TrainSpec and width factor.
    train_grid:
        {TrainSpec field: [candidate values]} — e.g.
        ``{"learning_rate": [1e-3, 3e-3], "batch_size": [128, 256]}``.
    width_factors:
        Optional list of architecture width multipliers to sweep.
    adversarial:
        Whether each candidate trains with the APOTS game.
    """
    train_grid = train_grid if train_grid is not None else {}
    width_factors = width_factors if width_factors is not None else [preset.width_factor]
    base_spec = preset.train_spec(adversarial=adversarial, seed=seed)

    result = GridSearchResult()
    for width in width_factors:
        model_spec: ModelSpec = table1_spec(kind, width)
        for overrides in expand_grid(train_grid):
            train_spec: TrainSpec = dataclasses.replace(base_spec, **overrides)
            model = APOTS(
                predictor=kind,
                features=dataset.config,
                adversarial=adversarial,
                preset=preset,
                train_spec=train_spec,
                model_spec=model_spec,
                seed=seed,
            )
            model.fit(dataset)
            score = _validation_mape(model, dataset)
            params = {"width_factor": width, **overrides}
            result.entries.append(
                {
                    "params": params,
                    "validation_mape": float(score) if np.isfinite(score) else float("inf"),
                    "model": model,
                }
            )
    result.sort()
    return result
