"""Hyper-parameter tuning on the validation split (Section V-A).

The paper tunes each predictor "by a grid search, evaluating the
accuracy on the validation set" — 20 % of the training samples.  This
module reproduces that workflow: a declarative grid over training
hyper-parameters and/or architecture widths, scored by validation MAPE.

Candidates are independent trainings, so the grid parallelises across
processes (``workers``) via :func:`repro.parallel.parallel_map`.  Every
candidate carries its own fixed seed, so the parallel results equal the
serial ones exactly, and ``workers=1`` never spawns a process at all —
it runs the very same loop this module always ran.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..data.dataset import TrafficDataset
from ..metrics.errors import mape
from ..parallel import parallel_map
from .config import ModelSpec, ScalePreset, TrainSpec, table1_spec
from .model import APOTS

__all__ = ["GridSearchResult", "grid_search", "expand_grid"]


def expand_grid(grid: dict[str, list]) -> Iterator[dict[str, Any]]:
    """Yield every combination of a {name: [values]} grid (sorted keys)."""
    if not grid:
        yield {}
        return
    keys = sorted(grid)
    for values in itertools.product(*(grid[k] for k in keys)):
        yield dict(zip(keys, values))


@dataclass
class GridSearchResult:
    """All evaluated configurations, best first."""

    entries: list[dict] = field(default_factory=list)

    def sort(self) -> None:
        self.entries.sort(key=lambda e: e["validation_mape"])

    @property
    def best(self) -> dict:
        if not self.entries:
            raise ValueError("grid search evaluated no configurations")
        return self.entries[0]

    def best_model(self) -> APOTS:
        return self.best["model"]

    def render(self) -> str:
        lines = ["grid search (validation MAPE, best first):"]
        for entry in self.entries:
            params = ", ".join(f"{k}={v}" for k, v in entry["params"].items())
            lines.append(f"  {entry['validation_mape']:7.2f}  {params}")
        return "\n".join(lines)


def _validation_mape(model: APOTS, dataset: TrafficDataset) -> float:
    """Validation-set MAPE in km/h units."""
    prediction = model.predict(dataset, subset="validation")
    truth, _ = dataset.evaluation_arrays("validation")
    return mape(prediction, truth)


#: Worker-side shared state, installed once per worker by the pool
#: initializer so candidate tasks ship only their (width, overrides).
_GRID_CONTEXT: dict | None = None


def _init_grid_worker(
    kind: str,
    dataset: TrafficDataset,
    preset: ScalePreset,
    adversarial: bool,
    seed: int,
    base_spec: TrainSpec,
) -> None:
    global _GRID_CONTEXT
    _GRID_CONTEXT = {
        "kind": kind,
        "dataset": dataset,
        "preset": preset,
        "adversarial": adversarial,
        "seed": seed,
        "base_spec": base_spec,
    }


def _evaluate_candidate(candidate: tuple[float, dict]) -> dict:
    """Train and score one (width_factor, overrides) grid point."""
    width, overrides = candidate
    ctx = _GRID_CONTEXT
    dataset: TrafficDataset = ctx["dataset"]
    model_spec: ModelSpec = table1_spec(ctx["kind"], width)
    train_spec: TrainSpec = dataclasses.replace(ctx["base_spec"], **overrides)
    model = APOTS(
        predictor=ctx["kind"],
        features=dataset.config,
        adversarial=ctx["adversarial"],
        preset=ctx["preset"],
        train_spec=train_spec,
        model_spec=model_spec,
        seed=ctx["seed"],
    )
    model.fit(dataset)
    score = _validation_mape(model, dataset)
    return {
        "params": {"width_factor": width, **overrides},
        "validation_mape": float(score) if np.isfinite(score) else float("inf"),
        "model": model,
    }


def grid_search(
    kind: str,
    dataset: TrafficDataset,
    preset: ScalePreset,
    train_grid: dict[str, list] | None = None,
    width_factors: list[float] | None = None,
    adversarial: bool = False,
    seed: int = 0,
    workers: int = 1,
) -> GridSearchResult:
    """Grid-search training hyper-parameters and/or widths for one predictor.

    Parameters
    ----------
    kind:
        Predictor name (F / L / C / H).
    dataset:
        Dataset whose validation split scores each configuration.
    preset:
        Scale preset providing the base TrainSpec and width factor.
    train_grid:
        {TrainSpec field: [candidate values]} — e.g.
        ``{"learning_rate": [1e-3, 3e-3], "batch_size": [128, 256]}``.
    width_factors:
        Optional list of architecture width multipliers to sweep.
    adversarial:
        Whether each candidate trains with the APOTS game.
    workers:
        Processes to train candidates in.  Each candidate's training is
        seeded identically either way, so any ``workers`` value yields
        the same entries; ``1`` (the default) stays in-process.
    """
    train_grid = train_grid if train_grid is not None else {}
    width_factors = width_factors if width_factors is not None else [preset.width_factor]
    base_spec = preset.train_spec(adversarial=adversarial, seed=seed)

    candidates = [
        (width, overrides)
        for width in width_factors
        for overrides in expand_grid(train_grid)
    ]
    initargs = (kind, dataset, preset, adversarial, seed, base_spec)
    if workers <= 1 or len(candidates) <= 1:
        _init_grid_worker(*initargs)
        try:
            entries = [_evaluate_candidate(candidate) for candidate in candidates]
        finally:
            globals()["_GRID_CONTEXT"] = None
    else:
        entries = parallel_map(
            _evaluate_candidate,
            candidates,
            workers=workers,
            root_seed=seed,
            initializer=_init_grid_worker,
            initargs=initargs,
        )
    result = GridSearchResult(entries=entries)
    result.sort()
    return result
