"""Model persistence: save and load fitted APOTS models.

A checkpoint is a directory holding the predictor (and, when present,
the discriminator) state dicts plus a JSON manifest describing the
architecture, so ``load_model`` can rebuild the exact module graph
before loading weights.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

from ..data.features import FactorMask, FeatureConfig, FeatureScalers
from ..data.graph_features import GraphFeatureConfig, GraphWindowLayout
from ..data.profile import ReferenceProfile
from ..nn import load_state, save_state
from .config import ModelSpec, PRESETS, ScalePreset
from .model import APOTS

__all__ = [
    "save_model",
    "load_model",
    "model_fingerprint",
    "FORMAT_VERSION",
    "SUPPORTED_FORMAT_VERSIONS",
]

_MANIFEST = "manifest.json"
_PREDICTOR = "predictor.npz"
_DISCRIMINATOR = "discriminator.npz"

#: Version written by :func:`save_model`.  v2 added the fitted feature
#: scalers; v3 added the training-time input reference profile used by
#: drift monitors.  v1 checkpoints (weights only) are still readable but
#: cannot reproduce inference on raw km/h inputs; v1/v2 checkpoints load
#: with ``reference_profile=None`` (input-drift monitoring disabled).
FORMAT_VERSION = 3
SUPPORTED_FORMAT_VERSIONS = (1, 2, 3)


def model_fingerprint(model: APOTS) -> str:
    """Stable content hash of a model's predictor weights.

    Two models fingerprint equal iff their predictor kind and every
    weight array are bitwise identical — used to namespace forecast
    cache entries and to label swap/rollback obs events.
    """
    digest = hashlib.blake2b(digest_size=12)
    digest.update(model.kind.encode())
    for name, array in sorted(model.predictor.state_dict().items()):
        digest.update(name.encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def _features_to_dict(features) -> dict:
    payload = {
        "alpha": features.alpha,
        "beta": features.beta,
        "m": features.m,
        "mask": dataclasses.asdict(features.mask),
    }
    if isinstance(features, GraphFeatureConfig):
        # The "graph" key marks a graph-neighbourhood geometry; its
        # presence (not a format bump) selects the config class on load,
        # so corridor checkpoints stay readable by older builds.
        layout = features.layout
        payload["graph"] = {
            "num_segments": layout.num_segments,
            "k": layout.k,
            "target_row": layout.target_row,
            "num_rows": layout.num_rows,
            "rows": [list(row) for row in layout.rows],
        }
    return payload


def _features_from_dict(payload: dict):
    mask = FactorMask(**payload["mask"])
    graph = payload.get("graph")
    if graph is not None:
        layout = GraphWindowLayout(
            num_segments=graph["num_segments"],
            k=graph["k"],
            target_row=graph["target_row"],
            num_rows=graph["num_rows"],
            rows=tuple(tuple(row) for row in graph["rows"]),
        )
        return GraphFeatureConfig(
            layout=layout, alpha=payload["alpha"], beta=payload["beta"], mask=mask
        )
    return FeatureConfig(
        alpha=payload["alpha"],
        beta=payload["beta"],
        m=payload["m"],
        mask=mask,
    )


def _spec_to_dict(spec: ModelSpec) -> dict:
    payload = dataclasses.asdict(spec)
    payload["cnn_kernels"] = [list(k) for k in spec.cnn_kernels]
    return payload


def _spec_from_dict(payload: dict) -> ModelSpec:
    payload = dict(payload)
    payload["cnn_kernels"] = [tuple(k) for k in payload["cnn_kernels"]]
    return ModelSpec(**payload)


def save_model(model: APOTS, directory: str | Path) -> Path:
    """Write a fitted APOTS model to ``directory`` (created if missing).

    Returns the directory path.  The training history is not persisted —
    checkpoints capture what is needed for inference and fine-tuning.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "format_version": FORMAT_VERSION,
        "scalers": model.scalers.state_dict() if model.scalers is not None else None,
        "kind": model.kind,
        "adversarial": model.adversarial,
        "conditional": model.discriminator.conditional if model.discriminator else None,
        "seed": model.seed,
        "preset": model.preset.name if model.preset.name in PRESETS else None,
        "preset_values": dataclasses.asdict(model.preset),
        "features": _features_to_dict(model.features),
        "spec": _spec_to_dict(model.spec),
        "reference_profile": (
            model.reference_profile.state_dict()
            if getattr(model, "reference_profile", None) is not None
            else None
        ),
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    save_state(model.predictor, directory / _PREDICTOR)
    if model.discriminator is not None:
        save_state(model.discriminator, directory / _DISCRIMINATOR)
    return directory


def load_model(directory: str | Path) -> APOTS:
    """Rebuild an APOTS model from a checkpoint written by save_model."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise FileNotFoundError(f"no APOTS checkpoint at {directory}")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise ValueError(
            f"unsupported checkpoint format version {version!r} at {directory}; "
            f"this build reads versions {SUPPORTED_FORMAT_VERSIONS} — re-save the "
            f"checkpoint with a matching repro release"
        )

    preset = ScalePreset(**manifest["preset_values"])
    model = APOTS(
        predictor=manifest["kind"],
        features=_features_from_dict(manifest["features"]),
        adversarial=manifest["adversarial"],
        conditional=bool(manifest["conditional"]),
        preset=preset,
        model_spec=_spec_from_dict(manifest["spec"]) if manifest.get("spec") else None,
        seed=manifest["seed"],
    )
    scalers_state = manifest.get("scalers")
    if scalers_state is not None:
        model.scalers = FeatureScalers.from_state(scalers_state)
    profile_state = manifest.get("reference_profile")
    if profile_state is not None:
        model.reference_profile = ReferenceProfile.from_state(profile_state)
    load_state(model.predictor, directory / _PREDICTOR)
    if model.discriminator is not None:
        load_state(model.discriminator, directory / _DISCRIMINATOR)
    return model
