"""``repro.data`` — window extraction, features, scaling and splits."""

from .dataset import Batch, RolloutBatch, TrafficDataset, iterate_batches
from .features import (
    FactorMask,
    FeatureConfig,
    FeatureScalers,
    WindowFeatures,
    build_features,
    fit_scalers,
)
from .graph_features import (
    GraphFeatureConfig,
    GraphTrafficDataset,
    GraphWindowFeatures,
    GraphWindowLayout,
    build_graph_features,
)
from .profile import PSI_EPSILON, SPEED_BIN_EDGES, ReferenceProfile
from .scaling import LogStandardScaler, MinMaxScaler, StandardScaler, scaler_from_state
from .split import SplitIndices, consecutive_runs, split_windows

__all__ = [
    "Batch",
    "RolloutBatch",
    "TrafficDataset",
    "iterate_batches",
    "FactorMask",
    "FeatureConfig",
    "FeatureScalers",
    "WindowFeatures",
    "build_features",
    "fit_scalers",
    "GraphWindowLayout",
    "GraphFeatureConfig",
    "GraphWindowFeatures",
    "build_graph_features",
    "GraphTrafficDataset",
    "LogStandardScaler",
    "MinMaxScaler",
    "StandardScaler",
    "scaler_from_state",
    "PSI_EPSILON",
    "SPEED_BIN_EDGES",
    "ReferenceProfile",
    "SplitIndices",
    "consecutive_runs",
    "split_windows",
]
