"""Dataset containers and mini-batch iteration.

``TrafficDataset`` glues a simulated series, a feature configuration and
a split into the exact tensors each trainer needs:

* plain supervised batches (window features + scalar target);
* adversarial *rollout groups*: for an anchor window ``i``, the
  ``alpha`` consecutive windows ``i - alpha + 1 .. i`` together with the
  real target sequence the discriminator sees (Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..traffic.types import TrafficSeries
from .features import FeatureConfig, FeatureScalers, WindowFeatures, build_features, fit_scalers
from .split import SplitIndices, consecutive_runs, split_windows

__all__ = ["Batch", "RolloutBatch", "TrafficDataset", "iterate_batches"]


@dataclass
class Batch:
    """One supervised mini-batch (all arrays row-aligned)."""

    images: np.ndarray  # (B, rows, alpha)
    day_types: np.ndarray  # (B, 4)
    flat: np.ndarray  # (B, flat_dim)
    targets: np.ndarray  # (B,) scaled
    indices: np.ndarray  # (B,) window indices

    def __len__(self) -> int:
        return len(self.targets)


@dataclass
class RolloutBatch:
    """One adversarial mini-batch of anchor groups.

    For B anchors and alpha windows per anchor the group arrays have a
    leading (B * alpha) axis, ordered anchor-major, so that reshaping a
    per-window prediction vector to (B, alpha) yields each anchor's
    predicted sequence in time order.
    """

    group_images: np.ndarray  # (B * alpha, rows, alpha)
    group_day_types: np.ndarray  # (B * alpha, 4)
    group_flat: np.ndarray  # (B * alpha, flat_dim)
    group_targets: np.ndarray  # (B * alpha,) scaled real speeds
    condition: np.ndarray  # (B, condition_dim) anchor-window E
    anchor_targets: np.ndarray  # (B,) scaled target of the anchor window
    anchors: np.ndarray  # (B,) anchor window indices

    @property
    def num_anchors(self) -> int:
        return len(self.anchors)

    def real_sequences(self, alpha: int) -> np.ndarray:
        """(B, alpha) real speed sequences aligned with predictions."""
        return self.group_targets.reshape(self.num_anchors, alpha)


class TrafficDataset:
    """Features + split for one simulated corridor series.

    Parameters
    ----------
    series:
        Simulator output.
    config:
        Window geometry and factor mask.
    split:
        Optional precomputed split; built with defaults otherwise.
    seed:
        Split RNG seed (only used when ``split`` is None).
    """

    def __init__(
        self,
        series: TrafficSeries,
        config: FeatureConfig | None = None,
        split: SplitIndices | None = None,
        seed: int = 0,
        scalers: FeatureScalers | None = None,
    ):
        self.series = series
        self.config = config if config is not None else FeatureConfig()
        if scalers is None:
            scalers = fit_scalers(series)
        self.features: WindowFeatures = build_features(series, self.config, scalers)
        if split is None:
            split = split_windows(
                self.features.num_windows,
                window_span=self.config.alpha + self.config.beta,
                rng=np.random.default_rng(seed),
            )
        self.split = split
        self._flat_cache = self.features.flat()
        self._condition_cache = self.features.condition()

    # ------------------------------------------------------------------
    # Plain supervised access
    # ------------------------------------------------------------------
    def subset(self, name: str) -> np.ndarray:
        """Window indices of a named partition."""
        try:
            return getattr(self.split, name)
        except AttributeError:
            raise KeyError(f"unknown subset {name!r}; use train/validation/test") from None

    def batch(self, indices: np.ndarray) -> Batch:
        """Materialise a batch for the given window indices."""
        return Batch(
            images=self.features.images[indices],
            day_types=self.features.day_types[indices],
            flat=self._flat_cache[indices],
            targets=self.features.targets[indices],
            indices=np.asarray(indices),
        )

    # ------------------------------------------------------------------
    # Adversarial rollout access
    # ------------------------------------------------------------------
    def rollout_anchors(self, subset: str = "train") -> np.ndarray:
        """Anchors whose alpha-window history lies entirely in ``subset``.

        Anchor ``i`` requires windows ``i - alpha + 1 .. i``; we find them
        as positions >= alpha - 1 within consecutive index runs.
        """
        alpha = self.config.alpha
        runs = consecutive_runs(self.subset(subset), min_length=alpha)
        anchors = [run[alpha - 1 :] for run in runs]
        if not anchors:
            return np.array([], dtype=np.int64)
        return np.concatenate(anchors)

    def rollout_batch(self, anchors: np.ndarray) -> RolloutBatch:
        """Materialise the adversarial groups for the given anchors."""
        alpha = self.config.alpha
        anchors = np.asarray(anchors, dtype=np.int64)
        offsets = np.arange(-(alpha - 1), 1)
        group = (anchors[:, None] + offsets[None, :]).reshape(-1)
        if group.min() < 0:
            raise ValueError("anchor group extends before the first window")
        return RolloutBatch(
            group_images=self.features.images[group],
            group_day_types=self.features.day_types[group],
            group_flat=self._flat_cache[group],
            group_targets=self.features.targets[group],
            condition=self._condition_cache[anchors],
            anchor_targets=self.features.targets[anchors],
            anchors=anchors,
        )

    # ------------------------------------------------------------------
    # Metrics support
    # ------------------------------------------------------------------
    def kmh(self, scaled: np.ndarray) -> np.ndarray:
        """Convert scaled speeds back to km/h."""
        return self.features.scalers.speed.inverse_transform(scaled)

    def evaluation_arrays(self, subset: str = "test") -> tuple[np.ndarray, np.ndarray]:
        """(true km/h targets, last-input km/h) for regime-aware metrics."""
        indices = self.subset(subset)
        return self.features.targets_kmh[indices], self.features.last_input_kmh[indices]


def iterate_batches(
    indices: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
    drop_last: bool = False,
) -> Iterator[np.ndarray]:
    """Yield index slices for mini-batch training."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.asarray(indices)
    if shuffle:
        rng = rng if rng is not None else np.random.default_rng()
        indices = rng.permutation(indices)
    for start in range(0, len(indices), batch_size):
        chunk = indices[start : start + batch_size]
        if drop_last and len(chunk) < batch_size:
            return
        yield chunk
