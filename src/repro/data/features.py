"""Feature extraction: from a TrafficSeries to model-ready windows.

Implements the paper's input constructions:

* the **adjacent-speed matrix** ``S_adj`` (Eq 5/6): rows are the target
  road plus ``m`` upstream and ``m`` downstream segments, columns the
  ``alpha`` past timesteps;
* the **non-speed data** ``S_bar``: per-step event flag, temperature,
  precipitation and hour channels, plus one 4-bit day-type vector per
  window (the paper uses a single value per window for day type);
* the **additional data** ``E = S_adj (+) S_bar`` (Eq 3) that conditions
  the discriminator.

Section V-B (Q2) fixes the input size to the "both" configuration and
zero-fills whatever is ablated; :class:`FactorMask` reproduces exactly
that rule, including the per-factor switches of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..traffic.types import TrafficSeries
from .scaling import LogStandardScaler, MinMaxScaler, StandardScaler, scaler_from_state

__all__ = [
    "FactorMask",
    "FeatureConfig",
    "FeatureScalers",
    "WindowFeatures",
    "build_features",
    "fit_scalers",
]


@dataclass(frozen=True)
class FactorMask:
    """Which feature blocks are active; inactive blocks are zero-filled.

    ``speed`` (the target road's own history) is always on — it is the
    primary input of every predictor, never ablated.
    """

    adjacent: bool = True
    event: bool = True
    weather: bool = True
    time: bool = True

    # Named configurations used by the paper -----------------------------
    @staticmethod
    def speed_only() -> "FactorMask":
        return FactorMask(adjacent=False, event=False, weather=False, time=False)

    @staticmethod
    def adjacent_only() -> "FactorMask":
        return FactorMask(adjacent=True, event=False, weather=False, time=False)

    @staticmethod
    def non_speed_only() -> "FactorMask":
        return FactorMask(adjacent=False, event=True, weather=True, time=True)

    @staticmethod
    def both() -> "FactorMask":
        return FactorMask()

    @staticmethod
    def table2(code: str) -> "FactorMask":
        """Decode a Table II column name (e.g. ``"SWT"``) to a mask.

        ``S`` always denotes the speed input; the remaining letters turn
        on Event / Weather / Time.  Adjacent-speed data stays on for all
        Table II configurations (the table's best cell, SEWT, equals the
        paper's full APOTS_H which uses both kinds of additional data).
        """
        code = code.upper()
        if not code.startswith("S"):
            raise ValueError(f"Table II code must start with 'S', got {code!r}")
        extras = set(code[1:])
        unknown = extras - set("EWT")
        if unknown:
            raise ValueError(f"unknown factor letters {sorted(unknown)} in {code!r}")
        return FactorMask(adjacent=True, event="E" in extras, weather="W" in extras, time="T" in extras)

    @property
    def uses_additional(self) -> bool:
        return self.adjacent or self.event or self.weather or self.time


@dataclass(frozen=True)
class FeatureConfig:
    """Window geometry and factor switches.

    alpha:
        History length (12 five-minute speeds = 1 hour in the paper).
    beta:
        Prediction offset: the target is ``beta`` steps after the last
        input step (paper's beta = 1 means the next interval).
    m:
        Adjacent roads on each side (Fig 3); the speed matrix has
        ``2m + 1`` rows.
    mask:
        Active feature blocks (inactive blocks become zeros).
    """

    alpha: int = 12
    beta: int = 1
    m: int = 2
    mask: FactorMask = field(default_factory=FactorMask)

    def __post_init__(self):
        if self.alpha < 2:
            raise ValueError("alpha must be at least 2")
        if self.beta < 1:
            raise ValueError("beta must be at least 1")
        if self.m < 0:
            raise ValueError("m must be non-negative")

    @property
    def num_roads(self) -> int:
        return 2 * self.m + 1

    @property
    def image_rows(self) -> int:
        """Rows of the (roads + 4 non-speed channels) input image."""
        return self.num_roads + 4

    @property
    def flat_dim(self) -> int:
        """Dimension of the flattened feature vector (FC predictor input)."""
        return self.image_rows * self.alpha + 4

    @property
    def condition_dim(self) -> int:
        """Dimension of the additional-data condition E for D.

        E excludes the target road's own history (that is the primary
        input, not 'additional' data): (2m) adjacent rows + 4 non-speed
        channels, each alpha long, plus the 4 day-type bits.
        """
        return (self.num_roads - 1 + 4) * self.alpha + 4

    def with_mask(self, mask: FactorMask) -> "FeatureConfig":
        return replace(self, mask=mask)


@dataclass
class FeatureScalers:
    """Train-fitted scalers shared by transform-time feature building."""

    speed: MinMaxScaler
    temperature: StandardScaler
    precipitation: LogStandardScaler

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of all fitted scaler parameters."""
        return {
            "speed": self.speed.state_dict(),
            "temperature": self.temperature.state_dict(),
            "precipitation": self.precipitation.state_dict(),
        }

    @staticmethod
    def from_state(state: dict) -> "FeatureScalers":
        return FeatureScalers(
            speed=scaler_from_state(state["speed"]),
            temperature=scaler_from_state(state["temperature"]),
            precipitation=scaler_from_state(state["precipitation"]),
        )


@dataclass
class WindowFeatures:
    """All windows of a series, as aligned arrays.

    Attributes
    ----------
    images:
        (N, image_rows, alpha) scaled feature image: first ``2m+1`` rows
        are the adjacent-speed matrix (Eq 6, target road in the middle),
        then event, temperature, precipitation and hour rows.
    day_types:
        (N, 4) day-type bits of each window's last input step.
    targets:
        (N,) scaled target speed at ``beta`` steps past the window end.
    targets_kmh:
        (N,) unscaled target speeds (for metric computation).
    last_input_kmh:
        (N,) unscaled target-road speed at the last input step (used to
        classify abrupt-change regimes, Eq 7/8).
    target_steps:
        (N,) absolute timestep index of each target.
    config, scalers:
        The geometry and the train-fitted scalers used.
    """

    images: np.ndarray
    day_types: np.ndarray
    targets: np.ndarray
    targets_kmh: np.ndarray
    last_input_kmh: np.ndarray
    target_steps: np.ndarray
    config: FeatureConfig
    scalers: FeatureScalers

    @property
    def num_windows(self) -> int:
        return self.images.shape[0]

    def flat(self, indices: np.ndarray | slice = slice(None)) -> np.ndarray:
        """Flattened (N, flat_dim) view: image rows then day-type bits."""
        images = self.images[indices]
        day_types = self.day_types[indices]
        return np.concatenate([images.reshape(images.shape[0], -1), day_types], axis=1)

    def condition(self, indices: np.ndarray | slice = slice(None)) -> np.ndarray:
        """The additional-data condition E (Eq 3) per window.

        Excludes the target road's own row of the speed matrix; respects
        the factor mask through the zero-filling already applied.
        """
        images = self.images[indices]
        m = self.config.m
        rows = np.delete(images, m, axis=1)  # drop the target road row
        return np.concatenate([rows.reshape(rows.shape[0], -1), self.day_types[indices]], axis=1)

    def image_sequences(self, indices: np.ndarray | slice = slice(None)) -> np.ndarray:
        """(N, alpha, image_rows) time-major sequences for the LSTM."""
        return np.transpose(self.images[indices], (0, 2, 1))


def _sliding_windows(values: np.ndarray, alpha: int, num_windows: int) -> np.ndarray:
    """Stride-trick view of shape (num_windows, ..., alpha) over axis -1."""
    view = np.lib.stride_tricks.sliding_window_view(values, alpha, axis=-1)
    # view shape: (..., T - alpha + 1, alpha)
    return view[..., :num_windows, :]


def fit_scalers(series: TrafficSeries, train_steps: np.ndarray | None = None) -> FeatureScalers:
    """Fit the feature scalers; ``train_steps`` restricts to train times."""
    if train_steps is None:
        speed_data = series.speeds
        temp = series.temperature
        precip = series.precipitation
    else:
        speed_data = series.speeds[:, train_steps]
        temp = series.temperature[train_steps]
        precip = series.precipitation[train_steps]
    return FeatureScalers(
        speed=MinMaxScaler().fit(speed_data),
        temperature=StandardScaler().fit(temp),
        precipitation=LogStandardScaler().fit(precip),
    )


def build_features(
    series: TrafficSeries,
    config: FeatureConfig,
    scalers: FeatureScalers | None = None,
) -> WindowFeatures:
    """Extract every valid window of ``series`` under ``config``.

    Window ``i`` covers input steps ``[i, i + alpha - 1]`` and predicts
    the target-road speed at step ``i + alpha - 1 + beta``.
    """
    alpha, beta, m = config.alpha, config.beta, config.m
    total = series.num_steps
    num_windows = total - alpha - beta + 1
    if num_windows <= 0:
        raise ValueError(
            f"series too short: {total} steps cannot fit alpha={alpha}, beta={beta} windows"
        )
    if scalers is None:
        scalers = fit_scalers(series)

    adjacent_rows = series.corridor.adjacent_indices(m)
    target_row_local = m  # position of the target road inside the matrix

    # Adjacent-speed matrix windows: (R, N, alpha) -> (N, R, alpha).
    adj = scalers.speed.transform(series.speeds[adjacent_rows])
    adj_windows = np.transpose(_sliding_windows(adj, alpha, num_windows), (1, 0, 2)).copy()

    # Non-speed channels, each (N, alpha).
    target_index = series.corridor.target_index
    event = _sliding_windows(series.events[target_index], alpha, num_windows).copy()
    temp = _sliding_windows(scalers.temperature.transform(series.temperature), alpha, num_windows).copy()
    precip = _sliding_windows(
        scalers.precipitation.transform(series.precipitation), alpha, num_windows
    ).copy()
    hour = _sliding_windows(series.hours / 23.0, alpha, num_windows).copy()

    # Apply the Q2 zero-filling rule per factor.
    mask = config.mask
    if not mask.adjacent:
        keep = adj_windows[:, target_row_local, :].copy()
        adj_windows[:] = 0.0
        adj_windows[:, target_row_local, :] = keep
    if not mask.event:
        event[:] = 0.0
    if not mask.weather:
        temp[:] = 0.0
        precip[:] = 0.0

    last_step = np.arange(num_windows) + alpha - 1
    day_types = series.day_types[last_step].astype(np.float64)
    if not mask.time:
        hour[:] = 0.0
        day_types = np.zeros_like(day_types)

    images = np.concatenate(
        [adj_windows, event[:, None, :], temp[:, None, :], precip[:, None, :], hour[:, None, :]],
        axis=1,
    )

    target_steps = last_step + beta
    target_kmh = series.speeds[target_index, target_steps]
    last_input_kmh = series.speeds[target_index, last_step]
    targets = scalers.speed.transform(target_kmh)

    return WindowFeatures(
        images=images,
        day_types=day_types,
        targets=targets,
        targets_kmh=target_kmh,
        last_input_kmh=last_input_kmh,
        target_steps=target_steps,
        config=config,
        scalers=scalers,
    )
