"""Graph-neighbourhood feature windows: the city-scale generalisation
of the corridor pipeline.

The corridor's adjacent-speed matrix (Eq 5/6) reads rows ``target - m ..
target + m`` — index arithmetic that doubles as adjacency because a
corridor is a path.  On a :class:`repro.network.graph.RoadGraph` the
analogue of the ``±m`` window is the ``k_hop_neighbourhood``: the sorted
set of segments within ``k`` undirected hops.  This module assembles
model-ready windows from those neighbourhoods under a **canonical,
padded, masked layout** chosen so that:

* every target's image has the same shape (predictors keep their fixed
  ``flat_dim``), with absent rows zero-filled after scaling and marked
  in the layout's row mask;
* the target road always sits at the same row (``target_row``), so the
  persistence baseline (``images[:, m, -1]``), the discriminator
  condition (``np.delete(images, m, axis=1)``) and the serving gate all
  work unchanged through the duck-typed ``m`` property;
* on a :func:`repro.network.graph.from_corridor` path graph with the
  target ``k`` hops from both ends, the layout row of the target is
  exactly ``corridor.adjacent_indices(k)`` — the windows reduce
  **bitwise** to the corridor pipeline (pinned by tests).

Layout rule (per target ``s`` with sorted k-hop set ``N(s)``): split
``N(s)`` into ``lower = [t < s]`` and ``upper = [t > s]``.  With
``p = max_s |lower(s)|`` and ``q = max_s |upper(s)|`` over all segments,
the image has ``p + 1 + q`` speed rows; ``lower`` is right-aligned
ending at row ``p - 1``, the target occupies row ``p`` and ``upper`` is
left-aligned from row ``p + 1``.  Unused rows carry id ``-1`` (padding).
Because BFS ids are contiguous within a neighbourhood block, a corridor
interior neighbourhood has exactly ``k`` lower and ``k`` upper ids and
the rule reproduces ``[s-k .. s+k]`` in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..traffic.types import TrafficSeries
from .features import (
    FactorMask,
    FeatureScalers,
    WindowFeatures,
    _sliding_windows,
    fit_scalers,
)
from .split import SplitIndices, consecutive_runs, split_windows

__all__ = [
    "GraphWindowLayout",
    "GraphFeatureConfig",
    "GraphWindowFeatures",
    "build_graph_features",
    "GraphTrafficDataset",
]


@dataclass(frozen=True)
class GraphWindowLayout:
    """Canonical padded neighbour layout of every segment's input image.

    ``rows[s]`` lists, for target segment ``s``, the segment id feeding
    each speed row of its image, with ``-1`` marking padding rows.  The
    target id ``s`` always sits at index ``target_row``.
    """

    num_segments: int
    k: int
    target_row: int
    num_rows: int
    rows: tuple[tuple[int, ...], ...]
    _rows_array: np.ndarray = field(init=False, repr=False, compare=False)
    _row_mask: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if self.num_segments < 1:
            raise ValueError("layout needs at least one segment")
        if self.k < 0:
            raise ValueError("k must be non-negative")
        if not 0 <= self.target_row < self.num_rows:
            raise ValueError("target_row outside 0..num_rows-1")
        if len(self.rows) != self.num_segments:
            raise ValueError("rows must have one entry per segment")
        for s, row in enumerate(self.rows):
            if len(row) != self.num_rows:
                raise ValueError(f"rows[{s}] has {len(row)} entries, expected {self.num_rows}")
            if row[self.target_row] != s:
                raise ValueError(f"rows[{s}] does not place the target at target_row")
            for t in row:
                if t != -1 and not 0 <= t < self.num_segments:
                    raise ValueError(f"rows[{s}] references unknown segment {t}")
        rows_array = np.array(self.rows, dtype=np.int64)
        object.__setattr__(self, "_rows_array", rows_array)
        object.__setattr__(self, "_row_mask", rows_array >= 0)

    @property
    def rows_array(self) -> np.ndarray:
        """(num_segments, num_rows) int64 row->segment map, -1 = padding."""
        return self._rows_array

    @property
    def row_mask(self) -> np.ndarray:
        """(num_segments, num_rows) bool mask, True where a real segment."""
        return self._row_mask

    def valid_rows(self, segment_id: int) -> tuple[int, ...]:
        """The real (non-padding) segment ids in ``segment_id``'s image."""
        return tuple(t for t in self.rows[segment_id] if t >= 0)

    @staticmethod
    def from_neighbourhoods(
        neighbourhoods: Mapping[int, Sequence[int]] | Sequence[Sequence[int]],
        num_segments: int,
        k: int,
    ) -> "GraphWindowLayout":
        """Build the canonical layout from per-segment k-hop sets.

        ``neighbourhoods[s]`` must be the sorted id list within ``k``
        hops of ``s`` **including ``s`` itself** (the contract of
        ``RoadGraph.k_hop_neighbourhood``).
        """
        lowers: list[list[int]] = []
        uppers: list[list[int]] = []
        for s in range(num_segments):
            hood = list(neighbourhoods[s])
            if s not in hood:
                raise ValueError(f"neighbourhood of {s} must include itself")
            if hood != sorted(set(hood)):
                raise ValueError(f"neighbourhood of {s} must be sorted and unique")
            lowers.append([t for t in hood if t < s])
            uppers.append([t for t in hood if t > s])
        p = max(len(lo) for lo in lowers)
        q = max(len(up) for up in uppers)
        num_rows = p + 1 + q
        rows = []
        for s in range(num_segments):
            row = [-1] * num_rows
            lo, up = lowers[s], uppers[s]
            row[p - len(lo) : p] = lo
            row[p] = s
            row[p + 1 : p + 1 + len(up)] = up
            rows.append(tuple(row))
        return GraphWindowLayout(
            num_segments=num_segments,
            k=k,
            target_row=p,
            num_rows=num_rows,
            rows=tuple(rows),
        )


@dataclass(frozen=True)
class GraphFeatureConfig:
    """Graph analogue of :class:`FeatureConfig` (same duck-typed surface).

    The geometry properties (``m``, ``num_roads``, ``image_rows``,
    ``flat_dim``, ``condition_dim``) mirror ``FeatureConfig`` exactly,
    with the layout's ``target_row`` playing the role of ``m``: every
    consumer that indexes the target row via ``features.m`` — the
    persistence baselines, the discriminator condition, the serving
    gate's quarantine neighbourhood — works unchanged.
    """

    layout: GraphWindowLayout
    alpha: int = 12
    beta: int = 1
    mask: FactorMask = field(default_factory=FactorMask)

    def __post_init__(self):
        if self.alpha < 2:
            raise ValueError("alpha must be at least 2")
        if self.beta < 1:
            raise ValueError("beta must be at least 1")

    @property
    def m(self) -> int:
        """Row index of the target road (the corridor's ``m``)."""
        return self.layout.target_row

    @property
    def num_roads(self) -> int:
        return self.layout.num_rows

    @property
    def image_rows(self) -> int:
        return self.num_roads + 4

    @property
    def flat_dim(self) -> int:
        return self.image_rows * self.alpha + 4

    @property
    def condition_dim(self) -> int:
        return (self.num_roads - 1 + 4) * self.alpha + 4

    def with_mask(self, mask: FactorMask) -> "GraphFeatureConfig":
        return replace(self, mask=mask)


@dataclass
class GraphWindowFeatures(WindowFeatures):
    """Windows of several graph targets, stacked target-major.

    The arrays concatenate one :class:`WindowFeatures`-shaped block per
    target; ``segment_ids[i]`` names the target segment window ``i``
    predicts.  Blocks all have ``windows_per_target`` windows.
    """

    segment_ids: np.ndarray  # (N,) target segment id per window

    @property
    def windows_per_target(self) -> int:
        return self.num_windows // len(np.unique(self.segment_ids))


def build_graph_features(
    series: TrafficSeries,
    config: GraphFeatureConfig,
    targets: Iterable[int],
    scalers: FeatureScalers | None = None,
) -> GraphWindowFeatures:
    """Extract every valid window of each target's graph neighbourhood.

    Per target the construction is **bitwise-parallel** to
    :func:`build_features`: gather the layout rows (padding rows read
    row 0), scale, zero the padding rows *after* scaling, then apply the
    identical sliding-window / non-speed-channel / Q2-mask recipe.  On a
    ``from_corridor`` layout with an interior target there is no padding
    and the gathered rows equal ``corridor.adjacent_indices(m)``, so the
    output is bit-identical to the corridor pipeline.
    """
    layout = config.layout
    if layout.num_segments != series.num_segments:
        raise ValueError(
            f"layout covers {layout.num_segments} segments, series has {series.num_segments}"
        )
    target_list = [int(t) for t in targets]
    if not target_list:
        raise ValueError("at least one target segment is required")
    if len(set(target_list)) != len(target_list):
        raise ValueError("target segments must be unique")
    for t in target_list:
        if not 0 <= t < series.num_segments:
            raise ValueError(f"target {t} outside 0..{series.num_segments - 1}")

    alpha, beta = config.alpha, config.beta
    total = series.num_steps
    num_windows = total - alpha - beta + 1
    if num_windows <= 0:
        raise ValueError(
            f"series too short: {total} steps cannot fit alpha={alpha}, beta={beta} windows"
        )
    if scalers is None:
        scalers = fit_scalers(series)

    mask = config.mask
    target_row_local = layout.target_row

    # Shared non-speed channels (target-independent), each (N, alpha).
    temp = _sliding_windows(scalers.temperature.transform(series.temperature), alpha, num_windows).copy()
    precip = _sliding_windows(
        scalers.precipitation.transform(series.precipitation), alpha, num_windows
    ).copy()
    hour = _sliding_windows(series.hours / 23.0, alpha, num_windows).copy()
    if not mask.weather:
        temp[:] = 0.0
        precip[:] = 0.0

    last_step = np.arange(num_windows) + alpha - 1
    day_types_one = series.day_types[last_step].astype(np.float64)
    if not mask.time:
        hour[:] = 0.0
        day_types_one = np.zeros_like(day_types_one)
    target_steps_one = last_step + beta

    image_blocks = []
    target_blocks = []
    target_kmh_blocks = []
    last_kmh_blocks = []
    for t in target_list:
        rows = layout.rows_array[t]
        safe = np.maximum(rows, 0)  # padding rows read row 0, zeroed below
        adj = scalers.speed.transform(series.speeds[safe])
        adj[rows < 0] = 0.0  # zero padding after scaling: outside-k-hop speeds never leak
        adj_windows = np.transpose(_sliding_windows(adj, alpha, num_windows), (1, 0, 2)).copy()

        event = _sliding_windows(series.events[t], alpha, num_windows).copy()
        if not mask.adjacent:
            keep = adj_windows[:, target_row_local, :].copy()
            adj_windows[:] = 0.0
            adj_windows[:, target_row_local, :] = keep
        if not mask.event:
            event[:] = 0.0

        image_blocks.append(
            np.concatenate(
                [adj_windows, event[:, None, :], temp[:, None, :], precip[:, None, :], hour[:, None, :]],
                axis=1,
            )
        )
        target_kmh = series.speeds[t, target_steps_one]
        target_kmh_blocks.append(target_kmh)
        last_kmh_blocks.append(series.speeds[t, last_step])
        target_blocks.append(scalers.speed.transform(target_kmh))

    reps = len(target_list)
    return GraphWindowFeatures(
        images=np.concatenate(image_blocks, axis=0),
        day_types=np.concatenate([day_types_one] * reps, axis=0),
        targets=np.concatenate(target_blocks),
        targets_kmh=np.concatenate(target_kmh_blocks),
        last_input_kmh=np.concatenate(last_kmh_blocks),
        target_steps=np.concatenate([target_steps_one] * reps),
        config=config,
        scalers=scalers,
        segment_ids=np.repeat(np.array(target_list, dtype=np.int64), num_windows),
    )


class GraphTrafficDataset:
    """Graph-window dataset with the full :class:`TrafficDataset` surface.

    Windows stack target-major: block ``i`` holds every window of
    ``targets[i]``.  The split is drawn **once** for a single target's
    window range and tiled across blocks with offsets ``i * N`` — a
    window index is train/validation/test based only on its time
    position, so no target leaks its test times into another target's
    train set, and the single-target case reproduces
    :class:`TrafficDataset`'s split (and therefore its training path)
    bitwise.
    """

    def __init__(
        self,
        series: TrafficSeries,
        config: GraphFeatureConfig,
        targets: Iterable[int] | None = None,
        split: SplitIndices | None = None,
        seed: int = 0,
        scalers: FeatureScalers | None = None,
    ):
        self.series = series
        self.config = config
        if targets is None:
            targets = [series.corridor.target_index]
        self.targets = tuple(int(t) for t in targets)
        if scalers is None:
            scalers = fit_scalers(series)
        self.features: GraphWindowFeatures = build_graph_features(
            series, config, self.targets, scalers
        )
        block = self.features.num_windows // len(self.targets)
        self._block = block
        if split is None:
            split = split_windows(
                block,
                window_span=config.alpha + config.beta,
                rng=np.random.default_rng(seed),
            )
        self._base_split = split
        offsets = np.arange(len(self.targets), dtype=np.int64) * block
        self.split = SplitIndices(
            train=_tile_indices(split.train, offsets),
            validation=_tile_indices(split.validation, offsets),
            test=_tile_indices(split.test, offsets),
        )
        self._flat_cache = self.features.flat()
        self._condition_cache = self.features.condition()

    # ------------------------------------------------------------------
    # Plain supervised access (TrafficDataset duck-type)
    # ------------------------------------------------------------------
    def subset(self, name: str) -> np.ndarray:
        try:
            return getattr(self.split, name)
        except AttributeError:
            raise KeyError(f"unknown subset {name!r}; use train/validation/test") from None

    def batch(self, indices: np.ndarray):
        from .dataset import Batch

        return Batch(
            images=self.features.images[indices],
            day_types=self.features.day_types[indices],
            flat=self._flat_cache[indices],
            targets=self.features.targets[indices],
            indices=np.asarray(indices),
        )

    # ------------------------------------------------------------------
    # Adversarial rollout access
    # ------------------------------------------------------------------
    def rollout_anchors(self, subset: str = "train") -> np.ndarray:
        """Anchors per block: runs never cross a target-block boundary."""
        alpha = self.config.alpha
        runs = consecutive_runs(getattr(self._base_split, subset), min_length=alpha)
        base = [run[alpha - 1 :] for run in runs]
        if not base:
            return np.array([], dtype=np.int64)
        base_anchors = np.concatenate(base)
        offsets = np.arange(len(self.targets), dtype=np.int64) * self._block
        return _tile_indices(base_anchors, offsets)

    def rollout_batch(self, anchors: np.ndarray):
        from .dataset import RolloutBatch

        alpha = self.config.alpha
        anchors = np.asarray(anchors, dtype=np.int64)
        offsets = np.arange(-(alpha - 1), 1)
        group = (anchors[:, None] + offsets[None, :]).reshape(-1)
        if group.min() < 0:
            raise ValueError("anchor group extends before the first window")
        if np.any(group.reshape(len(anchors), alpha) // self._block != (anchors // self._block)[:, None]):
            raise ValueError("anchor group crosses a target-block boundary")
        return RolloutBatch(
            group_images=self.features.images[group],
            group_day_types=self.features.day_types[group],
            group_flat=self._flat_cache[group],
            group_targets=self.features.targets[group],
            condition=self._condition_cache[anchors],
            anchor_targets=self.features.targets[anchors],
            anchors=anchors,
        )

    # ------------------------------------------------------------------
    # Metrics support
    # ------------------------------------------------------------------
    def kmh(self, scaled: np.ndarray) -> np.ndarray:
        return self.features.scalers.speed.inverse_transform(scaled)

    def evaluation_arrays(self, subset: str = "test") -> tuple[np.ndarray, np.ndarray]:
        indices = self.subset(subset)
        return self.features.targets_kmh[indices], self.features.last_input_kmh[indices]


def _tile_indices(indices: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Tile one block's indices across target blocks (sorted output)."""
    if len(indices) == 0:
        return np.array([], dtype=np.int64)
    return (indices[None, :].astype(np.int64) + offsets[:, None]).reshape(-1)
