"""Training-time input reference profiles for drift detection.

A :class:`ReferenceProfile` captures the distribution of raw km/h
speeds a model was trained on: mean, standard deviation, and a fixed-bin
histogram over the plausible expressway range.  It rides along in
format-v3 zoo checkpoints (see :mod:`repro.core.zoo`) so that serving
time can ask "does the live input stream still look like the training
data?" without access to the original series.

The shift statistic is the **Population Stability Index** over the
pinned bins:

    PSI = sum_b (p_live[b] - p_ref[b]) * ln(p_live[b] / p_ref[b])

with epsilon-smoothed proportions so empty bins never divide by zero.
Conventional reading (documented in DESIGN.md §14): PSI < 0.1 — stable;
0.1–0.25 — moderate shift; > 0.25 — significant shift.  The bin edges
are fixed (not data-derived) so two profiles are always comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReferenceProfile", "PSI_EPSILON", "SPEED_BIN_EDGES"]

#: Fixed histogram bins over the plausible expressway speed range, km/h.
#: 13 bins of 10 km/h; the outermost bins absorb anything outside.
SPEED_BIN_EDGES: tuple[float, ...] = tuple(float(x) for x in range(0, 131, 10))

#: Smoothing floor applied to both proportions before the PSI log ratio.
PSI_EPSILON = 1e-4


def _proportions(speeds_kmh: np.ndarray, edges: np.ndarray) -> np.ndarray:
    values = np.clip(np.asarray(speeds_kmh, dtype=np.float64).ravel(), edges[0], edges[-1])
    counts, _ = np.histogram(values, bins=edges)
    total = counts.sum()
    if total == 0:
        raise ValueError("cannot profile an empty speed sample")
    return counts / total


@dataclass(frozen=True)
class ReferenceProfile:
    """Distribution snapshot of the raw km/h speeds a model trained on.

    ``day_bins`` optionally conditions the profile on day type:
    ``("weekday", sub_profile)`` / ``("offday", sub_profile)`` pairs
    built by :meth:`from_series`.  Weekly seasonality (weekend speeds
    run structurally faster) inflates an *unconditioned* PSI on windows
    that mix day types; a conditioned monitor compares each day type
    against its own training distribution instead.  The field defaults
    to empty so profiles serialised before it existed load unchanged.
    """

    mean_kmh: float
    std_kmh: float
    count: int
    bin_edges: tuple[float, ...]
    proportions: tuple[float, ...]
    day_bins: tuple[tuple[str, "ReferenceProfile"], ...] = ()

    def __post_init__(self):
        if len(self.proportions) != len(self.bin_edges) - 1:
            raise ValueError(
                f"{len(self.bin_edges)} bin edges need {len(self.bin_edges) - 1} "
                f"proportions, got {len(self.proportions)}"
            )
        if self.count <= 0:
            raise ValueError("profile count must be positive")

    # ------------------------------------------------------------------
    @staticmethod
    def from_speeds(speeds_kmh: np.ndarray) -> "ReferenceProfile":
        """Profile a raw km/h speed sample (any shape; flattened)."""
        values = np.asarray(speeds_kmh, dtype=np.float64).ravel()
        if values.size == 0:
            raise ValueError("cannot profile an empty speed sample")
        edges = np.asarray(SPEED_BIN_EDGES)
        return ReferenceProfile(
            mean_kmh=float(values.mean()),
            std_kmh=float(values.std()),
            count=int(values.size),
            bin_edges=SPEED_BIN_EDGES,
            proportions=tuple(float(p) for p in _proportions(values, edges)),
        )

    @staticmethod
    def from_series(series) -> "ReferenceProfile":
        """Profile every segment of a :class:`~repro.traffic.types.TrafficSeries`.

        Alongside the overall profile, builds day-type-conditioned
        sub-profiles from the series' calendar channel: ``"weekday"``
        covers timesteps whose day-type vector marks a working day,
        ``"offday"`` the rest (weekends and holidays).  A bin with no
        timesteps is omitted.
        """
        overall = ReferenceProfile.from_speeds(series.speeds)
        weekday_mask = series.day_types[:, 0] > 0.5
        day_bins: list[tuple[str, ReferenceProfile]] = []
        for label, mask in (("weekday", weekday_mask), ("offday", ~weekday_mask)):
            if mask.any():
                day_bins.append((label, ReferenceProfile.from_speeds(series.speeds[:, mask])))
        return ReferenceProfile(
            mean_kmh=overall.mean_kmh,
            std_kmh=overall.std_kmh,
            count=overall.count,
            bin_edges=overall.bin_edges,
            proportions=overall.proportions,
            day_bins=tuple(day_bins),
        )

    def day_profile(self, label: str) -> "ReferenceProfile | None":
        """The conditioned sub-profile for a day-type label, if present."""
        for name, sub in self.day_bins:
            if name == label:
                return sub
        return None

    # ------------------------------------------------------------------
    def psi(self, speeds_kmh: np.ndarray) -> float:
        """Population Stability Index of a live sample against this profile."""
        live = _proportions(speeds_kmh, np.asarray(self.bin_edges))
        ref = np.asarray(self.proportions, dtype=np.float64)
        live = np.maximum(live, PSI_EPSILON)
        ref = np.maximum(ref, PSI_EPSILON)
        return float(np.sum((live - ref) * np.log(live / ref)))

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serialisable snapshot (checkpoint manifests embed it)."""
        state = {
            "mean_kmh": self.mean_kmh,
            "std_kmh": self.std_kmh,
            "count": self.count,
            "bin_edges": list(self.bin_edges),
            "proportions": list(self.proportions),
        }
        if self.day_bins:
            state["day_bins"] = [
                [label, sub.state_dict()] for label, sub in self.day_bins
            ]
        return state

    @staticmethod
    def from_state(state: dict) -> "ReferenceProfile":
        return ReferenceProfile(
            mean_kmh=float(state["mean_kmh"]),
            std_kmh=float(state["std_kmh"]),
            count=int(state["count"]),
            bin_edges=tuple(float(x) for x in state["bin_edges"]),
            proportions=tuple(float(p) for p in state["proportions"]),
            day_bins=tuple(
                (str(label), ReferenceProfile.from_state(sub))
                for label, sub in state.get("day_bins", [])
            ),
        )
