"""Feature scalers.

Small fit/transform/inverse scalers over numpy arrays.  Fitting happens
on training data only; the experiment harness is responsible for passing
train-only statistics around (no test leakage).
"""

from __future__ import annotations

import numpy as np

__all__ = ["MinMaxScaler", "StandardScaler", "LogStandardScaler", "scaler_from_state"]


class MinMaxScaler:
    """Scale values linearly into [0, 1] using fitted min/max."""

    def __init__(self):
        self.minimum: float | None = None
        self.maximum: float | None = None

    def state_dict(self) -> dict:
        return {"kind": "MinMaxScaler", "minimum": self.minimum, "maximum": self.maximum}

    def load_state_dict(self, state: dict) -> "MinMaxScaler":
        self.minimum = state["minimum"]
        self.maximum = state["maximum"]
        return self

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.minimum = float(values.min())
        self.maximum = float(values.max())
        if self.maximum == self.minimum:
            # Degenerate constant input: avoid a divide-by-zero later.
            self.maximum = self.minimum + 1.0
        return self

    def _require_fitted(self) -> None:
        if self.minimum is None:
            raise RuntimeError("scaler used before fit()")

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return (np.asarray(values, dtype=np.float64) - self.minimum) / (self.maximum - self.minimum)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return np.asarray(values, dtype=np.float64) * (self.maximum - self.minimum) + self.minimum

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)


def scaler_from_state(state: dict):
    """Rebuild a scaler from its :meth:`state_dict` payload."""
    kinds = {
        "MinMaxScaler": MinMaxScaler,
        "StandardScaler": StandardScaler,
        "LogStandardScaler": LogStandardScaler,
    }
    try:
        cls = kinds[state["kind"]]
    except KeyError:
        raise ValueError(f"unknown scaler kind {state.get('kind')!r}") from None
    return cls().load_state_dict(state)


class StandardScaler:
    """Zero-mean unit-variance scaling."""

    def __init__(self):
        self.mean: float | None = None
        self.std: float | None = None

    def state_dict(self) -> dict:
        return {"kind": "StandardScaler", "mean": self.mean, "std": self.std}

    def load_state_dict(self, state: dict) -> "StandardScaler":
        self.mean = state["mean"]
        self.std = state["std"]
        return self

    def fit(self, values: np.ndarray) -> "StandardScaler":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.mean = float(values.mean())
        self.std = float(values.std())
        if self.std == 0.0:
            self.std = 1.0
        return self

    def _require_fitted(self) -> None:
        if self.mean is None:
            raise RuntimeError("scaler used before fit()")

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return (np.asarray(values, dtype=np.float64) - self.mean) / self.std

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return np.asarray(values, dtype=np.float64) * self.std + self.mean

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)


class LogStandardScaler:
    """log1p followed by standardisation — for heavy-tailed channels
    such as precipitation."""

    def __init__(self):
        self._inner = StandardScaler()

    def state_dict(self) -> dict:
        return {"kind": "LogStandardScaler", "inner": self._inner.state_dict()}

    def load_state_dict(self, state: dict) -> "LogStandardScaler":
        self._inner.load_state_dict(state["inner"])
        return self

    def fit(self, values: np.ndarray) -> "LogStandardScaler":
        self._inner.fit(np.log1p(np.asarray(values, dtype=np.float64)))
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        return self._inner.transform(np.log1p(np.asarray(values, dtype=np.float64)))

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        return np.expm1(self._inner.inverse_transform(values))

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)
