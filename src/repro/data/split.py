"""Train / validation / test splitting of sliding windows.

The paper randomly selects 80 % of the samples for training, discards
training samples that overlap the test set, and carves 20 % of the
remaining training samples out as a validation set.

A fully random split of stride-1 windows interacts badly with overlap
discarding (almost every window overlaps some test window), and the
adversarial rollout needs *runs* of consecutive training windows.  We
therefore provide two strategies:

* ``"blocks"`` (default): test windows are sampled as contiguous blocks
  (default 6 hours).  Overlap discarding then only trims block borders,
  and long consecutive training runs survive for the rollout.
* ``"random"`` (paper-literal): i.i.d. window sampling with a
  configurable overlap-discard radius.

Both return a :class:`SplitIndices` of window indices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SplitIndices", "split_windows", "consecutive_runs"]


@dataclass(frozen=True)
class SplitIndices:
    """Window indices of each partition (sorted, disjoint)."""

    train: np.ndarray
    validation: np.ndarray
    test: np.ndarray

    def __post_init__(self):
        sets = [set(self.train.tolist()), set(self.validation.tolist()), set(self.test.tolist())]
        if sets[0] & sets[2] or sets[1] & sets[2] or sets[0] & sets[1]:
            raise ValueError("split partitions overlap")

    @property
    def sizes(self) -> tuple[int, int, int]:
        return len(self.train), len(self.validation), len(self.test)


def _carve_validation(
    train: np.ndarray,
    validation_fraction: float,
    rng: np.random.Generator,
    block_length: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Move a fraction of train into validation.

    When ``block_length`` is given, whole contiguous chunks are moved so
    the remaining training runs stay long enough for the adversarial
    rollout (a fully random carve would shatter every run).
    """
    if not 0.0 <= validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in [0, 1)")
    if block_length is None:
        count = int(round(len(train) * validation_fraction))
        shuffled = rng.permutation(train)
        return np.sort(shuffled[count:]), np.sort(shuffled[:count])

    chunks: list[np.ndarray] = []
    for run in consecutive_runs(train, min_length=1):
        for start in range(0, len(run), block_length):
            chunks.append(run[start : start + block_length])
    count = max(1, int(round(len(chunks) * validation_fraction)))
    chosen = set(rng.choice(len(chunks), size=min(count, len(chunks)), replace=False).tolist())
    validation = [c for i, c in enumerate(chunks) if i in chosen]
    remaining = [c for i, c in enumerate(chunks) if i not in chosen]
    empty = np.array([], dtype=np.int64)
    return (
        np.sort(np.concatenate(remaining)) if remaining else empty,
        np.sort(np.concatenate(validation)) if validation else empty,
    )


def split_windows(
    num_windows: int,
    test_fraction: float = 0.2,
    validation_fraction: float = 0.2,
    strategy: str = "blocks",
    block_length: int = 72,
    overlap_radius: int | None = None,
    window_span: int = 13,
    rng: np.random.Generator | None = None,
) -> SplitIndices:
    """Partition window indices into train / validation / test.

    Parameters
    ----------
    num_windows:
        Total number of sliding windows.
    test_fraction:
        Fraction of windows assigned to test (paper: 0.2).
    validation_fraction:
        Fraction of the *training* windows moved to validation
        (paper: 0.2).
    strategy:
        ``"blocks"`` or ``"random"`` (see module docstring).
    block_length:
        Contiguous test-block length in windows (blocks strategy).
    overlap_radius:
        How close (in window indices) a training window may sit to a
        test window before being discarded.  Defaults to ``window_span``
        (full overlap discarding) for blocks — cheap there — and 2 for
        random, where full discarding would delete nearly all data.
    window_span:
        Total timestep span of one sample (alpha + beta); two windows
        overlap iff their indices differ by less than this.
    rng:
        Random generator (seeded by the caller for reproducibility).
    """
    if num_windows <= 0:
        raise ValueError("num_windows must be positive")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng()

    if strategy == "blocks":
        radius = window_span if overlap_radius is None else overlap_radius
        indices = _block_split(num_windows, test_fraction, block_length, rng)
    elif strategy == "random":
        radius = 2 if overlap_radius is None else overlap_radius
        indices = _random_split(num_windows, test_fraction, rng)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    test_mask = np.zeros(num_windows, dtype=bool)
    test_mask[indices] = True

    # Discard train windows within `radius` of any test window.
    forbidden = test_mask.copy()
    for shift in range(1, radius):
        forbidden[shift:] |= test_mask[:-shift]
        forbidden[:-shift] |= test_mask[shift:]
    train = np.flatnonzero(~forbidden)
    test = np.flatnonzero(test_mask)
    carve_block = block_length if strategy == "blocks" else None
    train, validation = _carve_validation(train, validation_fraction, rng, block_length=carve_block)
    return SplitIndices(train=train, validation=validation, test=test)


def _block_split(
    num_windows: int, test_fraction: float, block_length: int, rng: np.random.Generator
) -> np.ndarray:
    """Choose whole blocks for test until the fraction is reached."""
    if block_length <= 0:
        raise ValueError("block_length must be positive")
    num_blocks = int(np.ceil(num_windows / block_length))
    target_blocks = max(1, int(round(num_blocks * test_fraction)))
    chosen = rng.choice(num_blocks, size=min(target_blocks, num_blocks), replace=False)
    pieces = []
    for block in chosen:
        start = block * block_length
        stop = min(start + block_length, num_windows)
        pieces.append(np.arange(start, stop))
    return np.sort(np.concatenate(pieces))


def _random_split(num_windows: int, test_fraction: float, rng: np.random.Generator) -> np.ndarray:
    """Paper-literal i.i.d. window sampling."""
    count = int(round(num_windows * test_fraction))
    return np.sort(rng.choice(num_windows, size=count, replace=False))


def consecutive_runs(indices: np.ndarray, min_length: int) -> list[np.ndarray]:
    """Group sorted indices into consecutive runs of at least ``min_length``.

    Used by the adversarial trainer, which needs ``alpha`` consecutive
    training windows to roll out a predicted sequence.
    """
    if len(indices) == 0:
        return []
    indices = np.sort(indices)
    breaks = np.flatnonzero(np.diff(indices) != 1)
    runs = np.split(indices, breaks + 1)
    return [run for run in runs if len(run) >= min_length]
