"""``repro.experiments`` — harness for every table and figure of Section V."""

from . import ablations, fig1, fig4, fig5, fig6, robustness, table2, table3
from .registry import EXPERIMENTS, run_experiment
from .scenario import make_dataset, train_model

__all__ = [
    "ablations",
    "fig1",
    "fig4",
    "fig5",
    "fig6",
    "table2",
    "table3",
    "EXPERIMENTS",
    "run_experiment",
    "make_dataset",
    "train_model",
]
