"""Module runner for ``python -m repro.experiments``."""

from .cli import main

raise SystemExit(main())
