"""Ablation studies of APOTS design choices (DESIGN.md section 6).

Each ablation isolates one decision the paper makes and measures its
effect at a configurable scale:

* ``loss_ratio`` — the alpha : 1 MSE-to-adversarial weighting of the
  Section III footnote, against weaker/stronger MSE weights;
* ``discriminator_input`` — sequence-level vs single-speed D input
  (Section III-A argues single speeds give D conflicting labels);
* ``conditioning`` — D conditioned on E (Eq 4) vs unconditional (Eq 1/2)
  while P still receives the additional data;
* ``adjacency`` — the number m of adjacent roads per side (Fig 3);
* ``horizon`` — the prediction offset beta.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..core.adversarial import APOTSTrainer
from ..core.config import ScalePreset, table1_spec
from ..core.discriminator import Discriminator
from ..core.model import APOTS
from ..core.predictors import build_predictor
from ..data.features import FactorMask, FeatureConfig
from .reporting import render_table
from .scenario import DEFAULT_SEED, make_dataset, resolve_preset, train_model

__all__ = [
    "AblationResult",
    "loss_ratio_ablation",
    "discriminator_input_ablation",
    "conditioning_ablation",
    "adjacency_ablation",
    "horizon_ablation",
]


@dataclass
class AblationResult:
    """MAPE (and optionally regime MAPEs) per ablation setting."""

    name: str
    mape: dict[str, float] = field(default_factory=dict)
    abrupt_mape: dict[str, float] = field(default_factory=dict)

    def best(self) -> tuple[str, float]:
        setting = min(self.mape, key=self.mape.get)
        return setting, self.mape[setting]

    def render(self) -> str:
        headers = ["setting", "MAPE"]
        has_abrupt = bool(self.abrupt_mape)
        if has_abrupt:
            headers.append("abrupt MAPE")
        rows = []
        for setting, value in self.mape.items():
            row = [setting, value]
            if has_abrupt:
                row.append(self.abrupt_mape.get(setting, float("nan")))
            rows.append(row)
        return render_table(headers, rows, title=f"Ablation: {self.name}")


def _abrupt_mape(report) -> float:
    """Pooled abrupt-regime MAPE (acc and dec), NaN when no samples."""
    values = [
        report.by_regime["abrupt_acc"]["mape"],
        report.by_regime["abrupt_dec"]["mape"],
    ]
    finite = [v for v in values if np.isfinite(v)]
    return float(np.mean(finite)) if finite else float("nan")


def loss_ratio_ablation(
    preset: str | ScalePreset = "medium",
    seed: int = DEFAULT_SEED,
    kind: str = "F",
    ratios: tuple[float, ...] | None = None,
) -> AblationResult:
    """Vary the MSE weight around the paper's alpha : 1 rule."""
    preset = resolve_preset(preset)
    dataset = make_dataset(preset, mask=FactorMask.speed_only(), seed=seed)
    alpha = dataset.config.alpha
    if ratios is None:
        ratios = (1.0, alpha / 2.0, float(alpha), 4.0 * alpha)
    result = AblationResult(name="MSE : adversarial loss ratio")
    for ratio in ratios:
        spec = dataclasses.replace(
            preset.train_spec(adversarial=True, seed=seed), mse_weight=ratio
        )
        model = APOTS(
            predictor=kind,
            features=dataset.config,
            adversarial=True,
            conditional=False,
            preset=preset,
            train_spec=spec,
            seed=seed,
        )
        model.fit(dataset)
        report = model.evaluate(dataset)
        label = f"w_mse={ratio:g}" + (" (paper: alpha)" if ratio == alpha else "")
        result.mape[label] = report.mape
        result.abrupt_mape[label] = _abrupt_mape(report)
    return result


def discriminator_input_ablation(
    preset: str | ScalePreset = "medium",
    seed: int = DEFAULT_SEED,
    kind: str = "F",
) -> AblationResult:
    """Sequence-level (paper) vs single-speed discriminator input."""
    preset = resolve_preset(preset)
    dataset = make_dataset(preset, mask=FactorMask.speed_only(), seed=seed)
    result = AblationResult(name="discriminator input granularity")
    for label, length in (("sequence (alpha)", dataset.config.alpha), ("single speed", 1)):
        rng = np.random.default_rng(seed)
        spec = table1_spec(kind, preset.width_factor)
        predictor = build_predictor(kind, dataset.config, spec=spec, rng=rng)
        disc = Discriminator(
            dataset.config, spec=spec, conditional=False, sequence_length=length, rng=rng
        )
        trainer = APOTSTrainer(predictor, disc, preset.train_spec(adversarial=True, seed=seed))
        trainer.fit(dataset)
        model = APOTS(
            predictor=kind, features=dataset.config, adversarial=False, preset=preset, seed=seed
        )
        model.predictor = predictor  # evaluate the trained predictor
        report = model.evaluate(dataset)
        result.mape[label] = report.mape
        result.abrupt_mape[label] = _abrupt_mape(report)
    return result


def conditioning_ablation(
    preset: str | ScalePreset = "medium",
    seed: int = DEFAULT_SEED,
    kind: str = "H",
) -> AblationResult:
    """D(. | E) (Eq 4) vs unconditional D (Eq 1/2), with full features."""
    preset = resolve_preset(preset)
    dataset = make_dataset(preset, mask=FactorMask.both(), seed=seed)
    result = AblationResult(name="discriminator conditioning on E")
    for label, conditional in (("conditional (Eq 4)", True), ("unconditional", False)):
        model = train_model(
            kind, dataset, preset, adversarial=True, conditional=conditional, seed=seed
        )
        report = model.evaluate(dataset)
        result.mape[label] = report.mape
        result.abrupt_mape[label] = _abrupt_mape(report)
    return result


def adjacency_ablation(
    preset: str | ScalePreset = "medium",
    seed: int = DEFAULT_SEED,
    kind: str = "C",
    ms: tuple[int, ...] = (0, 1, 2, 3),
) -> AblationResult:
    """Sweep the number of adjacent roads per side (Fig 3's m)."""
    preset = resolve_preset(preset)
    result = AblationResult(name="adjacent roads per side (m)")
    for m in ms:
        features = FeatureConfig(m=m)
        dataset = make_dataset(preset, features=features, seed=seed)
        model = train_model(kind, dataset, preset, adversarial=False, seed=seed)
        result.mape[f"m={m}"] = model.evaluate(dataset).mape
    return result


def horizon_ablation(
    preset: str | ScalePreset = "medium",
    seed: int = DEFAULT_SEED,
    kind: str = "F",
    betas: tuple[int, ...] = (1, 3, 6, 12),
) -> AblationResult:
    """Sweep the prediction offset beta (5 min to 1 hour ahead)."""
    preset = resolve_preset(preset)
    result = AblationResult(name="prediction horizon (beta)")
    for beta in betas:
        features = FeatureConfig(beta=beta)
        dataset = make_dataset(preset, features=features, seed=seed)
        model = train_model(kind, dataset, preset, adversarial=False, seed=seed)
        minutes = beta * 5
        result.mape[f"beta={beta} ({minutes} min)"] = model.evaluate(dataset).mape
    return result
