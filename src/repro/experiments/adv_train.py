"""Adversarial re-training experiment: paired robustness sweep.

Closes the loop the ``robustness`` experiment opened: it showed APOTS
is soft against input-space perturbations, so here we re-train with
:mod:`repro.core.adversarial_training` mixed batches and measure what
that bought.  The protocol:

1. Train a **baseline** model with the preset's plain spec
   (``robust_fraction = 0``).
2. Train a **hardened** model from the *same* weight-init seed with
   ``robust_fraction`` of each minibatch adversarially perturbed
   (FGSM by default — one extra gradient per batch).
3. Run the identical PR 3 robustness sweep (same eval slice, epsilon
   grid, attack and seed; ``--workers`` shards it via
   ``repro.parallel``) against **both** models and report the paired
   delta per epsilon, plus the clean-accuracy price of hardening.

The evaluation attack deliberately defaults to PGD while training uses
FGSM: robustness that only holds against the attack trained on is
overfitting to the attacker, not robustness (Poudel & Li,
arXiv:2110.08712, show attacks transfer — so must defenses).  With a
recorder attached the experiment emits one ``robustness_delta`` event
per swept epsilon on top of the sweeps' own ``robustness_summary``
events.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..attacks import EvalSlice, evaluate_robustness
from ..attacks.report import RobustnessReport
from ..core.model import APOTS
from ..obs import current_recorder
from .robustness import _MAX_SAMPLES
from .scenario import DEFAULT_SEED, make_dataset, resolve_preset

__all__ = ["run", "EpsilonDelta", "AdvTrainResult"]


@dataclass(frozen=True)
class EpsilonDelta:
    """Before/after whole-regime errors at one swept epsilon."""

    epsilon_kmh: float
    attacked_mae_before: float
    attacked_mae_after: float
    clean_mae_before: float
    clean_mae_after: float

    @property
    def improved(self) -> bool:
        """Did hardening reduce (or hold) the attacked MAE here?"""
        return self.attacked_mae_after <= self.attacked_mae_before


@dataclass(frozen=True)
class AdvTrainResult:
    """Paired sweep reports plus the per-epsilon deltas."""

    before: RobustnessReport
    after: RobustnessReport
    deltas: list[EpsilonDelta]
    eval_attack: str
    train_attack: str
    epsilon_kmh: float
    robust_fraction: float

    @property
    def all_improved(self) -> bool:
        """Attacked MAE no worse after hardening at every epsilon."""
        return all(delta.improved for delta in self.deltas)

    @property
    def clean_degradation(self) -> float:
        """Relative clean-MAE increase paid for hardening (0.1 = +10%)."""
        before = self.deltas[0].clean_mae_before
        return self.deltas[0].clean_mae_after / before - 1.0 if before > 0 else 0.0

    def render(self) -> str:
        lines = [
            f"Adversarial re-training ({self.before.model}): "
            f"train attack {self.train_attack} at eps={self.epsilon_kmh:g} km/h "
            f"on {self.robust_fraction:.0%} of each batch, "
            f"evaluated against {self.eval_attack}",
            "",
            f"{'eps (km/h)':>10s} {'attacked MAE before':>20s} "
            f"{'attacked MAE after':>19s} {'delta':>8s}",
        ]
        for delta in self.deltas:
            change = delta.attacked_mae_after - delta.attacked_mae_before
            lines.append(
                f"{delta.epsilon_kmh:10.2f} {delta.attacked_mae_before:20.3f} "
                f"{delta.attacked_mae_after:19.3f} {change:+8.3f}"
            )
        lines.append(
            f"\nclean MAE: {self.deltas[0].clean_mae_before:.3f} -> "
            f"{self.deltas[0].clean_mae_after:.3f} "
            f"({self.clean_degradation:+.1%} hardening cost)"
        )
        lines.append(
            "hardening verdict: "
            + ("attacked MAE improved at every swept epsilon"
               if self.all_improved
               else "attacked MAE REGRESSED at some epsilon")
        )
        return "\n".join(lines)


def _sweep(model, eval_slice, attack, epsilons, recorder, seed, workers) -> RobustnessReport:
    return evaluate_robustness(
        model.predictor,
        model.scalers,
        eval_slice,
        attack_name=attack,
        epsilons_kmh=epsilons,
        model_name=model.name,
        recorder=recorder,
        seed=seed,
        workers=workers,
    )


def run(
    preset: str = "medium",
    seed: int = DEFAULT_SEED,
    attack: str = "pgd",
    epsilon: float = 5.0,
    workers: int = 1,
    robust_fraction: float = 0.5,
    train_attack: str = "fgsm",
    kind: str = "F",
    adversarial: bool = False,
) -> AdvTrainResult:
    """Run the paired before/after robustness sweep (CLI: ``adv_train``).

    ``attack``/``epsilon`` configure the *evaluation* sweep (as in the
    ``robustness`` experiment); ``train_attack``/``robust_fraction``
    configure the hardening.  ``adversarial=True`` hardens the full
    GAN-trained model instead of the supervised predictor (slower).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive (km/h)")
    preset = resolve_preset(preset)
    recorder = current_recorder()
    dataset = make_dataset(preset, seed=seed)

    base_spec = preset.train_spec(adversarial=adversarial, seed=seed)
    hard_spec = replace(
        base_spec,
        robust_fraction=robust_fraction,
        adv_epsilon_kmh=epsilon,
        adv_attack=train_attack,
    )
    # Same constructor seed: identical weight init, so the paired delta
    # isolates the effect of the mixed batches.
    baseline = APOTS(predictor=kind, features=dataset.config, adversarial=adversarial,
                     preset=preset, train_spec=base_spec, seed=seed)
    hardened = APOTS(predictor=kind, features=dataset.config, adversarial=adversarial,
                     preset=preset, train_spec=hard_spec, seed=seed)
    baseline.fit(dataset)
    hardened.fit(dataset)

    max_samples = _MAX_SAMPLES.get(preset.name, 128)
    indices = dataset.subset("test")[:max_samples]
    batch = dataset.batch(indices)
    targets_kmh = dataset.features.targets_kmh[indices]
    last_input_kmh = dataset.features.last_input_kmh[indices]
    eval_slice = EvalSlice(batch.images, batch.day_types, batch.targets,
                           targets_kmh, last_input_kmh)
    epsilons = [0.5 * epsilon, epsilon, 2.0 * epsilon]

    before = _sweep(baseline, eval_slice, attack, epsilons, recorder, seed, workers)
    after = _sweep(hardened, eval_slice, attack, epsilons, recorder, seed, workers)

    deltas = []
    for b, a in zip(before.results, after.results):
        delta = EpsilonDelta(
            epsilon_kmh=b.epsilon_kmh,
            attacked_mae_before=b.attacked["whole"]["mae"],
            attacked_mae_after=a.attacked["whole"]["mae"],
            clean_mae_before=b.clean["whole"]["mae"],
            clean_mae_after=a.clean["whole"]["mae"],
        )
        deltas.append(delta)
        if recorder is not None:
            recorder.event(
                "robustness_delta",
                attack=attack,
                epsilon=delta.epsilon_kmh,
                attacked_mae_before=delta.attacked_mae_before,
                attacked_mae_after=delta.attacked_mae_after,
                clean_mae_before=delta.clean_mae_before,
                clean_mae_after=delta.clean_mae_after,
            )
    return AdvTrainResult(
        before=before,
        after=after,
        deltas=deltas,
        eval_attack=attack,
        train_attack=train_attack,
        epsilon_kmh=epsilon,
        robust_fraction=robust_fraction,
    )
