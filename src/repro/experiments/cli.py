"""Command-line entry point: ``python -m repro.experiments <id>``.

Examples
--------
List experiments::

    python -m repro.experiments --list

Regenerate Table III at the medium scale::

    python -m repro.experiments table3 --preset medium

Run everything at smoke scale (fast sanity sweep)::

    python -m repro.experiments all --preset smoke
"""

from __future__ import annotations

import argparse
import sys
import time

from .registry import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figures of the APOTS paper (ICDE 2022).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"experiment id ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument("--preset", default="medium", help="scale preset: smoke | medium | paper")
    parser.add_argument("--seed", type=int, default=None, help="master random seed")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list or args.experiment is None:
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:8s}  {description}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        result = run_experiment(name, preset=args.preset, seed=args.seed)
        elapsed = time.time() - started
        print(result.render())
        print(f"\n[{name} done in {elapsed:.1f}s at preset={args.preset}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
