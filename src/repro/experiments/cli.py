"""Command-line entry point: ``python -m repro.experiments <id>``.

Examples
--------
List experiments::

    python -m repro.experiments --list

Regenerate Table III at the medium scale::

    python -m repro.experiments table3 --preset medium

Run everything at smoke scale (fast sanity sweep)::

    python -m repro.experiments all --preset smoke

Record per-experiment observability run logs (JSONL events + manifest,
one run directory per experiment, see ``repro.obs``)::

    python -m repro.experiments table3 --preset smoke --obs-dir runs/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..obs import RunRecorder, use_recorder
from .registry import EXPERIMENTS, run_experiment
from .reporting import render_run_log_reference

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figures of the APOTS paper (ICDE 2022).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"experiment id ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument("--preset", default="medium", help="scale preset: smoke | medium | paper")
    parser.add_argument("--seed", type=int, default=None, help="master random seed")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="record a repro.obs run log (manifest + JSONL events) per experiment under DIR",
    )
    parser.add_argument(
        "--attack",
        default="pgd",
        choices=("fgsm", "pgd", "spsa", "random"),
        help="attack used by the robustness / adv_train experiments (default: pgd)",
    )
    parser.add_argument(
        "--epsilon",
        type=float,
        default=5.0,
        metavar="KMH",
        help="perturbation budget in km/h for the robustness / adv_train "
        "experiments (default: 5)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="processes for the robustness / adv_train epsilon sweeps "
        "(repro.parallel; default 1 = serial, identical numbers)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list or args.experiment is None:
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:8s}  {description}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        # Attack knobs only exist on the attack-facing runners.
        extra = (
            {"attack": args.attack, "epsilon": args.epsilon, "workers": args.workers}
            if name in ("robustness", "adv_train")
            else {}
        )
        if args.obs_dir is not None:
            recorder = RunRecorder(
                Path(args.obs_dir) / name,
                manifest={"experiment": name, "preset": args.preset, "cli_seed": args.seed},
            )
            with recorder, use_recorder(recorder):
                result = run_experiment(name, preset=args.preset, seed=args.seed, **extra)
        else:
            recorder = None
            result = run_experiment(name, preset=args.preset, seed=args.seed, **extra)
        elapsed = time.time() - started
        print(result.render())
        if recorder is not None:
            print(render_run_log_reference(recorder))
        print(f"\n[{name} done in {elapsed:.1f}s at preset={args.preset}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
