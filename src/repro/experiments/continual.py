"""Continual-learning demo: drift → retrain → shadow → swap → rollback.

The closed loop of :mod:`repro.mlops` run end to end against the
simulator:

1. A champion is trained on the corridor under the **base** traffic
   regime and deployed behind a :class:`repro.serving.ForecastService`
   wrapped in a :class:`repro.mlops.ContinualController`.
2. The live stream replays the base regime (the monitors calibrate
   their baselines), then switches to a **shifted** regime — the same
   corridor re-simulated with an earlier congestion knee and higher
   off-peak demand, i.e. persistently slower, more congested traffic
   the champion never saw.  (With ``drift_source="scenario"`` the shift
   is instead a corridor-wide :class:`IncidentCascade` compiled through
   the :mod:`repro.network.scenarios` engine and overlaid on a
   same-regime re-simulation.)
3. The controller must *detect* the drift, *retrain* a challenger on
   its own ring-buffer history, *shadow-evaluate* it, and *hot-swap* —
   after which the post-shift rolling MAE should land within a pinned
   band of a from-scratch **oracle** trained directly on the shifted
   regime (the best this architecture can do with the new data).
4. Finally a **rollback drill**: a sabotaged checkpoint (champion
   weights + large noise) is pushed through the same deploy path; the
   guardband must catch it and restore the adapted champion
   automatically.

Both paths are reconstructable from the run's schema-valid obs log and
the whole demo is deterministic under a fixed seed.
"""

from __future__ import annotations

import dataclasses
import json
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.model import APOTS
from ..core.zoo import load_model, save_model
from ..data.dataset import TrafficDataset
from ..data.features import FeatureConfig
from ..data.split import split_windows
from ..metrics.errors import all_errors
from ..mlops import ContinualController, ControllerConfig, DriftConfig, RetrainSpec
from ..network.graph import from_corridor
from ..network.scenarios import IncidentCascade, Scenario, compile_scenario
from ..obs import current_recorder
from ..serving import ForecastService, Observation
from ..traffic.simulator import simulate
from ..traffic.types import SimulationConfig, TrafficSeries
from .scenario import DEFAULT_SEED, resolve_preset

__all__ = ["run", "ContinualResult", "RECOVERY_MAE_RATIO", "RECOVERY_MAE_SLACK_KMH"]

#: Pinned recovery band: after the swap, the adapted champion's rolling
#: MAE on the shifted stream must satisfy
#: ``adapted <= RECOVERY_MAE_RATIO * oracle + RECOVERY_MAE_SLACK_KMH``.
#: The oracle trains from scratch on the full shifted series with the
#: experiment preset's epoch budget; the challenger fine-tunes for a
#: couple of epochs on a ring buffer, so parity is not expected —
#: landing within 2x (plus a km/h of slack for micro-scale noise) is.
RECOVERY_MAE_RATIO = 2.0
RECOVERY_MAE_SLACK_KMH = 1.0

#: The injected regime shift: congestion collapses earlier and off-peak
#: demand is higher — persistent slow traffic, not a transient incident.
SHIFT_OVERRIDES = {"congestion_knee": 0.55, "base_demand": 0.45}


def _scenario_shift(base_cfg: SimulationConfig, seed: int) -> TrafficSeries:
    """Shifted stream built from a compiled :class:`IncidentCascade`.

    Instead of re-simulating under different demand parameters
    (``drift_source="regime"``), re-simulate the *same* regime and
    overlay a corridor-wide incident cascade compiled through the
    scenario engine: the cascade seeds at the downstream end and
    propagates upstream with no decay and no delay, so every segment
    sees a persistent ``severity`` speed multiplier (plus the incident
    flag) from step 0 for the whole horizon.  On a corridor each
    segment has exactly one upstream neighbour, so the per-branch
    severity split never dilutes the wave.
    """
    raw = simulate(dataclasses.replace(base_cfg, seed=seed + 1))
    graph = from_corridor(raw.corridor)
    cascade = IncidentCascade(
        segment=raw.num_segments - 1,
        start_step=0,
        severity=0.5,
        duration_steps=raw.num_steps,
        recovery_steps=1,
        cascade_depth=raw.num_segments,
        cascade_delay_steps=0,
        cascade_decay=1.0,
    )
    schedule = compile_scenario(
        Scenario(name="continual-drift", elements=(cascade,)), graph, raw.num_steps
    )
    return dataclasses.replace(
        raw,
        speeds=raw.speeds * schedule.speed_factor,
        events=np.maximum(raw.events, schedule.event_flags),
    )


@dataclass
class ContinualResult:
    """Everything the demo measured, plus the event-log trail."""

    triggered: bool
    trigger_monitor: str | None
    swapped: bool
    rolled_back: bool
    baseline_mae: float | None  # champion on the base regime (calibration)
    drifted_mae: float | None  # champion on the shifted regime (pre-swap)
    adapted_mae: float | None  # new champion on the shifted regime
    oracle_mae: float  # from-scratch model on the shifted regime
    recovered: bool  # adapted within the pinned band of the oracle
    champion_fingerprint: str
    adapted_fingerprint: str | None
    event_kinds: list[str]

    def render(self) -> str:
        lines = ["continual learning: drift -> retrain -> shadow -> swap -> rollback", ""]
        fmt = lambda v: f"{v:.2f} km/h" if v is not None else "n/a"
        lines.append(f"  baseline rolling MAE (base regime):    {fmt(self.baseline_mae)}")
        lines.append(f"  drifted rolling MAE (champion, shift): {fmt(self.drifted_mae)}")
        lines.append(f"  adapted rolling MAE (post-swap):       {fmt(self.adapted_mae)}")
        lines.append(f"  oracle MAE (from-scratch on shift):    {fmt(self.oracle_mae)}")
        lines.append("")
        lines.append(f"  drift detected : {self.triggered} ({self.trigger_monitor or '-'} monitor)")
        lines.append(f"  hot-swapped    : {self.swapped}")
        lines.append(
            f"  recovered      : {self.recovered} "
            f"(band: {RECOVERY_MAE_RATIO:.1f}x oracle + {RECOVERY_MAE_SLACK_KMH:.1f})"
        )
        lines.append(f"  rollback drill : {'rolled back' if self.rolled_back else 'FAILED'}")
        mlops = [k for k in self.event_kinds if k.startswith(("mlops_", "drift_"))]
        lines.append(f"  mlops/drift events logged: {len(mlops)}")
        return "\n".join(lines)


def _observations(series: TrafficSeries, column: int, step: int) -> list[Observation]:
    """One tick's full-corridor batch, column ``column`` of ``series``."""
    return [
        Observation(
            segment_id=segment,
            step=step,
            speed_kmh=float(series.speeds[segment, column]),
            event=float(series.events[segment, column]),
            temperature=float(series.temperature[column]),
            precipitation=float(series.precipitation[column]),
            day_type=tuple(series.day_types[column]),
        )
        for segment in range(series.num_segments)
    ]


def _stream(controller: ContinualController, series: TrafficSeries, columns, start_step: int,
            segments: list[int]) -> None:
    for offset, column in enumerate(columns):
        controller.ingest_tick(_observations(series, int(column), start_step + offset))
        controller.predict(segments)


def _train_champion(series: TrafficSeries, config: FeatureConfig, preset, seed: int,
                    directory: Path) -> Path:
    num_windows = series.num_steps - config.alpha - config.beta + 1
    split = split_windows(num_windows, window_span=config.alpha + config.beta,
                          rng=np.random.default_rng(seed))
    dataset = TrafficDataset(series, config, split=split, seed=seed)
    model = APOTS(predictor="F", adversarial=False, features=config, preset=preset, seed=seed)
    model.fit(dataset)
    save_model(model, directory)
    return directory


def _oracle_mae(series: TrafficSeries, config: FeatureConfig, preset, seed: int) -> float:
    """Test MAE of a from-scratch model trained on the shifted regime."""
    num_windows = series.num_steps - config.alpha - config.beta + 1
    split = split_windows(num_windows, window_span=config.alpha + config.beta,
                          rng=np.random.default_rng(seed))
    dataset = TrafficDataset(series, config, split=split, seed=seed)
    model = APOTS(predictor="F", adversarial=False, features=config, preset=preset, seed=seed)
    model.fit(dataset)
    indices = dataset.subset("test")
    batch = dataset.batch(indices)
    predicted = dataset.kmh(model.predictor.predict(batch.images, batch.day_types, batch.flat))
    return all_errors(predicted, dataset.features.targets_kmh[indices])["mae"]


def _sabotage(champion_dir: Path, directory: Path, seed: int) -> Path:
    """A deliberately broken checkpoint: champion weights plus loud noise."""
    model = load_model(champion_dir)
    rng = np.random.default_rng(seed)
    state = model.predictor.state_dict()
    model.predictor.load_state_dict(
        {name: array + rng.normal(0.0, 5.0, size=array.shape) for name, array in state.items()}
    )
    save_model(model, directory)
    return directory


def run(
    preset: str = "medium", seed: int = DEFAULT_SEED, drift_source: str = "regime"
) -> ContinualResult:
    """Run the continual-learning demo (see module docstring).

    ``drift_source`` selects how the post-calibration shift is built:
    ``"regime"`` re-simulates under :data:`SHIFT_OVERRIDES` (persistent
    demand change), ``"scenario"`` overlays a compiled corridor-wide
    :class:`IncidentCascade` on a same-regime re-simulation.
    """
    preset = resolve_preset(preset)
    recorder = current_recorder()
    config = FeatureConfig(beta=1)  # next-interval forecasting keeps the loop tight

    base_cfg = SimulationConfig(num_days=preset.num_days, seed=seed)
    base = simulate(base_cfg)
    if drift_source == "regime":
        shifted = simulate(dataclasses.replace(base_cfg, seed=seed + 1, **SHIFT_OVERRIDES))
    elif drift_source == "scenario":
        shifted = _scenario_shift(base_cfg, seed)
    else:
        raise ValueError(
            f"unknown drift_source {drift_source!r}; have 'regime' and 'scenario'"
        )
    steps_per_day = base.num_steps // base_cfg.num_days

    with tempfile.TemporaryDirectory(prefix="continual-") as tmp:
        workdir = Path(tmp)
        champion_dir = _train_champion(base, config, preset, seed, workdir / "champion")

        service = ForecastService.from_checkpoint(champion_dir, base.num_segments)
        # The rolling windows span one full day of samples so the frozen
        # baseline averages over the diurnal cycle (a shorter window
        # freezes on night traffic and false-triggers at rush hour).
        tick = base.num_segments  # reconciled samples per tick
        controller = ContinualController(
            service,
            champion_dir,
            workdir / "challengers",
            config=ControllerConfig(
                drift=DriftConfig(
                    error_window=steps_per_day * tick,
                    min_samples=steps_per_day * tick // 2,
                    error_ratio=1.5,
                    input_window=steps_per_day * tick,
                    check_every=4 * tick,
                    hysteresis=3,
                    # The profile carries day-type bins and the monitor
                    # conditions PSI on them, so weekend windows are
                    # scored against the weekend training distribution
                    # and weekly seasonality no longer inflates the
                    # statistic.  That lets the thresholds sit at the
                    # conventional values (PSI 0.25 "significant
                    # shift"); the injected regime shift still lands
                    # far above, at PSI > 0.75.
                    psi_threshold=0.25,
                    mean_shift_kmh=10.0,
                ),
                retrain=RetrainSpec(
                    epochs=max(2, preset.epochs // 4),
                    batch_size=min(preset.batch_size, 32),
                    max_steps_per_epoch=preset.max_steps_per_epoch,
                    min_windows=48,
                    holdout_fraction=0.2,
                ),
                # One day of raw history: by the time a challenger can be
                # promoted its training set is dominated by the new regime.
                history_capacity=steps_per_day,
                min_history_steps=160,
                cooldown_ticks=48,
                postswap_ticks=24,
                # The guard compares a short post-swap window against a
                # full-day rolling MAE, so diurnal variation alone can
                # reach ~1.5x; 2x separates "rush hour" from "broken".
                rollback_ratio=2.0,
                rollback_window=24 * tick,
                rollback_min_samples=6 * tick,
                rollback_patience=3,
                seed=seed,
            ),
            recorder=recorder,
        )
        champion_fingerprint = controller.fingerprint

        segments = list(range(base.num_segments))
        # Phase 1 — calibrate on the tail of the base regime.  The warm
        # window also fills the ring buffer so the first retrain has
        # enough history even if the trigger fires early in the shift.
        warm_ticks = min(2 * steps_per_day + steps_per_day // 2, base.num_steps)
        base_columns = range(base.num_steps - warm_ticks, base.num_steps)
        _stream(controller, base, base_columns, base.num_steps - warm_ticks, segments)
        baseline_mae = controller.error_monitor.rolling_mae()

        # Phase 2 — inject the regime shift; stream until the loop has
        # swapped (or the budget runs out).  Shift columns start at 0,
        # which is time-of-day aligned because the base stream ended on
        # a day boundary.
        drifted_mae = None
        shift_cursor = 0
        next_step = base.num_steps

        def shift_tick() -> None:
            nonlocal shift_cursor, next_step
            column = shift_cursor % shifted.num_steps
            controller.ingest_tick(_observations(shifted, column, next_step))
            controller.predict(segments)
            shift_cursor += 1
            next_step += 1

        # Counters are read relative to the end of the warm phase, so a
        # (defensively possible) calibration-time adaptation can never
        # masquerade as the shift being detected.
        triggers_before = controller.trigger_count
        swaps_before = controller.swap_count
        shift_budget = min(3 * steps_per_day, shifted.num_steps)
        for _ in range(shift_budget):
            shift_tick()
            if controller.swap_count > swaps_before:
                break
            drifted_mae = controller.error_monitor.rolling_mae() or drifted_mae
        triggered = controller.trigger_count > triggers_before
        swapped = controller.swap_count > swaps_before
        adapted_fingerprint = controller.fingerprint if swapped else None

        # Phase 3 — keep streaming the shifted regime through the guard
        # window and beyond, so acceptance happens and the adapted
        # champion's rolling MAE is measured on post-swap data only.
        settle = controller.config.postswap_ticks + steps_per_day + steps_per_day // 4
        for _ in range(settle):
            shift_tick()
        # A late (second) swap inside the settle window resets the error
        # monitor; keep streaming until its rolling window refills so
        # adapted_mae is measured, not n/a (bounded: one extra day).
        for _ in range(steps_per_day):
            if (
                not controller.in_guardband
                and controller.error_monitor.rolling_mae() is not None
            ):
                break
            shift_tick()
        adapted_mae = controller.error_monitor.rolling_mae()

        oracle_mae = _oracle_mae(shifted, config, preset, seed)
        recovered = (
            swapped
            and adapted_mae is not None
            and adapted_mae <= RECOVERY_MAE_RATIO * oracle_mae + RECOVERY_MAE_SLACK_KMH
        )

        # Phase 4 — rollback drill: push a sabotaged checkpoint through
        # the same deploy path; the guardband must restore the adapted
        # champion without intervention.
        pre_drill = controller.fingerprint
        rollbacks_before = controller.rollback_count
        assert controller.error_monitor.rolling_mae() is not None  # guard armable
        sabotage_dir = _sabotage(controller.champion_dir, workdir / "sabotage", seed)
        controller.deploy(sabotage_dir)
        for _ in range(controller.config.postswap_ticks):
            if controller.rollback_count > rollbacks_before:
                break
            shift_tick()
        rolled_back = (
            controller.rollback_count > rollbacks_before
            and controller.fingerprint == pre_drill
        )

    kinds = []
    if recorder is not None and recorder.events_path.exists():
        with recorder.events_path.open(encoding="utf-8") as handle:
            kinds = [json.loads(line)["kind"] for line in handle]
    return ContinualResult(
        triggered=triggered,
        trigger_monitor=controller.last_trigger.monitor if controller.last_trigger else None,
        swapped=swapped,
        rolled_back=rolled_back,
        baseline_mae=baseline_mae,
        drifted_mae=drifted_mae,
        adapted_mae=adapted_mae,
        oracle_mae=oracle_mae,
        recovered=recovered,
        champion_fingerprint=champion_fingerprint,
        adapted_fingerprint=adapted_fingerprint,
        event_kinds=kinds,
    )
