"""Fig 1 — the motivating abrupt-change cases.

Extracts three-hour episodes from the simulated corridor that match the
paper's four panels: morning rush, evening rush, a rainy evening, and an
accident recovery.  Each episode is a (timestamps, target-road speeds)
trace; the paper's point is that speed collapses or recovers within a
few five-minute intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..traffic.types import TrafficSeries
from .reporting import render_series
from .scenario import DEFAULT_SEED, get_series, resolve_preset

__all__ = ["Episode", "Fig1Result", "find_episode", "run", "EPISODE_NAMES"]

EPISODE_NAMES = ("morning_rush", "evening_rush", "rainy", "accident_recovery")

#: Episode length: 3 hours of 5-minute steps, as in the paper's panels.
EPISODE_STEPS = 36


@dataclass
class Episode:
    """One extracted trace."""

    name: str
    start_step: int
    labels: list[str]
    speeds_kmh: np.ndarray

    @property
    def drop(self) -> float:
        """Largest speed drop within the episode (km/h)."""
        return float(self.speeds_kmh.max() - self.speeds_kmh.min())

    def render(self) -> str:
        return render_series(
            self.labels, {"Real": self.speeds_kmh}, title=f"Fig 1 ({self.name})", stride=3
        )


@dataclass
class Fig1Result:
    episodes: dict[str, Episode] = field(default_factory=dict)

    def render(self) -> str:
        return "\n\n".join(e.render() for e in self.episodes.values())


def _window_scores(series: TrafficSeries, name: str) -> np.ndarray:
    """Score every possible episode start for how well it fits ``name``."""
    speeds = series.target_speeds()
    total = series.num_steps
    scores = np.full(total, -np.inf)
    steps_per_day = (24 * 60) // series.interval_minutes
    target_row = series.corridor.target_index

    for start in range(0, total - EPISODE_STEPS):
        stop = start + EPISODE_STEPS
        window = speeds[start:stop]
        hour = series.hours[start]
        weekday = series.day_types[start, 0] == 1
        variation = float(window.max() - window.min())
        if name == "morning_rush":
            if weekday and 5 <= hour <= 8:
                scores[start] = variation
        elif name == "evening_rush":
            if weekday and 16 <= hour <= 20:
                scores[start] = variation
        elif name == "rainy":
            rain = float(series.precipitation[start:stop].sum())
            if rain > 0.5:
                scores[start] = variation + 5.0 * rain
        elif name == "accident_recovery":
            # An accident affects the target road directly or by queue
            # spillback from up to two segments downstream (higher index).
            rows = range(target_row, min(target_row + 3, series.num_segments))
            events = float(sum(series.events[r, start:stop].sum() for r in rows))
            if events > 0:
                scores[start] = variation + 2.0 * events
        else:
            raise ValueError(f"unknown episode name {name!r}")
    return scores


def find_episode(series: TrafficSeries, name: str) -> Episode | None:
    """Best-matching episode, or None when the series has no candidate."""
    scores = _window_scores(series, name)
    best = int(np.argmax(scores))
    if not np.isfinite(scores[best]):
        return None
    stop = best + EPISODE_STEPS
    labels = [series.timestamps[i].strftime("%H:%M") for i in range(best, stop)]
    return Episode(
        name=name,
        start_step=best,
        labels=labels,
        speeds_kmh=series.target_speeds()[best:stop].copy(),
    )


def run(preset: str = "medium", seed: int = DEFAULT_SEED) -> Fig1Result:
    """Extract all four Fig 1 episodes from the preset's series."""
    series = get_series(resolve_preset(preset), seed)
    result = Fig1Result()
    for name in EPISODE_NAMES:
        episode = find_episode(series, name)
        if episode is not None:
            result.episodes[name] = episode
    return result
