"""Fig 4 — Q1: effect of adversarial training (Section V-B).

Compares F, C, L, H against Adv_F, Adv_C, Adv_L, Adv_H — adversarial
training only, **no additional data** — reporting MAPE over the whole
test period, the normal regime, and the abrupt acceleration /
deceleration regimes (theta = +-0.3, Eq 7/8).

Expected shape (paper): adversarial training lowers MAPE everywhere, by
far the most for F and in the abrupt regimes (F's abrupt-dec MAPE drops
from 79.84 to 26.83).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.features import FactorMask
from .reporting import render_bars
from .scenario import DEFAULT_SEED, make_dataset, train_model

__all__ = ["Fig4Result", "run"]

REGIMES = ("whole", "normal", "abrupt_acc", "abrupt_dec")
REGIME_LABELS = ("Whole period", "Normal", "Abrupt acc", "Abrupt dec")
PREDICTORS = ("F", "C", "L", "H")


@dataclass
class Fig4Result:
    """MAPE per (model variant, regime)."""

    mape: dict[str, dict[str, float]] = field(default_factory=dict)
    regime_counts: dict[str, int] = field(default_factory=dict)

    def improvement(self, kind: str, regime: str) -> float:
        """Absolute MAPE reduction from plain to adversarial."""
        return self.mape[kind][regime] - self.mape[f"Adv {kind}"][regime]

    @property
    def predictors(self) -> list[str]:
        """The plain-model names present in the result."""
        return [k for k in self.mape if not k.startswith("Adv ")]

    def render(self) -> str:
        parts = []
        for kind in self.predictors:
            groups = {
                kind: [self.mape[kind][r] for r in REGIMES],
                f"Adv {kind}": [self.mape[f"Adv {kind}"][r] for r in REGIMES],
            }
            parts.append(
                render_bars(
                    list(REGIME_LABELS),
                    groups,
                    title=f"Fig 4 ({kind}): effect of adversarial training [MAPE %]",
                )
            )
        counts = ", ".join(f"{k}={v}" for k, v in self.regime_counts.items())
        parts.append(f"test samples per regime: {counts}")
        return "\n\n".join(parts)


def run(preset: str = "medium", seed: int = DEFAULT_SEED, predictors=PREDICTORS) -> Fig4Result:
    """Train the 2 x len(predictors) grid and collect regime MAPEs."""
    dataset = make_dataset(preset, mask=FactorMask.speed_only(), seed=seed)
    result = Fig4Result()
    for kind in predictors:
        plain = train_model(kind, dataset, preset, adversarial=False, seed=seed)
        adv = train_model(kind, dataset, preset, adversarial=True, conditional=False, seed=seed)
        plain_report = plain.evaluate(dataset)
        adv_report = adv.evaluate(dataset)
        result.mape[kind] = {r: plain_report.regime_mape(r) for r in REGIMES}
        result.mape[f"Adv {kind}"] = {r: adv_report.regime_mape(r) for r in REGIMES}
        result.regime_counts = plain_report.regime_counts
    return result
