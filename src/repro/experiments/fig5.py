"""Fig 5 — Q2: effect of additional data (Section V-B).

Compares each predictor *without adversarial training* across four input
configurations: speed only, + adjacent-speed data, + non-speed data, and
both.  Input size is identical in all four configurations — ablated
blocks are zero-filled (the paper fixes the input to configuration (3)
and fills the rest with 0).

Expected shape (paper): every kind of additional data helps every
predictor; using both helps most (F: 21.4 -> 17.9 MAPE).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.features import FactorMask
from .reporting import render_bars, render_table
from .scenario import DEFAULT_SEED, make_dataset, train_model

__all__ = ["Fig5Result", "run", "CONFIGURATIONS"]

#: Input configurations, ordered as the paper's x-axis (best first).
CONFIGURATIONS: dict[str, FactorMask] = {
    "Both": FactorMask.both(),
    "Non speed": FactorMask.non_speed_only(),
    "Adjacent speed": FactorMask.adjacent_only(),
    "Speed only": FactorMask.speed_only(),
}

PREDICTORS = ("F", "C", "L", "H")


@dataclass
class Fig5Result:
    """MAPE per (configuration, predictor)."""

    mape: dict[str, dict[str, float]] = field(default_factory=dict)

    def gain_over_speed_only(self, configuration: str, kind: str) -> float:
        """Relative MAPE improvement (%) of a configuration vs speed-only."""
        base = self.mape["Speed only"][kind]
        return (base - self.mape[configuration][kind]) / base * 100.0

    @property
    def predictors(self) -> list[str]:
        """Predictor names present in the result."""
        return list(next(iter(self.mape.values())).keys()) if self.mape else []

    def render(self) -> str:
        labels = list(CONFIGURATIONS)
        kinds = self.predictors
        groups = {kind: [self.mape[c][kind] for c in labels] for kind in kinds}
        bars = render_bars(labels, groups, title="Fig 5: effect of additional data [MAPE %]")
        rows = [[c] + [self.mape[c][k] for k in kinds] for c in labels]
        table = render_table(["configuration"] + kinds, rows)
        return bars + "\n\n" + table


def run(preset: str = "medium", seed: int = DEFAULT_SEED, predictors=PREDICTORS) -> Fig5Result:
    """Train len(predictors) x 4 plain models over the factor grid."""
    result = Fig5Result()
    for configuration, mask in CONFIGURATIONS.items():
        dataset = make_dataset(preset, mask=mask, seed=seed)
        result.mape[configuration] = {}
        for kind in predictors:
            model = train_model(kind, dataset, preset, adversarial=False, seed=seed)
            result.mape[configuration][kind] = model.evaluate(dataset).mape
    return result
