"""Fig 6 — case-study prediction traces (Section V-B).

Replays the Fig 1 episodes through the trained models: the plain
predictors P (speed only, no adversarial training) against the full
APOTS variants (speed + additional data, adversarial).  The paper shows
the APOTS traces locking onto abrupt drops and recoveries that the plain
predictors lag behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.model import APOTS
from ..data.dataset import TrafficDataset
from ..data.features import FactorMask
from ..metrics.errors import mape
from .fig1 import EPISODE_NAMES, Episode, find_episode
from .reporting import render_series
from .scenario import DEFAULT_SEED, get_series, make_dataset, resolve_preset, train_model

__all__ = ["Fig6Result", "run", "predict_episode"]

PREDICTORS = ("F", "C", "L", "H")


@dataclass
class CaseTrace:
    """Real and per-model predicted speeds over one episode."""

    episode: Episode
    predictions: dict[str, np.ndarray]

    def model_mape(self, name: str) -> float:
        return mape(self.predictions[name], self.episode.speeds_kmh)

    def render(self, stride: int = 3) -> str:
        series = {"Real": self.episode.speeds_kmh}
        series.update(self.predictions)
        return render_series(
            self.episode.labels, series, title=f"Fig 6 ({self.episode.name})", stride=stride
        )


@dataclass
class Fig6Result:
    traces: dict[str, CaseTrace] = field(default_factory=dict)

    def render(self) -> str:
        return "\n\n".join(t.render() for t in self.traces.values())


def predict_episode(model: APOTS, dataset: TrafficDataset, episode: Episode) -> np.ndarray:
    """Model predictions for every step of an episode.

    Step ``s`` is predicted from the window ending ``beta`` steps before
    it; early steps without a full history fall back to the true speed
    (they are plotted, not scored, in the paper's figure).
    """
    config = dataset.config
    steps = np.arange(episode.start_step, episode.start_step + len(episode.speeds_kmh))
    window_indices = steps - (config.alpha - 1) - config.beta
    valid = window_indices >= 0
    predictions = episode.speeds_kmh.copy()
    if valid.any():
        batch = dataset.batch(window_indices[valid])
        scaled = model.predictor.predict(batch.images, batch.day_types, batch.flat)
        predictions[valid] = dataset.kmh(scaled)
    return predictions


def run(preset: str = "medium", seed: int = DEFAULT_SEED, predictors=PREDICTORS) -> Fig6Result:
    """Train the 2 x len(predictors) models and replay all episodes."""
    preset = resolve_preset(preset)
    series = get_series(preset, seed)
    speed_only = make_dataset(preset, mask=FactorMask.speed_only(), seed=seed)
    with_add = make_dataset(preset, mask=FactorMask.both(), seed=seed)

    models: dict[str, tuple[APOTS, TrafficDataset]] = {}
    for kind in predictors:
        plain = train_model(kind, speed_only, preset, adversarial=False, seed=seed)
        full = train_model(kind, with_add, preset, adversarial=True, conditional=True, seed=seed)
        models[kind] = (plain, speed_only)
        models[f"APOTS_{kind}"] = (full, with_add)

    result = Fig6Result()
    for name in EPISODE_NAMES:
        episode = find_episode(series, name)
        if episode is None:
            continue
        predictions = {
            label: predict_episode(model, dataset, episode)
            for label, (model, dataset) in models.items()
        }
        result.traces[name] = CaseTrace(episode=episode, predictions=predictions)
    return result
