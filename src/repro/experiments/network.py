"""The ``network`` experiment: city-scale scenario engine, end to end.

Exercises the full :mod:`repro.network` stack on a deterministic grid
city:

1. build the BFS-ordered arterial grid and its gravity-model OD demand;
2. simulate a **baseline** day set and a **stress scenario** (incident
   cascade at the target road, stadium-event demand pulse, sweeping
   weather front) at the *same seed* — scenario compilation is rng-free,
   so every random draw is shared and the KPI deltas are causal;
3. score both runs with the network KPIs and report the deltas;
4. route the longest free-flow shortest path through the grid and
   compare its time-expanded travel time under baseline vs scenario
   (:func:`repro.routing.traverse_path_minutes` on explicit paths);
5. **train graph-neighbourhood models** (supervised F and adversarial
   APOTS_F) on the baseline stream's k-hop windows
   (:class:`repro.data.GraphTrafficDataset`), then replay the stressed
   stream through them and report per-regime errors and per-phase MAE
   degradation — does the model see the cascade coming?

Everything is seeded; ``fingerprint`` hashes both speed fields, and a
test pins that two runs at the same preset/seed agree bitwise.  Emits
``network_build`` / ``network_simulate`` / ``network_kpis`` /
``network_train`` / ``network_stress`` events when an ambient recorder
is installed.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.zoo import model_fingerprint
from ..data.graph_features import GraphFeatureConfig, GraphTrafficDataset
from ..data.split import SplitIndices
from ..network.demand import gravity_od_matrix, segment_demand_weights, zones_from_graph
from ..network.features import graph_window_layout
from ..network.graph import RoadGraph, grid_city
from ..network.kpis import NetworkKpis, compare_kpis, compute_kpis
from ..network.scenarios import EventPulse, IncidentCascade, Scenario, WeatherFront
from ..network.stress import degradation_table, phase_error_table, scenario_phases
from ..network.waves import NetworkSimulator
from ..obs import current_recorder
from ..routing.paths import dijkstra
from ..routing.travel_time import traverse_path_minutes
from ..traffic.types import SimulationConfig, TrafficSeries
from .scenario import DEFAULT_SEED, EXPERIMENT_BETA, resolve_preset, train_model

__all__ = [
    "NetworkResult",
    "build_city",
    "stress_scenario",
    "train_targets",
    "NEIGHBOURHOOD_HOPS",
    "run",
]

#: k-hop radius of the graph training windows — the network analogue of
#: the corridor's ``m = 2``.
NEIGHBOURHOOD_HOPS = 2


@dataclass
class NetworkResult:
    """Everything the network experiment produced."""

    num_segments: int
    num_junctions: int
    num_zones: int
    scenario_name: str
    baseline: NetworkKpis
    scenario: NetworkKpis
    deltas: dict[str, float]
    path: tuple[int, ...]
    path_travel_baseline_min: float
    path_travel_scenario_min: float
    fingerprint: str
    #: k-hop radius of the graph training windows.
    k: int = NEIGHBOURHOOD_HOPS
    #: Segments the graph models were trained to forecast.
    targets: tuple[int, ...] = ()
    #: Per model name: training fingerprint, per-regime errors on the
    #: baseline and stressed streams, per-phase error tables and the
    #: per-phase MAE degradation ratios.
    training: dict[str, dict] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"network experiment — {self.num_segments} segments, "
            f"{self.num_junctions} junctions, {self.num_zones} zones",
            "",
            "baseline KPIs",
            self.baseline.render(),
            "",
            f"scenario '{self.scenario_name}' KPIs",
            self.scenario.render(),
            "",
            "deltas (scenario - baseline)",
        ]
        lines.extend(f"  {key:<24} {value:+,.2f}" for key, value in self.deltas.items())
        lines.extend(
            [
                "",
                f"route of {len(self.path)} segments: "
                f"{self.path_travel_baseline_min:.1f} min baseline -> "
                f"{self.path_travel_scenario_min:.1f} min under scenario",
                f"fingerprint {self.fingerprint[:16]}",
            ]
        )
        if self.training:
            lines.extend(
                [
                    "",
                    f"graph-neighbourhood training (k={self.k}, "
                    f"{len(self.targets)} targets)",
                ]
            )
            for name, info in self.training.items():
                lines.append(
                    f"  {name:<10} fingerprint {info['fingerprint']} "
                    f"baseline MAE {info['baseline_overall']['mae']:.2f} km/h"
                )
                for phase, ratio in info["degradation"].items():
                    lines.append(f"    {phase:<8} stress/baseline MAE x{ratio:.2f}")
        return "\n".join(lines)


def build_city(num_days: int, seed: int) -> RoadGraph:
    """The experiment's grid city, sized to the preset.

    Short presets get a 4x4 junction grid (48 segments); longer ones a
    6x6 grid (120 segments) so the KPI aggregates cover a denser
    network.
    """
    size = 4 if num_days <= 10 else 6
    return grid_city(size, size, seed=seed)


def stress_scenario(graph: RoadGraph, total_steps: int) -> Scenario:
    """Incident cascade + stadium pulse + weather front, preset-scaled."""
    pulse_zone = graph.zone_of[graph.target_index]
    return Scenario(
        name="stress",
        elements=(
            IncidentCascade(segment=graph.target_index, start_step=total_steps // 4),
            EventPulse(
                zone=pulse_zone,
                start_step=total_steps // 2,
                duration_steps=min(36, max(8, total_steps // 8)),
            ),
            WeatherFront(
                start_step=(3 * total_steps) // 5,
                duration_steps=min(48, max(8, total_steps // 6)),
            ),
        ),
    )


def train_targets(graph: RoadGraph) -> tuple[int, ...]:
    """The segments the graph models learn to forecast.

    The city target plus three BFS-spread segments, so the stress table
    mixes roads directly under the incident cascade with roads that only
    see it arrive through their neighbourhood rows.
    """
    n = len(graph)
    return tuple(sorted({graph.target_index, n // 6, n // 2, (5 * n) // 6}))


def _all_test_split(num_windows: int) -> SplitIndices:
    """Evaluation-only split: every window is a test window."""
    empty = np.array([], dtype=np.int64)
    return SplitIndices(train=empty, validation=empty, test=np.arange(num_windows))


def _train_and_stress(
    graph: RoadGraph,
    baseline: TrafficSeries,
    stressed: TrafficSeries,
    scenario: Scenario,
    preset,
    seed: int,
    recorder,
) -> tuple[tuple[int, ...], dict[str, dict]]:
    """Fit graph models on the baseline stream; score them under stress.

    Both runs share every random draw (scenario compilation is rng-free),
    so the per-phase error ratio isolates what the scenario itself does
    to the forecast — "does the model see the cascade coming?".
    """
    targets = train_targets(graph)
    config = GraphFeatureConfig(
        layout=graph_window_layout(graph, NEIGHBOURHOOD_HOPS), beta=EXPERIMENT_BETA
    )
    train_ds = GraphTrafficDataset(baseline, config, targets, seed=seed)
    scalers = train_ds.features.scalers
    block = train_ds.features.num_windows // len(targets)
    eval_split = _all_test_split(block)
    eval_sets = {
        name: GraphTrafficDataset(
            series, config, targets, split=eval_split, seed=seed, scalers=scalers
        )
        for name, series in (("baseline", baseline), ("stress", stressed))
    }
    phases = scenario_phases(scenario, baseline.num_steps)

    training: dict[str, dict] = {}
    for kind, adversarial in (("F", False), ("F", True)):
        started = time.perf_counter()
        model = train_model(kind, train_ds, preset, adversarial=adversarial, seed=seed)
        fingerprint = model_fingerprint(model)
        if recorder is not None:
            recorder.event(
                "network_train",
                model=model.name,
                targets=len(targets),
                windows=train_ds.features.num_windows,
                k=NEIGHBOURHOOD_HOPS,
                duration_s=time.perf_counter() - started,
                fingerprint=fingerprint,
            )
        reports = {name: model.evaluate(ds) for name, ds in eval_sets.items()}
        tables = {}
        for name, ds in eval_sets.items():
            indices = ds.subset("test")
            tables[name] = phase_error_table(
                phases,
                ds.features.target_steps[indices],
                model.predict(ds),
                ds.features.targets_kmh[indices],
            )
        degradation = degradation_table(tables["baseline"], tables["stress"])
        if recorder is not None:
            for phase_name, ratio in degradation.items():
                recorder.event(
                    "network_stress",
                    model=model.name,
                    phase=phase_name,
                    samples=tables["stress"][phase_name]["samples"],
                    baseline_mae=tables["baseline"][phase_name]["mae"],
                    stressed_mae=tables["stress"][phase_name]["mae"],
                    degradation=ratio,
                )
        training[model.name] = {
            "fingerprint": fingerprint,
            "baseline_overall": reports["baseline"].overall,
            "stress_overall": reports["stress"].overall,
            "baseline_by_regime": reports["baseline"].by_regime,
            "stress_by_regime": reports["stress"].by_regime,
            "baseline_phases": tables["baseline"],
            "stress_phases": tables["stress"],
            "degradation": degradation,
        }
    return targets, training


def _longest_shortest_path(graph: RoadGraph) -> tuple[int, ...]:
    """The farthest-reaching free-flow shortest path from segment 0."""
    adjacency = graph.adjacency()
    distance, parent = dijkstra(adjacency, 0)
    farthest = max(distance, key=lambda seg: (distance[seg], seg))
    path = [farthest]
    while path[-1] != 0:
        path.append(parent[path[-1]])
    return tuple(reversed(path))


def _path_minutes(graph: RoadGraph, series: TrafficSeries, path: tuple[int, ...]) -> float:
    lengths = np.array([s.length_km for s in graph.segments])
    return traverse_path_minutes(
        lengths, series.speeds, list(path), start_step=0,
        interval_minutes=series.interval_minutes,
    )


def run(preset: str = "medium", seed: int = DEFAULT_SEED) -> NetworkResult:
    """Run the network scenario experiment for one preset."""
    preset = resolve_preset(preset)
    recorder = current_recorder()
    config = SimulationConfig(num_days=preset.num_days, seed=seed)
    graph = build_city(preset.num_days, seed)
    if recorder is not None:
        recorder.event(
            "network_build",
            segments=len(graph),
            junctions=len(graph.junctions),
            zones=graph.num_zones,
            bfs_ordered=graph.is_bfs_ordered(),
        )

    zones = zones_from_graph(graph, seed=seed)
    weights = segment_demand_weights(graph, gravity_od_matrix(zones))
    scenario = stress_scenario(graph, config.total_steps)

    runs: dict[str, TrafficSeries] = {}
    for name, element_set in (("baseline", None), (scenario.name, scenario)):
        started = time.perf_counter()
        runs[name] = NetworkSimulator(
            graph, config, demand_weights=weights, scenario=element_set
        ).run()
        if recorder is not None:
            recorder.event(
                "network_simulate",
                scenario=name,
                segments=len(graph),
                steps=runs[name].num_steps,
                duration_s=time.perf_counter() - started,
            )

    kpis = {name: compute_kpis(graph, series, config) for name, series in runs.items()}
    if recorder is not None:
        for name, k in kpis.items():
            recorder.event(
                "network_kpis",
                scenario=name,
                vkt=k.vkt,
                vht=k.vht,
                mean_speed_kmh=k.mean_speed_kmh,
                congested_share=k.congested_share,
                spillback_onsets=k.spillback_onsets,
            )

    path = _longest_shortest_path(graph)
    fingerprint = hashlib.sha256(
        runs["baseline"].speeds.tobytes() + runs[scenario.name].speeds.tobytes()
    ).hexdigest()

    targets, training = _train_and_stress(
        graph, runs["baseline"], runs[scenario.name], scenario, preset, seed, recorder
    )

    return NetworkResult(
        num_segments=len(graph),
        num_junctions=len(graph.junctions),
        num_zones=graph.num_zones,
        scenario_name=scenario.name,
        baseline=kpis["baseline"],
        scenario=kpis[scenario.name],
        deltas=compare_kpis(kpis["baseline"], kpis[scenario.name]),
        path=path,
        path_travel_baseline_min=_path_minutes(graph, runs["baseline"], path),
        path_travel_scenario_min=_path_minutes(graph, runs[scenario.name], path),
        fingerprint=fingerprint,
        k=NEIGHBOURHOOD_HOPS,
        targets=targets,
        training=training,
    )
