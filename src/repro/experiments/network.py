"""The ``network`` experiment: city-scale scenario engine, end to end.

Exercises the full :mod:`repro.network` stack on a deterministic grid
city:

1. build the BFS-ordered arterial grid and its gravity-model OD demand;
2. simulate a **baseline** day set and a **stress scenario** (incident
   cascade at the target road, stadium-event demand pulse, sweeping
   weather front) at the *same seed* — scenario compilation is rng-free,
   so every random draw is shared and the KPI deltas are causal;
3. score both runs with the network KPIs and report the deltas;
4. route the longest free-flow shortest path through the grid and
   compare its time-expanded travel time under baseline vs scenario
   (:func:`repro.routing.traverse_path_minutes` on explicit paths).

Everything is seeded; ``fingerprint`` hashes both speed fields, and a
test pins that two runs at the same preset/seed agree bitwise.  Emits
``network_build`` / ``network_simulate`` / ``network_kpis`` events when
an ambient recorder is installed.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

import numpy as np

from ..network.demand import gravity_od_matrix, segment_demand_weights, zones_from_graph
from ..network.graph import RoadGraph, grid_city
from ..network.kpis import NetworkKpis, compare_kpis, compute_kpis
from ..network.scenarios import EventPulse, IncidentCascade, Scenario, WeatherFront
from ..network.waves import NetworkSimulator
from ..obs import current_recorder
from ..routing.paths import dijkstra
from ..routing.travel_time import traverse_path_minutes
from ..traffic.types import SimulationConfig, TrafficSeries
from .scenario import DEFAULT_SEED, resolve_preset

__all__ = ["NetworkResult", "build_city", "stress_scenario", "run"]


@dataclass
class NetworkResult:
    """Everything the network experiment produced."""

    num_segments: int
    num_junctions: int
    num_zones: int
    scenario_name: str
    baseline: NetworkKpis
    scenario: NetworkKpis
    deltas: dict[str, float]
    path: tuple[int, ...]
    path_travel_baseline_min: float
    path_travel_scenario_min: float
    fingerprint: str

    def render(self) -> str:
        lines = [
            f"network experiment — {self.num_segments} segments, "
            f"{self.num_junctions} junctions, {self.num_zones} zones",
            "",
            "baseline KPIs",
            self.baseline.render(),
            "",
            f"scenario '{self.scenario_name}' KPIs",
            self.scenario.render(),
            "",
            "deltas (scenario - baseline)",
        ]
        lines.extend(f"  {key:<24} {value:+,.2f}" for key, value in self.deltas.items())
        lines.extend(
            [
                "",
                f"route of {len(self.path)} segments: "
                f"{self.path_travel_baseline_min:.1f} min baseline -> "
                f"{self.path_travel_scenario_min:.1f} min under scenario",
                f"fingerprint {self.fingerprint[:16]}",
            ]
        )
        return "\n".join(lines)


def build_city(num_days: int, seed: int) -> RoadGraph:
    """The experiment's grid city, sized to the preset.

    Short presets get a 4x4 junction grid (48 segments); longer ones a
    6x6 grid (120 segments) so the KPI aggregates cover a denser
    network.
    """
    size = 4 if num_days <= 10 else 6
    return grid_city(size, size, seed=seed)


def stress_scenario(graph: RoadGraph, total_steps: int) -> Scenario:
    """Incident cascade + stadium pulse + weather front, preset-scaled."""
    pulse_zone = graph.zone_of[graph.target_index]
    return Scenario(
        name="stress",
        elements=(
            IncidentCascade(segment=graph.target_index, start_step=total_steps // 4),
            EventPulse(
                zone=pulse_zone,
                start_step=total_steps // 2,
                duration_steps=min(36, max(8, total_steps // 8)),
            ),
            WeatherFront(
                start_step=(3 * total_steps) // 5,
                duration_steps=min(48, max(8, total_steps // 6)),
            ),
        ),
    )


def _longest_shortest_path(graph: RoadGraph) -> tuple[int, ...]:
    """The farthest-reaching free-flow shortest path from segment 0."""
    adjacency = graph.adjacency()
    distance, parent = dijkstra(adjacency, 0)
    farthest = max(distance, key=lambda seg: (distance[seg], seg))
    path = [farthest]
    while path[-1] != 0:
        path.append(parent[path[-1]])
    return tuple(reversed(path))


def _path_minutes(graph: RoadGraph, series: TrafficSeries, path: tuple[int, ...]) -> float:
    lengths = np.array([s.length_km for s in graph.segments])
    return traverse_path_minutes(
        lengths, series.speeds, list(path), start_step=0,
        interval_minutes=series.interval_minutes,
    )


def run(preset: str = "medium", seed: int = DEFAULT_SEED) -> NetworkResult:
    """Run the network scenario experiment for one preset."""
    preset = resolve_preset(preset)
    recorder = current_recorder()
    config = SimulationConfig(num_days=preset.num_days, seed=seed)
    graph = build_city(preset.num_days, seed)
    if recorder is not None:
        recorder.event(
            "network_build",
            segments=len(graph),
            junctions=len(graph.junctions),
            zones=graph.num_zones,
            bfs_ordered=graph.is_bfs_ordered(),
        )

    zones = zones_from_graph(graph, seed=seed)
    weights = segment_demand_weights(graph, gravity_od_matrix(zones))
    scenario = stress_scenario(graph, config.total_steps)

    runs: dict[str, TrafficSeries] = {}
    for name, element_set in (("baseline", None), (scenario.name, scenario)):
        started = time.perf_counter()
        runs[name] = NetworkSimulator(
            graph, config, demand_weights=weights, scenario=element_set
        ).run()
        if recorder is not None:
            recorder.event(
                "network_simulate",
                scenario=name,
                segments=len(graph),
                steps=runs[name].num_steps,
                duration_s=time.perf_counter() - started,
            )

    kpis = {name: compute_kpis(graph, series, config) for name, series in runs.items()}
    if recorder is not None:
        for name, k in kpis.items():
            recorder.event(
                "network_kpis",
                scenario=name,
                vkt=k.vkt,
                vht=k.vht,
                mean_speed_kmh=k.mean_speed_kmh,
                congested_share=k.congested_share,
                spillback_onsets=k.spillback_onsets,
            )

    path = _longest_shortest_path(graph)
    fingerprint = hashlib.sha256(
        runs["baseline"].speeds.tobytes() + runs[scenario.name].speeds.tobytes()
    ).hexdigest()

    return NetworkResult(
        num_segments=len(graph),
        num_junctions=len(graph.junctions),
        num_zones=graph.num_zones,
        scenario_name=scenario.name,
        baseline=kpis["baseline"],
        scenario=kpis[scenario.name],
        deltas=compare_kpis(kpis["baseline"], kpis[scenario.name]),
        path=path,
        path_travel_baseline_min=_path_minutes(graph, runs["baseline"], path),
        path_travel_scenario_min=_path_minutes(graph, runs[scenario.name], path),
        fingerprint=fingerprint,
    )
