"""Experiment registry: id -> runner, for the CLI and the benchmarks."""

from __future__ import annotations

from typing import Callable, Protocol

from . import (
    ablations,
    adv_train,
    continual,
    fig1,
    fig4,
    fig5,
    fig6,
    network,
    robustness,
    table2,
    table3,
)

__all__ = ["EXPERIMENTS", "run_experiment", "Renderable"]


class Renderable(Protocol):
    """Every experiment result can render itself as text."""

    def render(self) -> str: ...


#: Experiment id -> (runner, one-line description).
EXPERIMENTS: dict[str, tuple[Callable[..., Renderable], str]] = {
    "fig1": (fig1.run, "abrupt-change motivating cases (rush / rain / accident)"),
    "fig4": (fig4.run, "Q1: effect of adversarial training, per regime"),
    "fig5": (fig5.run, "Q2: effect of additional data"),
    "table2": (table2.run, "Q2b: non-speed factor ablation for APOTS_H"),
    "table3": (table3.run, "Q3: full model grid incl. Prophet, with gains"),
    "fig6": (fig6.run, "case-study prediction traces"),
    "ablation_loss_ratio": (
        ablations.loss_ratio_ablation,
        "ablation: the alpha:1 MSE-to-adversarial weighting",
    ),
    "ablation_disc_input": (
        ablations.discriminator_input_ablation,
        "ablation: sequence-level vs single-speed discriminator input",
    ),
    "ablation_conditioning": (
        ablations.conditioning_ablation,
        "ablation: conditional (Eq 4) vs unconditional discriminator",
    ),
    "ablation_adjacency": (
        ablations.adjacency_ablation,
        "ablation: number of adjacent roads per side (m)",
    ),
    "ablation_horizon": (
        ablations.horizon_ablation,
        "ablation: prediction offset beta (5-60 minutes)",
    ),
    "robustness": (
        robustness.run,
        "adversarial robustness: attack sweep + serving gate drill",
    ),
    "adv_train": (
        adv_train.run,
        "input-space adversarial re-training: paired robustness sweep before/after",
    ),
    "continual": (
        continual.run,
        "continual learning: drift detect -> retrain -> shadow -> hot-swap -> rollback",
    ),
    "network": (
        network.run,
        "city-scale road-graph scenario engine: baseline vs stress KPIs "
        "+ graph-neighbourhood training with per-phase stress degradation",
    ),
}


def run_experiment(
    name: str, preset: str = "medium", seed: int | None = None, **kwargs
) -> Renderable:
    """Run one experiment by id.

    Extra keyword arguments are forwarded to the runner (the
    ``robustness`` and ``adv_train`` experiments take ``attack``,
    ``epsilon`` and ``workers``).
    """
    try:
        runner, _ = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(f"unknown experiment {name!r}; have {sorted(EXPERIMENTS)}") from None
    kwargs = dict(kwargs, preset=preset)
    if seed is not None:
        kwargs["seed"] = seed
    return runner(**kwargs)
