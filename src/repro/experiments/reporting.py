"""Plain-text rendering of experiment results in the paper's shapes.

Tables print as aligned ASCII grids; figure-style results print as
labelled value series (one row per bar / line of the original figure),
so the terminal output can be compared to the paper at a glance.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "render_table",
    "render_bars",
    "render_series",
    "render_run_log_reference",
    "format_value",
]


def format_value(value, decimals: int = 2) -> str:
    """Format a cell: floats rounded, NaN as '-', everything else str()."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if np.isnan(value):
            return "-"
        return f"{value:.{decimals}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    decimals: int = 2,
) -> str:
    """Render an aligned ASCII table."""
    text_rows = [[format_value(cell, decimals) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def render_bars(
    labels: Sequence[str],
    groups: dict[str, Sequence[float]],
    title: str | None = None,
    width: int = 40,
    decimals: int = 2,
) -> str:
    """Render grouped horizontal bars (the shape of Figs 4 and 5).

    ``groups`` maps a series name (e.g. "F", "Adv F") to one value per
    label (e.g. per regime).
    """
    all_values = [v for values in groups.values() for v in values if not np.isnan(v)]
    peak = max(all_values) if all_values else 1.0
    peak = peak if peak > 0 else 1.0
    name_width = max(len(n) for n in groups)
    label_width = max(len(l) for l in labels)
    parts = [title] if title else []
    for i, label in enumerate(labels):
        for name, values in groups.items():
            value = values[i]
            if np.isnan(value):
                bar, text = "", "-"
            else:
                bar = "#" * max(1, int(round(value / peak * width)))
                text = f"{value:.{decimals}f}"
            parts.append(f"{label.rjust(label_width)}  {name.ljust(name_width)} |{bar} {text}")
        parts.append("")
    return "\n".join(parts).rstrip()


def render_run_log_reference(recorder) -> str:
    """One-line pointer from a rendered result to its obs run log.

    ``recorder`` is a :class:`repro.obs.RunRecorder` (duck-typed here so
    this plain-text module needs no obs import); printed by the CLI
    under each experiment when ``--obs-dir`` is given.
    """
    warnings = recorder.warning_counts
    warning_text = (
        "no warnings"
        if not warnings
        else "warnings: " + ", ".join(f"{code}×{n}" for code, n in sorted(warnings.items()))
    )
    return (
        f"[obs] run {recorder.run_id}: {recorder.num_events} events -> "
        f"{recorder.events_path} ({warning_text})"
    )


def render_series(
    x_labels: Sequence[str],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    decimals: int = 1,
    stride: int = 1,
) -> str:
    """Render aligned numeric series (the shape of Figs 1 and 6)."""
    parts = [title] if title else []
    header = ["time".ljust(6)] + [name.rjust(8) for name in series]
    parts.append("  ".join(header))
    for i in range(0, len(x_labels), stride):
        row = [str(x_labels[i]).ljust(6)]
        for values in series.values():
            value = values[i]
            row.append(format_value(float(value), decimals).rjust(8))
        parts.append("  ".join(row))
    return "\n".join(parts)
