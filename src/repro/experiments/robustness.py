"""Adversarial robustness experiment: sweep + serving-side gate drill.

Two phases, one trained model:

1. **Offline sweep** — attack the test split at ``{0.5, 1, 2} x
   epsilon`` with the requested attack and report clean-vs-attacked
   errors per regime (:func:`repro.attacks.evaluate_robustness`).
2. **Serving drill** — replay the corridor into a live
   :class:`~repro.serving.ForecastService` with a
   :class:`~repro.attacks.defense.PerturbationGate`, then inject the
   *same* attack's perturbed readings for the target's neighbourhood,
   tick by tick, and check the gate quarantines the segment (forecasts
   degrade to naive persistence of the last trusted speed instead of
   serving the model on the poisoned window).

The stream injection reuses the offline attack verbatim: for a stream
tick ``t`` the attacked window is the dataset window whose *last input
column* is step ``t`` (window index ``t - alpha + 1``), and the
injected neighbourhood speeds are that window's last-column adversarial
values — exactly what a compromised feed would report at ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attacks import EvalSlice, PlausibilityBox, build_attack, evaluate_robustness
from ..attacks.defense import GateConfig, PerturbationGate
from ..attacks.report import RobustnessReport
from ..obs import current_recorder
from ..serving import ForecastService, Observation
from .scenario import DEFAULT_SEED, make_dataset, resolve_preset, train_model

__all__ = ["run", "RobustnessResult", "GateDrillResult"]

#: Attack-phase samples per preset (the sweep is O(samples x steps)).
_MAX_SAMPLES = {"smoke": 32, "medium": 128, "paper": 512}

#: Stream ticks attacked during the serving drill.
_ATTACK_TICKS = 12


@dataclass(frozen=True)
class GateDrillResult:
    """Telemetry of the serving-side drill."""

    gate_jump_kmh: float
    warmup_ticks: int
    attacked_ticks: int
    recovery_ticks: int
    warmup_hits: int
    attack_hits: int
    gate_checks: int
    gate_degraded_forecasts: int
    degraded_during_attack: int
    served_model_during_attack: int

    def render(self) -> str:
        attacked_queries = self.attacked_ticks + self.recovery_ticks
        lines = [
            "Serving drill: PerturbationGate vs the same attack "
            f"(jump threshold {self.gate_jump_kmh:.1f} km/h)",
            f"  warmup: {self.warmup_ticks} clean ticks, {self.warmup_hits} gate hits "
            "(false positives on natural jumps)",
            f"  attack: {self.attacked_ticks} poisoned ticks + {self.recovery_ticks} "
            f"recovery ticks, {self.attack_hits} gate hits "
            "(onset/removal jumps are the detectable signature)",
            f"  forecasts: {self.degraded_during_attack}/{attacked_queries} degraded to "
            f"trusted persistence, {self.served_model_during_attack} still model-served",
            f"  totals: {self.gate_checks} readings screened, "
            f"{self.gate_degraded_forecasts} gate-degraded forecasts",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class RobustnessResult:
    """Offline sweep report + serving drill telemetry."""

    report: RobustnessReport
    drill: GateDrillResult
    attack: str
    epsilon_kmh: float

    def render(self) -> str:
        return self.report.render() + "\n\n" + self.drill.render()


def run(
    preset: str = "medium",
    seed: int = DEFAULT_SEED,
    attack: str = "pgd",
    epsilon: float = 5.0,
    workers: int = 1,
) -> RobustnessResult:
    """Run the robustness experiment (CLI: ``--attack``, ``--epsilon``).

    ``workers > 1`` shards the epsilon sweep across processes (same
    numbers, see :func:`repro.attacks.evaluate_robustness`); the gate
    drill stays serial — it exercises a stateful live service.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive (km/h)")
    preset = resolve_preset(preset)
    recorder = current_recorder()
    dataset = make_dataset(preset, seed=seed)
    model = train_model("H", dataset, preset, adversarial=True, seed=seed)

    max_samples = _MAX_SAMPLES.get(preset.name, 128)
    indices = dataset.subset("test")[:max_samples]
    batch = dataset.batch(indices)
    targets_kmh = dataset.features.targets_kmh[indices]
    last_input_kmh = dataset.features.last_input_kmh[indices]
    eval_slice = EvalSlice(batch.images, batch.day_types, batch.targets,
                           targets_kmh, last_input_kmh)
    epsilons = [0.5 * epsilon, epsilon, 2.0 * epsilon]
    report = evaluate_robustness(
        model.predictor,
        model.scalers,
        eval_slice,
        attack_name=attack,
        epsilons_kmh=epsilons,
        model_name=model.name,
        recorder=recorder,
        seed=seed,
        workers=workers,
    )
    drill = _gate_drill(model, dataset, attack, epsilon, seed)
    return RobustnessResult(report=report, drill=drill, attack=attack, epsilon_kmh=epsilon)


def _gate_drill(model, dataset, attack_name: str, epsilon: float, seed: int) -> GateDrillResult:
    """Route the attack through a gated live service; count quarantines."""
    series = dataset.series
    config = dataset.config
    alpha, m = config.alpha, config.m
    target = series.corridor.target_index
    neighbourhood = series.corridor.adjacent_indices(m)

    # A sustained PGD perturbation is a near-constant offset, so its
    # tick-to-tick jumps look natural; the detectable signature is the
    # onset and removal transitions, whose jump approaches epsilon on
    # top of the natural drift.  An operator who knows the plausible
    # threat budget therefore sets the threshold just *below* epsilon —
    # trading some false positives on natural jumps (corridor p90 is
    # ~5.5 km/h; see DESIGN.md §9) for catching the transitions.
    gate_jump = max(4.0, 0.8 * epsilon)
    gate_config = GateConfig(max_jump_kmh=gate_jump)
    gate = PerturbationGate(gate_config)
    service = ForecastService(model, num_segments=series.num_segments, gate=gate)

    warmup_ticks = alpha + 2
    first_attacked = warmup_ticks
    ticks = list(range(first_attacked, first_attacked + _ATTACK_TICKS))
    recovery = list(range(ticks[-1] + 1, ticks[-1] + 1 + gate_config.quarantine_ticks + 2))
    if recovery[-1] >= series.num_steps:
        raise ValueError("series too short for the serving drill")

    # Precompute the attacked stream: one dataset window per attacked
    # tick, its last input column aligned with that tick.
    window_indices = np.asarray([t - alpha + 1 for t in ticks])
    attack_batch = dataset.batch(window_indices)
    constraint = PlausibilityBox(epsilon_kmh=epsilon)
    attack = build_attack(attack_name, model.predictor, model.scalers, constraint, seed=seed)
    attacked = attack.perturb(attack_batch.images, attack_batch.day_types, attack_batch.targets)
    injected_kmh = attacked.speeds_kmh[:, :, -1]  # (ticks, 2m+1)

    def observation(segment: int, step: int, speed: float | None = None) -> Observation:
        return Observation(
            segment_id=segment,
            step=step,
            speed_kmh=float(speed if speed is not None else series.speeds[segment, step]),
            event=float(series.events[segment, step]),
            temperature=float(series.temperature[step]),
            precipitation=float(series.precipitation[step]),
            day_type=tuple(series.day_types[step]),
        )

    for step in range(warmup_ticks):
        service.ingest_many(observation(segment, step) for segment in range(series.num_segments))
    warmup_hits = gate.snapshot()["hits"]

    degraded = 0
    served_model = 0
    for i, step in enumerate(ticks + recovery):
        batch = []
        for segment in range(series.num_segments):
            if segment in neighbourhood and i < len(ticks):
                speed = injected_kmh[i, neighbourhood.index(segment)]
                batch.append(observation(segment, step, speed))
            else:
                batch.append(observation(segment, step))
        service.ingest_many(batch)
        forecast = service.predict(target)
        if forecast.degraded:
            degraded += 1
        else:
            served_model += 1

    snap = service.snapshot()
    gate_snap = snap["gate"]
    return GateDrillResult(
        gate_jump_kmh=gate_jump,
        warmup_ticks=warmup_ticks,
        attacked_ticks=len(ticks),
        recovery_ticks=len(recovery),
        warmup_hits=warmup_hits,
        attack_hits=gate_snap["hits"] - warmup_hits,
        gate_checks=gate_snap["checks"],
        gate_degraded_forecasts=snap["counters"].get("gate_degraded_forecasts", 0),
        degraded_during_attack=degraded,
        served_model_during_attack=served_model,
    )
