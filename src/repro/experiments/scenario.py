"""Shared experiment scaffolding: datasets, presets and model runners.

Every Section V experiment runs on the same simulated corridor and the
same train/validation/test split, so that ablations differ only in the
factor mask or training mode — mirroring the paper's single-dataset
setup.  Simulated series and splits are cached per (days, seed) within
the process because several experiments reuse them.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.config import PRESETS, ScalePreset
from ..core.model import APOTS
from ..obs import current_recorder
from ..data.dataset import TrafficDataset
from ..data.features import FactorMask, FeatureConfig
from ..data.split import SplitIndices, split_windows
from ..traffic.simulator import simulate
from ..traffic.types import SimulationConfig, TrafficSeries

__all__ = [
    "resolve_preset",
    "get_series",
    "get_split",
    "make_dataset",
    "train_model",
    "clear_model_cache",
    "EXPERIMENT_BETA",
]

#: Default master seed for all experiments (the study year).
DEFAULT_SEED = 2018

#: Prediction offset used by the experiment harness: 6 intervals = 30
#: minutes ahead.  The paper leaves beta unstated; on the simulator a
#: 5-minute horizon is so easy that persistence is near-optimal and all
#: methods tie, while at 30 minutes the error magnitudes (and the value
#: of contextual data) match the paper's reported range.  See DESIGN.md.
EXPERIMENT_BETA = 6


def resolve_preset(preset: str | ScalePreset) -> ScalePreset:
    """Accept either a preset name or an explicit ScalePreset."""
    if isinstance(preset, ScalePreset):
        return preset
    try:
        return PRESETS[preset]
    except KeyError:
        raise ValueError(f"unknown preset {preset!r}; have {sorted(PRESETS)}") from None


@lru_cache(maxsize=4)
def _cached_series(num_days: int, seed: int) -> TrafficSeries:
    return simulate(SimulationConfig(num_days=num_days, seed=seed))


def get_series(preset: str | ScalePreset, seed: int = DEFAULT_SEED) -> TrafficSeries:
    """The simulated corridor series for a preset (cached)."""
    preset = resolve_preset(preset)
    return _cached_series(preset.num_days, seed)


@lru_cache(maxsize=8)
def _cached_split(num_windows: int, window_span: int, seed: int) -> SplitIndices:
    return split_windows(num_windows, window_span=window_span, rng=np.random.default_rng(seed))


def get_split(num_windows: int, window_span: int, seed: int = DEFAULT_SEED) -> SplitIndices:
    """A deterministic split shared by all models of an experiment."""
    return _cached_split(num_windows, window_span, seed)


def make_dataset(
    preset: str | ScalePreset,
    mask: FactorMask | None = None,
    features: FeatureConfig | None = None,
    seed: int = DEFAULT_SEED,
) -> TrafficDataset:
    """Dataset for a preset and factor mask, on the shared split.

    All masks share the same window geometry, so the same split indices
    apply and model comparisons see identical train/test samples.
    """
    preset = resolve_preset(preset)
    series = get_series(preset, seed)
    config = features if features is not None else FeatureConfig(beta=EXPERIMENT_BETA)
    if mask is not None:
        config = config.with_mask(mask)
    num_windows = series.num_steps - config.alpha - config.beta + 1
    split = get_split(num_windows, config.alpha + config.beta, seed)
    return TrafficDataset(series, config, split=split, seed=seed)


#: Cross-experiment cache of fitted models.  Several paper artefacts
#: evaluate the *same* trained cell (e.g. the Table III corner models
#: reappear in Figs 4 and 6), so `python -m repro.experiments all`
#: trains each unique configuration once.
_MODEL_CACHE: dict[tuple, APOTS] = {}


def clear_model_cache() -> None:
    """Drop all cached fitted models (tests use this for isolation)."""
    _MODEL_CACHE.clear()


def train_model(
    kind: str,
    dataset: TrafficDataset,
    preset: str | ScalePreset,
    adversarial: bool,
    conditional: bool | None = None,
    seed: int = DEFAULT_SEED,
    use_cache: bool = True,
) -> APOTS:
    """Build and fit one APOTS variant on ``dataset``.

    ``conditional`` defaults to whether the dataset's mask enables any
    additional data: an Adv-only model (Fig 4) plays the unconditional
    Eq 1/2 game, the full model the conditional Eq 4 game.

    Fitted models are cached on (architecture, data configuration,
    preset, seed); pass ``use_cache=False`` to force a retrain.
    """
    if conditional is None:
        conditional = dataset.config.mask.uses_additional
    preset = resolve_preset(preset)
    recorder = current_recorder()
    key = (kind, adversarial, conditional, preset, seed, dataset.config)
    if use_cache and key in _MODEL_CACHE:
        model = _MODEL_CACHE[key]
        if recorder is not None:
            recorder.event("model_fit", name=model.name, preset=preset.name, cached=True)
        return model
    model = APOTS(
        predictor=kind,
        features=dataset.config,
        adversarial=adversarial,
        conditional=conditional,
        preset=preset,
        seed=seed,
    )
    if recorder is not None:
        recorder.event(
            "model_fit",
            name=model.name,
            predictor=kind,
            adversarial=adversarial,
            conditional=conditional,
            preset=preset.name,
            seed=seed,
            cached=False,
        )
    model.fit(dataset)
    if use_cache:
        _MODEL_CACHE[key] = model
    return model
