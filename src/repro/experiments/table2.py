"""Table II — Q2b: impact of each non-speed factor on APOTS_H.

Measures APOTS_H (adversarial + adjacent-speed data) while toggling the
Event / Weather / Time factors one combination at a time:

    S, SE, SW, ST, SEW, SET, SWT, SEWT

Gain is computed against the S configuration (Eq 9).

Expected shape (paper): Time has by far the greatest impact
(ST: 20.12 % gain), Weather a modest one (SW: 3.73 %), Event almost
none (SE: 0 %); SEWT is best overall (22.89 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.features import FactorMask
from ..metrics.stats import gain
from .reporting import render_table
from .scenario import DEFAULT_SEED, make_dataset, train_model

__all__ = ["Table2Result", "run", "CODES"]

CODES = ("S", "SE", "SW", "ST", "SEW", "SET", "SWT", "SEWT")


@dataclass
class Table2Result:
    """MAPE and gain per factor code."""

    mape: dict[str, float] = field(default_factory=dict)

    def gain(self, code: str) -> float:
        """Eq 9 gain of ``code`` relative to the S configuration."""
        return gain(self.mape[code], self.mape["S"])

    def render(self) -> str:
        rows = [
            ["MAPE"] + [self.mape[c] for c in CODES],
            ["Gain %"] + [self.gain(c) for c in CODES],
        ]
        return render_table(
            [""] + list(CODES),
            rows,
            title="Table II: performance of non-speed data for APOTS_H",
        )


def run(preset: str = "medium", seed: int = DEFAULT_SEED, kind: str = "H") -> Table2Result:
    """Train APOTS_{kind} under each Table II factor combination."""
    result = Table2Result()
    for code in CODES:
        mask = FactorMask.table2(code)
        dataset = make_dataset(preset, mask=mask, seed=seed)
        model = train_model(kind, dataset, preset, adversarial=True, conditional=True, seed=seed)
        result.mape[code] = model.evaluate(dataset).mape
    return result
