"""Table III — Q3: the full model grid (Section V-B).

For each predictor in {Prophet, F, L, C, H} and each data configuration
in {speed only, speed + additional data}, trains the model with and
without adversarial training and reports MAE, RMSE and MAPE plus the
paper's three gains (Eq 9):

* column gain — adversarial vs plain, same data;
* row gain — additional data vs speed-only, same training mode;
* diagonal gain — both vs neither.

Prophet has no adversarial mode; its "+Add" variant is given the holiday
calendar (the only additional information Prophet can consume), exactly
as the paper configures it (window = 1).

Expected shape (paper): APOTS_H (speed + add, w/ Adv) is the best cell
overall; adversarial training helps F the most; additional data helps
every neural model; Prophet is an order of magnitude worse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.prophet import Prophet, ProphetForecaster
from ..data.features import FactorMask
from ..metrics.errors import all_errors
from ..metrics.stats import TTestResult, gain, paired_t_test
from .reporting import render_table
from .scenario import DEFAULT_SEED, make_dataset, train_model

__all__ = ["Table3Result", "run", "NEURAL_KINDS", "METRICS"]

NEURAL_KINDS = ("F", "L", "C", "H")
METRICS = ("mae", "rmse", "mape")
DATA_ROWS = ("speed_only", "speed_plus_add")
ADV_COLUMNS = ("without_adv", "with_adv")


@dataclass
class Table3Result:
    """errors[model][data_row][adv_column][metric] plus Prophet cells."""

    errors: dict[str, dict[str, dict[str, dict[str, float]]]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def cell(self, model: str, data_row: str, adv: str, metric: str) -> float:
        return self.errors[model][data_row][adv][metric]

    def column_gain(self, model: str, data_row: str, metric: str) -> float:
        """Adversarial improvement at fixed data (the per-row Gain column)."""
        return gain(
            self.cell(model, data_row, "with_adv", metric),
            self.cell(model, data_row, "without_adv", metric),
        )

    def row_gain(self, model: str, adv: str, metric: str) -> float:
        """Additional-data improvement at fixed training mode."""
        return gain(
            self.cell(model, "speed_plus_add", adv, metric),
            self.cell(model, "speed_only", adv, metric),
        )

    def diagonal_gain(self, model: str, metric: str) -> float:
        """Improvement of (add, adv) over (speed-only, plain)."""
        return gain(
            self.cell(model, "speed_plus_add", "with_adv", metric),
            self.cell(model, "speed_only", "without_adv", metric),
        )

    def best_model(self, metric: str = "mape") -> tuple[str, float]:
        """The winning (model, value) over all full-configuration cells."""
        best_name, best_value = "", float("inf")
        for model in self.errors:
            value = self.cell(model, "speed_plus_add", "with_adv", metric)
            if value < best_value:
                best_name, best_value = model, value
        return best_name, best_value

    @property
    def neural_models(self) -> list[str]:
        """Model names with both training modes (i.e. everything but Prophet)."""
        return [m for m in self.errors if m != "Prophet"]

    def adversarial_t_test(self, metric: str = "mape") -> TTestResult:
        """Paired t-test of w/ vs w/o Adv over the 8 neural cells (t(7))."""
        with_adv, without_adv = [], []
        for model in self.neural_models:
            for data_row in DATA_ROWS:
                with_adv.append(self.cell(model, data_row, "with_adv", metric))
                without_adv.append(self.cell(model, data_row, "without_adv", metric))
        return paired_t_test(np.array(with_adv), np.array(without_adv))

    def additional_data_t_test(self, metric: str = "mape") -> TTestResult:
        """Paired t-test of +Add vs speed-only over the 8 neural cells."""
        plus, only = [], []
        for model in self.neural_models:
            for adv in ADV_COLUMNS:
                plus.append(self.cell(model, "speed_plus_add", adv, metric))
                only.append(self.cell(model, "speed_only", adv, metric))
        return paired_t_test(np.array(plus), np.array(only))

    # ------------------------------------------------------------------
    def render(self) -> str:
        parts = []
        models = list(self.errors)
        for metric in METRICS:
            headers = ["data \\ model"] + [
                f"{m} {c}" for m in models for c in ("w/o", "w/", "gain%")
            ]
            rows = []
            for data_row, label in (("speed_only", "Speed only"), ("speed_plus_add", "Speed+Add")):
                row = [label]
                for model in models:
                    without = self.cell(model, data_row, "without_adv", metric)
                    with_adv = self.cell(model, data_row, "with_adv", metric)
                    if np.isnan(with_adv):
                        row += [without, float("nan"), float("nan")]
                    else:
                        row += [without, with_adv, self.column_gain(model, data_row, metric)]
                rows.append(row)
            parts.append(render_table(headers, rows, title=f"Table III [{metric.upper()}]"))
        best, value = self.best_model()
        parts.append(f"best full model: APOTS_{best} with MAPE {value:.2f}")
        try:
            parts.append(f"w/ vs w/o Adv (neural, MAPE): {self.adversarial_t_test()}")
            parts.append(f"+Add vs speed-only (neural, MAPE): {self.additional_data_t_test()}")
        except ValueError:
            pass  # grids smaller than the full paper table
        return "\n\n".join(parts)


def _prophet_errors(dataset, use_holidays: bool) -> dict[str, float]:
    forecaster = ProphetForecaster(Prophet(use_holidays=use_holidays))
    forecaster.fit(dataset)
    prediction = forecaster.predict(dataset)
    truth, _ = dataset.evaluation_arrays("test")
    return all_errors(prediction, truth)


def run(preset: str = "medium", seed: int = DEFAULT_SEED, kinds=NEURAL_KINDS, include_prophet: bool = True) -> Table3Result:
    """Train the full Table III grid."""
    result = Table3Result()
    speed_only = make_dataset(preset, mask=FactorMask.speed_only(), seed=seed)
    with_add = make_dataset(preset, mask=FactorMask.both(), seed=seed)

    if include_prophet:
        nan = {m: float("nan") for m in METRICS}
        result.errors["Prophet"] = {
            "speed_only": {
                "without_adv": _prophet_errors(speed_only, use_holidays=False),
                "with_adv": dict(nan),
            },
            "speed_plus_add": {
                "without_adv": _prophet_errors(with_add, use_holidays=True),
                "with_adv": dict(nan),
            },
        }

    for kind in kinds:
        result.errors[kind] = {}
        for data_row, dataset in (("speed_only", speed_only), ("speed_plus_add", with_add)):
            cells = {}
            for adv_name, adversarial in (("without_adv", False), ("with_adv", True)):
                model = train_model(kind, dataset, preset, adversarial=adversarial, seed=seed)
                report = model.evaluate(dataset)
                cells[adv_name] = dict(report.overall)
            result.errors[kind][data_row] = cells
    return result
