"""``repro.fleet`` — sharded, load-shedding forecast serving.

Scales :class:`repro.serving.ForecastService` from one process to a
fleet of persistent shard replicas on the
:class:`repro.parallel.WorkerGroup` substrate:

* :mod:`router` — :class:`ShardMap`: deterministic contiguous
  segment → shard partition with halo routing for window neighbours;
* :mod:`replica` — :class:`ShardReplica` / :class:`ReplicaSpec`: the
  full per-shard service living inside each worker process;
* :mod:`admission` — :class:`AdmissionController`: bounded per-shard
  queues for the open-loop path; overflow sheds to naive persistence,
  never drops silently;
* :mod:`fleet` — :class:`ForecastFleet`: halo ingest routing,
  cross-shard ``predict_many`` scatter/gather (bitwise-invariant to
  shard count; ``shards=1`` stays process-free), shard-loss degradation
  and ``fleet_*`` obs events;
* :mod:`loadgen` — :class:`ArrivalSchedule` / :func:`run_open_loop`:
  deterministic open-loop replay of simulator traffic at a rate
  multiplier, for finding the saturation knee.

Layering (enforced by ``tools/check_imports.py``): ``repro.fleet`` may
import ``repro.serving`` / ``repro.parallel`` / ``repro.obs`` (plus the
``repro.attacks.defense`` gate and ``repro.core.zoo`` checkpoint loader
carve-outs); nothing imports ``repro.fleet`` except experiments and
tools.
"""

from .admission import AdmissionController
from .errors import FleetClosedError, FleetError
from .fleet import FleetRequest, ForecastFleet
from .loadgen import ArrivalSchedule, LoadEvent, LoadReport, run_open_loop
from .replica import ReplicaSpec, ShardReplica
from .router import ShardMap

__all__ = [
    "AdmissionController",
    "ArrivalSchedule",
    "FleetClosedError",
    "FleetError",
    "FleetRequest",
    "ForecastFleet",
    "LoadEvent",
    "LoadReport",
    "ReplicaSpec",
    "ShardMap",
    "ShardReplica",
    "run_open_loop",
]
