"""Bounded per-shard admission queues for the open-loop request path.

The fleet answers two kinds of callers.  Closed-loop callers
(:meth:`repro.fleet.ForecastFleet.predict_many`) wait for their answer,
so they are their own back-pressure and bypass admission entirely —
this is also what keeps ``predict_many`` bitwise-invariant to shard
count, since per-shard queue bounds would otherwise trip at different
request counts for different shard layouts.

Open-loop callers (:meth:`~repro.fleet.ForecastFleet.submit` /
:meth:`~repro.fleet.ForecastFleet.drain`, driven by
:mod:`repro.fleet.loadgen`) do *not* wait: arrivals keep coming at the
schedule's pace whether or not the fleet keeps up.  Those requests pass
through here — one bounded FIFO per shard.  A request that finds its
shard's queue full is **shed**: it still gets an immediate naive
persistence answer (never a silent drop), counted and observable as a
``fleet_shed`` event.  Bounding the queue bounds the worst-case
latency of every admitted request, which is the whole admission-control
trade: at saturation you choose between unbounded queueing delay and a
bounded shed rate, and a forecast that arrives after its 5-minute tick
has passed is worth less than an honest naive fallback now.
"""

from __future__ import annotations

from collections import deque
from typing import Any

__all__ = ["AdmissionController"]


class AdmissionController:
    """One bounded FIFO queue per shard, with shed/peak accounting."""

    def __init__(self, num_shards: int, max_queue_per_shard: int):
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        if max_queue_per_shard < 1:
            raise ValueError("max_queue_per_shard must be positive")
        self.num_shards = num_shards
        self.max_queue_per_shard = max_queue_per_shard
        self._queues: list[deque[Any]] = [deque() for _ in range(num_shards)]
        self._admitted = [0] * num_shards
        self._shed = [0] * num_shards
        self._peak_depth = [0] * num_shards

    # ------------------------------------------------------------------
    def try_admit(self, shard: int, item: Any) -> bool:
        """Enqueue ``item`` for ``shard``; False means the caller must shed."""
        queue = self._queues[shard]
        if len(queue) >= self.max_queue_per_shard:
            self._shed[shard] += 1
            return False
        queue.append(item)
        self._admitted[shard] += 1
        if len(queue) > self._peak_depth[shard]:
            self._peak_depth[shard] = len(queue)
        return True

    def drain_shard(self, shard: int) -> list[Any]:
        """Pop everything queued for ``shard``, in admission order."""
        queue = self._queues[shard]
        items = list(queue)
        queue.clear()
        return items

    # ------------------------------------------------------------------
    def depth(self, shard: int) -> int:
        return len(self._queues[shard])

    def depths(self) -> list[int]:
        return [len(queue) for queue in self._queues]

    def snapshot(self) -> dict:
        return {
            "max_queue_per_shard": self.max_queue_per_shard,
            "queue_depths": self.depths(),
            "peak_queue_depths": list(self._peak_depth),
            "admitted": list(self._admitted),
            "shed_at_admission": list(self._shed),
        }
