"""Exception hierarchy of the fleet layer.

Deliberately small: most fleet-level failures are *not* exceptions.
A lost replica degrades its shard to naive persistence (observable as a
``fleet_shard_lost`` event and shed forecasts), and an overflowing
admission queue sheds requests rather than raising — the fleet's whole
point is to keep answering.  Errors are reserved for caller bugs
(using a closed fleet, killing a replica that does not exist) and for
feed conditions the serving layer already treats as hard errors
(:class:`repro.serving.StaleObservationError` and friends re-raise
unchanged through the fleet).
"""

from __future__ import annotations

__all__ = ["FleetError", "FleetClosedError"]


class FleetError(RuntimeError):
    """Base class for all fleet-layer errors."""


class FleetClosedError(FleetError):
    """An operation was attempted on a fleet after :meth:`close`."""
