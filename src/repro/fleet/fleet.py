"""The :class:`ForecastFleet` facade: sharded, load-shedding serving.

One fleet shards a corridor across ``shards`` persistent replica
processes (each a full :class:`repro.serving.ForecastService`, built
from the same zoo checkpoint inside a
:class:`repro.parallel.WorkerGroup` of one), routes ``ingest`` /
``predict`` by the deterministic :class:`repro.fleet.router.ShardMap`,
and scatter/gathers cross-shard ``predict_many`` calls with the group's
pipelined ``start_call`` / ``finish_call`` so every shard computes
concurrently.

Determinism contract (pinned by ``tests/fleet`` and
``tools/fleet_smoke.py``): with full-corridor per-tick ingestion,
``predict_many`` results are **bitwise identical across shard counts**
— ``shards=1`` runs process-free in the parent (the
:mod:`repro.parallel` convention), ``shards=N`` splits the same batch
across replicas whose padded micro-batches are already pinned
batch/single-equivalent, and halo ingestion keeps every owned window's
``2m + 1`` neighbour rows complete at shard boundaries.

Failure and overload policy — *shed to naive persistence, never drop
silently*:

* a replica that dies mid-call is detected on the next pipe round trip,
  marked lost (``fleet_shard_lost`` event), and every subsequent
  request for its segments is answered with degraded naive persistence
  from the parent's own last-speed bookkeeping while the other shards
  keep serving at full quality;
* open-loop requests (:meth:`submit` / :meth:`drain`) pass through the
  bounded per-shard :class:`repro.fleet.admission.AdmissionController`;
  a request that finds its queue full is shed the same way, counted,
  and observable as a ``fleet_shed`` event.  Closed-loop
  :meth:`predict_many` bypasses admission — the caller *is* the
  back-pressure — which is also what keeps it shard-count invariant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..attacks.defense import GateConfig, PerturbationGate
from ..core.zoo import load_model, model_fingerprint
from ..obs.telemetry import Telemetry
from ..parallel.group import WorkerGroup, WorkerGroupError
from ..serving.errors import IncompleteWindowError, StaleObservationError, StreamGapError
from ..serving.service import Forecast, ForecastService
from ..serving.state import Observation
from .admission import AdmissionController
from .errors import FleetClosedError, FleetError
from .replica import ReplicaSpec
from .router import ShardMap

__all__ = ["FleetRequest", "ForecastFleet"]


@dataclass
class FleetRequest:
    """One open-loop request ticket (see :meth:`ForecastFleet.submit`).

    ``arrival_s`` and ``completed_s`` are in the fleet clock's domain;
    a shed ticket resolves immediately with a degraded forecast and a
    ``shed_reason``.
    """

    segment_id: int
    horizon_steps: int
    use_cache: bool
    arrival_s: float
    shard: int
    forecast: Forecast | None = None
    completed_s: float | None = None
    shed_reason: str | None = None

    @property
    def done(self) -> bool:
        return self.forecast is not None

    @property
    def shed(self) -> bool:
        return self.shed_reason is not None


class ForecastFleet:
    """Sharded forecast serving for one corridor and one checkpoint.

    Parameters
    ----------
    checkpoint_dir:
        A :mod:`repro.core.zoo` format-v2 checkpoint directory; every
        replica loads the same weights and scalers from it.
    num_segments:
        Corridor length the observation stream indexes into.
    shards:
        Replica count.  ``shards=1`` hosts the service in-process (no
        worker processes at all); ``shards>=2`` spawns one single-worker
        :class:`WorkerGroup` per shard so one replica's death never
        takes down another.
    shard_starts:
        Optional explicit cut positions for the contiguous partition
        (``starts[0] == 0``, strictly increasing) — how graph-aware
        partitions (``repro.network.sharding.partition_starts``) reach
        the fleet as plain data.  ``None`` keeps the balanced layout.
    gate_config:
        Optional :class:`repro.attacks.defense.GateConfig`; each replica
        builds its own :class:`PerturbationGate` over its halo stream.
    max_queue_per_shard:
        Admission bound for the open-loop :meth:`submit` path.
    max_batch_size, cache_capacity, cache_ttl_seconds, interval_minutes,
    store_capacity:
        Forwarded to every replica's :class:`ForecastService`.
    recorder:
        Optional :class:`repro.obs.RunRecorder`; the fleet emits
        schema-validated ``fleet_*`` events (shard loss, sheds, drains).
    clock:
        Injectable monotonic clock shared by admission latency
        accounting and the load generator.
    """

    def __init__(
        self,
        checkpoint_dir: str | Path,
        num_segments: int,
        *,
        shards: int = 1,
        shard_starts: tuple[int, ...] | None = None,
        gate_config: GateConfig | None = None,
        max_queue_per_shard: int = 256,
        max_batch_size: int = 64,
        cache_capacity: int = 4096,
        cache_ttl_seconds: float = 300.0,
        interval_minutes: int = 5,
        store_capacity: int | None = None,
        recorder=None,
        context: str | Any | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        model = load_model(checkpoint_dir)
        self.features = model.features
        self.num_segments = num_segments
        self.shard_map = ShardMap(num_segments, shards, starts=shard_starts)
        # Graph-neighbourhood checkpoints carry a row layout (duck-typed;
        # the fleet layer cannot import repro.data).  A corridor halo is a
        # contiguous ±m range, but a k-hop halo straddles shard cuts
        # arbitrarily, so we precompute each observation's covering shards
        # from the layout: shard r needs segment s iff some segment t it
        # owns reads row s — and since undirected k-hop distance is
        # symmetric, that is exactly t ∈ valid_rows(s).
        layout = getattr(self.features, "layout", None)
        if layout is not None and layout.num_segments != num_segments:
            raise ValueError(
                f"checkpoint layout covers {layout.num_segments} segments, "
                f"fleet has {num_segments}"
            )
        self._covering_shards: list[tuple[int, ...]] | None = None
        if layout is not None and shards > 1:
            self._covering_shards = [
                tuple(sorted({self.shard_map.shard_of(t) for t in layout.valid_rows(seg)}))
                for seg in range(num_segments)
            ]
        self.admission = AdmissionController(shards, max_queue_per_shard)
        self.telemetry = Telemetry()
        self._recorder = recorder
        self._clock = clock
        self._closed = False
        self._lost: dict[int, str] = {}
        # Parent-side naive-persistence bookkeeping: shed answers must
        # not depend on any replica being alive.
        self._last_speed = np.full(num_segments, np.nan, dtype=np.float64)
        self._latest_step = np.full(num_segments, -1, dtype=np.int64)

        service_kwargs = dict(
            max_batch_size=max_batch_size,
            cache_capacity=cache_capacity,
            cache_ttl_seconds=cache_ttl_seconds,
            interval_minutes=interval_minutes,
            store_capacity=store_capacity,
        )
        if shards == 1:
            gate = PerturbationGate(gate_config) if gate_config is not None else None
            self._local: ForecastService | None = ForecastService(
                model,
                num_segments,
                gate=gate,
                segment_range=(0, num_segments),
                **service_kwargs,
            )
            self._groups: list[WorkerGroup] = []
        else:
            self._local = None
            self._groups = []
            try:
                for shard in range(shards):
                    spec = ReplicaSpec(
                        checkpoint_dir=str(checkpoint_dir),
                        num_segments=num_segments,
                        shard=shard,
                        num_shards=shards,
                        shard_starts=self.shard_map.starts,
                        gate_config=gate_config,
                        **service_kwargs,  # type: ignore[arg-type]
                    )
                    self._groups.append(WorkerGroup(spec, workers=1, context=context))
            except BaseException:
                for group in self._groups:
                    group.close()
                raise

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.shard_map.num_shards

    @property
    def clock(self) -> Callable[[], float]:
        return self._clock

    @property
    def lost_shards(self) -> list[int]:
        return sorted(self._lost)

    def _check_open(self) -> None:
        if self._closed:
            raise FleetClosedError("fleet is closed")

    def _emit(self, kind: str, **fields) -> None:
        if self._recorder is not None:
            self._recorder.event(kind, **fields)

    # ------------------------------------------------------------------
    # Scatter plumbing
    # ------------------------------------------------------------------
    def _mark_lost(self, shard: int, method: str, error: WorkerGroupError) -> None:
        if shard in self._lost:
            return
        reason = str(error).splitlines()[0]
        self._lost[shard] = reason
        self.telemetry.counter("shards_lost").inc()
        self._emit("fleet_shard_lost", shard=shard, method=method, reason=reason)

    def _scatter_call(self, calls: dict[int, tuple[str, tuple]]) -> dict[int, Any]:
        """Start every shard's call before gathering any reply.

        Returns shard → result, with ``None`` for shards that were (or
        became) lost; the caller sheds those.
        """
        results: dict[int, Any] = {}
        started: list[int] = []
        for shard, (method, args) in calls.items():
            if shard in self._lost:
                results[shard] = None
                continue
            try:
                self._groups[shard].start_call(0, method, args)
            except WorkerGroupError as error:
                self._mark_lost(shard, method, error)
                results[shard] = None
            else:
                started.append(shard)
        for shard in started:
            method = calls[shard][0]
            try:
                results[shard] = self._groups[shard].finish_call(0)
            except WorkerGroupError as error:
                self._mark_lost(shard, method, error)
                results[shard] = None
        return results

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _validate_stream(self, observations: list[Observation]) -> None:
        """Reject stale/gapped observations *before* any state mutates.

        Stricter than the incremental per-observation validation of a
        single service (which ingests a batch's prefix before raising):
        the fleet validates the whole batch against its bookkeeping
        first, so parent and every replica stay consistent on error.
        """
        latest: dict[int, int] = {}
        for obs in observations:
            self.shard_map.check_segment(obs.segment_id)
            seg = obs.segment_id
            previous = latest.get(seg, int(self._latest_step[seg]))
            if previous >= 0:
                if obs.step <= previous:
                    raise StaleObservationError(
                        f"segment {seg}: observation for step {obs.step} arrived "
                        f"after step {previous} was already ingested (out of order)"
                    )
                if obs.step > previous + 1:
                    raise StreamGapError(
                        f"segment {seg}: stream skipped steps "
                        f"{previous + 1}..{obs.step - 1}; call reset_segment({seg}) "
                        f"to restart the stream"
                    )
            latest[seg] = obs.step

    def _shards_for(self, segment_id: int):
        """Shards whose replicas need this segment's observations."""
        if self._covering_shards is not None:
            return self._covering_shards[segment_id]
        return self.shard_map.shards_for_observation(segment_id, self.features.m)

    def ingest(self, observation: Observation) -> None:
        self.ingest_many([observation])

    def ingest_many(self, observations: Iterable[Observation]) -> int:
        """Route one batch of observations to every covering shard's halo."""
        self._check_open()
        observations = list(observations)
        if not observations:
            return 0
        self._validate_stream(observations)
        per_shard: dict[int, list[Observation]] = {}
        for obs in observations:
            for shard in self._shards_for(obs.segment_id):
                per_shard.setdefault(shard, []).append(obs)
        # Parent bookkeeping first: shed answers must stay fresh even if
        # a replica dies inside this very scatter.
        for obs in observations:
            self._last_speed[obs.segment_id] = obs.speed_kmh
            self._latest_step[obs.segment_id] = obs.step
        self.telemetry.counter("observations").inc(len(observations))
        if self._local is not None:
            self._local.ingest_many(observations)
        else:
            self._scatter_call(
                {shard: ("ingest_batch", (batch,)) for shard, batch in per_shard.items()}
            )
        return len(observations)

    def reset_segment(self, segment_id: int) -> None:
        """Drop a segment's buffered stream everywhere (gap recovery)."""
        self._check_open()
        self.shard_map.check_segment(segment_id)
        self._latest_step[segment_id] = -1
        self._last_speed[segment_id] = np.nan
        if self._local is not None:
            self._local.store.reset_segment(segment_id)
        else:
            self._scatter_call(
                {shard: ("reset_segment", (segment_id,)) for shard in self._shards_for(segment_id)}
            )

    # ------------------------------------------------------------------
    # Prediction: closed-loop scatter/gather
    # ------------------------------------------------------------------
    def _resolve_horizon(self, horizon_steps: int | None) -> int:
        horizon = (
            horizon_steps if horizon_steps is not None else self.features.beta
        )
        if horizon < 1:
            raise ValueError("horizon_steps must be at least 1")
        return horizon

    def _shed_forecast(self, segment_id: int, horizon: int, reason: str) -> Forecast:
        latest = int(self._latest_step[segment_id])
        return Forecast(
            segment_id=segment_id,
            target_step=(latest if latest >= 0 else 0) + horizon,
            horizon_steps=horizon,
            speed_kmh=float(self._last_speed[segment_id]),
            source="naive",
            degraded=True,
            degraded_reason=f"load shed: {reason}",
        )

    def _check_served_before(self, segment_id: int) -> None:
        self.shard_map.check_segment(segment_id)
        if int(self._latest_step[segment_id]) < 0:
            raise IncompleteWindowError(
                f"segment {segment_id} has no observations yet"
            )

    def predict_many(
        self,
        segment_ids: Sequence[int],
        horizon_steps: int | None = None,
        use_cache: bool = True,
    ) -> list[Forecast]:
        """Forecast many segments with one scatter/gather across shards.

        Results come back in request order.  Segments owned by a lost
        shard are shed to naive persistence (never dropped); everything
        else is answered by its owner replica exactly as a
        single-process :class:`ForecastService` would answer it.
        """
        self._check_open()
        started = time.perf_counter()
        horizon = self._resolve_horizon(horizon_steps)
        segment_ids = [int(s) for s in segment_ids]
        self.telemetry.counter("offered_requests").inc(len(segment_ids))
        for segment_id in segment_ids:
            self._check_served_before(segment_id)

        results: list[Forecast | None] = [None] * len(segment_ids)
        shed_counts: dict[int, int] = {}
        if self._local is not None:
            forecasts = self._local.predict_many(
                segment_ids, horizon_steps=horizon, use_cache=use_cache
            )
            results = list(forecasts)
        else:
            positions: dict[int, list[int]] = {}
            for position, segment_id in enumerate(segment_ids):
                positions.setdefault(self.shard_map.shard_of(segment_id), []).append(
                    position
                )
            gathered = self._scatter_call(
                {
                    shard: (
                        "predict_batch",
                        ([segment_ids[p] for p in shard_positions], horizon, use_cache),
                    )
                    for shard, shard_positions in positions.items()
                }
            )
            for shard, shard_positions in positions.items():
                forecasts = gathered[shard]
                if forecasts is None:
                    for position in shard_positions:
                        results[position] = self._shed_forecast(
                            segment_ids[position], horizon, f"shard {shard} lost"
                        )
                    shed_counts[shard] = len(shard_positions)
                else:
                    for position, forecast in zip(shard_positions, forecasts):
                        results[position] = forecast
        shed_total = sum(shed_counts.values())
        self.telemetry.counter("served_requests").inc(len(segment_ids) - shed_total)
        if shed_total:
            self.telemetry.counter("shed_requests").inc(shed_total)
            self.telemetry.counter("shed_shard_lost").inc(shed_total)
            for shard, count in shed_counts.items():
                self._emit(
                    "fleet_shed",
                    shard=shard,
                    count=count,
                    queue_depth=self.admission.depth(shard),
                    reason=f"shard {shard} lost",
                )
        self.telemetry.histogram("predict_latency_ms").observe(
            (time.perf_counter() - started) * 1e3
        )
        return results  # type: ignore[return-value]

    def predict(
        self, segment_id: int, horizon_steps: int | None = None, use_cache: bool = True
    ) -> Forecast:
        return self.predict_many([segment_id], horizon_steps, use_cache)[0]

    # ------------------------------------------------------------------
    # Prediction: open-loop submit/drain with admission control
    # ------------------------------------------------------------------
    def submit(
        self,
        segment_ids: Sequence[int],
        horizon_steps: int | None = None,
        use_cache: bool = True,
        arrival_s: float | None = None,
    ) -> list[FleetRequest]:
        """Enqueue open-loop requests; sheds immediately on overflow.

        Returns one :class:`FleetRequest` per segment in request order.
        Tickets for lost shards or full queues resolve immediately with
        a degraded naive forecast; the rest resolve on a later
        :meth:`drain`.
        """
        self._check_open()
        horizon = self._resolve_horizon(horizon_steps)
        arrival = arrival_s if arrival_s is not None else self._clock()
        tickets: list[FleetRequest] = []
        shed_full: dict[int, int] = {}
        shed_lost: dict[int, int] = {}
        for segment_id in segment_ids:
            segment_id = int(segment_id)
            self._check_served_before(segment_id)
            shard = self.shard_map.shard_of(segment_id)
            ticket = FleetRequest(segment_id, horizon, use_cache, arrival, shard)
            if shard in self._lost:
                self._resolve_shed(ticket, f"shard {shard} lost")
                shed_lost[shard] = shed_lost.get(shard, 0) + 1
            elif not self.admission.try_admit(shard, ticket):
                self._resolve_shed(
                    ticket,
                    f"shard {shard} queue full "
                    f"({self.admission.max_queue_per_shard} pending)",
                )
                shed_full[shard] = shed_full.get(shard, 0) + 1
            tickets.append(ticket)
        self.telemetry.counter("offered_requests").inc(len(tickets))
        for reason_counts, counter, reason in (
            (shed_full, "shed_queue_full", "queue full"),
            (shed_lost, "shed_shard_lost", "shard lost"),
        ):
            for shard, count in reason_counts.items():
                self.telemetry.counter(counter).inc(count)
                self._emit(
                    "fleet_shed",
                    shard=shard,
                    count=count,
                    queue_depth=self.admission.depth(shard),
                    reason=reason,
                )
        total_shed = sum(shed_full.values()) + sum(shed_lost.values())
        if total_shed:
            self.telemetry.counter("shed_requests").inc(total_shed)
        return tickets

    def _resolve_shed(self, ticket: FleetRequest, reason: str) -> None:
        ticket.forecast = self._shed_forecast(
            ticket.segment_id, ticket.horizon_steps, reason
        )
        ticket.shed_reason = reason
        ticket.completed_s = self._clock()

    def drain(self) -> list[FleetRequest]:
        """Process everything admitted since the last drain.

        One scatter/gather round per distinct ``(horizon, use_cache)``
        combination; tickets of a shard that dies mid-drain are shed.
        Returns the tickets resolved by this call.
        """
        self._check_open()
        started = time.perf_counter()
        per_shard: dict[int, list[FleetRequest]] = {}
        max_depth = 0
        for shard in range(self.num_shards):
            depth = self.admission.depth(shard)
            if depth == 0:
                continue
            max_depth = max(max_depth, depth)
            self.telemetry.histogram("queue_depth_at_drain").observe(depth)
            per_shard[shard] = self.admission.drain_shard(shard)
        if not per_shard:
            return []

        resolved: list[FleetRequest] = []
        served = 0
        shed = 0
        rounds: dict[tuple[int, bool], dict[int, list[FleetRequest]]] = {}
        for shard, tickets in per_shard.items():
            for ticket in tickets:
                key = (ticket.horizon_steps, ticket.use_cache)
                rounds.setdefault(key, {}).setdefault(shard, []).append(ticket)
        for (horizon, use_cache), batches in rounds.items():
            if self._local is not None:
                tickets = batches.get(0, [])
                forecasts = self._local.predict_many(
                    [t.segment_id for t in tickets],
                    horizon_steps=horizon,
                    use_cache=use_cache,
                )
                gathered: dict[int, Any] = {0: forecasts}
            else:
                gathered = self._scatter_call(
                    {
                        shard: (
                            "predict_batch",
                            ([t.segment_id for t in tickets], horizon, use_cache),
                        )
                        for shard, tickets in batches.items()
                    }
                )
            completion = self._clock()
            for shard, tickets in batches.items():
                forecasts = gathered[shard]
                if forecasts is None:
                    for ticket in tickets:
                        self._resolve_shed(ticket, f"shard {shard} lost")
                    shed += len(tickets)
                    self.telemetry.counter("shed_shard_lost").inc(len(tickets))
                    self.telemetry.counter("shed_requests").inc(len(tickets))
                    self._emit(
                        "fleet_shed",
                        shard=shard,
                        count=len(tickets),
                        queue_depth=0,
                        reason=f"shard {shard} lost",
                    )
                else:
                    for ticket, forecast in zip(tickets, forecasts):
                        ticket.forecast = forecast
                        ticket.completed_s = completion
                        self.telemetry.histogram("request_latency_ms").observe(
                            (completion - ticket.arrival_s) * 1e3
                        )
                    served += len(tickets)
                resolved.extend(tickets)
        self.telemetry.counter("served_requests").inc(served)
        duration_s = time.perf_counter() - started
        self.telemetry.histogram("drain_duration_ms").observe(duration_s * 1e3)
        self._emit(
            "fleet_drain",
            served=served,
            shed=shed,
            max_queue_depth=max_depth,
            duration_s=duration_s,
        )
        return resolved

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def swap_checkpoint(self, directory: str | Path) -> str:
        """Hot-swap every live replica to a new checkpoint; returns its fingerprint.

        The checkpoint is validated parent-side first (feature geometry
        against the fleet's, scaler presence), then broadcast to every
        non-lost shard in one scatter/gather round.  The broadcast runs
        between batches on the fleet's single-threaded control loop, so
        no in-flight ``predict_many`` batch ever mixes champions: a batch
        is answered entirely by whichever model each replica holds when
        its call starts, and after this method returns every live shard
        holds the new weights.  A replica that dies mid-swap is marked
        lost exactly like any other scatter casualty (its segments shed
        to naive persistence).  Emits one ``fleet_swap`` event.
        """
        self._check_open()
        model = load_model(directory)
        if model.features != self.features:
            raise ValueError(
                f"checkpoint feature geometry {model.features} does not match "
                f"the fleet geometry {self.features}"
            )
        if model.scalers is None:
            raise ValueError(
                "checkpoint lacks scaler state (format v1?); fleet serving "
                "needs the fitted scalers to transform raw observations"
            )
        fingerprint = model_fingerprint(model)
        if self._local is not None:
            self._local.swap_checkpoint(directory)
            swapped = 1
        else:
            gathered = self._scatter_call(
                {
                    shard: ("swap_checkpoint", (str(directory),))
                    for shard in range(self.num_shards)
                    if shard not in self._lost
                }
            )
            swapped = sum(1 for result in gathered.values() if result is not None)
        self.telemetry.counter("checkpoint_swaps").inc()
        self._emit("fleet_swap", shards_swapped=swapped, fingerprint=fingerprint)
        return fingerprint

    def kill_replica(self, shard: int, exit_code: int = 21) -> None:
        """Fault-injection hook: hard-kill one replica process.

        The loss is *not* marked here — discovery happens on the next
        call that touches the shard, exactly as a real crash would be
        discovered.  Raises :class:`FleetError` on a process-free
        (``shards=1``) fleet.
        """
        self._check_open()
        if not self._groups:
            raise FleetError(
                "shards=1 runs process-free in the parent; there is no replica "
                "process to kill"
            )
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} outside fleet 0..{self.num_shards - 1}")
        group = self._groups[shard]
        try:
            group.start_call(0, "die", (exit_code,))
        except WorkerGroupError:
            return  # already dead; discovery still happens on next use
        deadline = time.monotonic() + 5.0
        while any(group.alive()) and time.monotonic() < deadline:
            time.sleep(0.01)

    def snapshot(self) -> dict:
        """Fleet-wide operator view: parent telemetry + replica snapshots."""
        self._check_open()
        snap: dict[str, Any] = {
            "shards": self.num_shards,
            "segments": self.num_segments,
            "lost_shards": self.lost_shards,
            "telemetry": self.telemetry.snapshot(),
            "admission": self.admission.snapshot(),
        }
        if self._local is not None:
            replicas: list[dict | None] = [self._local.snapshot()]
        else:
            gathered = self._scatter_call(
                {
                    shard: ("snapshot", ())
                    for shard in range(self.num_shards)
                    if shard not in self._lost
                }
            )
            replicas = [gathered.get(shard) for shard in range(self.num_shards)]
        snap["replicas"] = replicas
        snap["gate_quarantined_total"] = sum(
            r.get("gate_quarantined_count", 0) for r in replicas if r is not None
        )
        return snap

    def close(self) -> None:
        """Shut every replica down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for group in self._groups:
            group.close()

    def __enter__(self) -> "ForecastFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
