"""Deterministic open-loop load generation against a forecast fleet.

An **open-loop** load test replays a pre-computed arrival schedule at
its own pace: arrivals never wait for completions, so when the fleet
falls behind, queues grow, latency climbs and the admission controller
starts shedding — exactly the saturation behaviour a closed-loop
benchmark (which self-throttles) can never show.  Sweeping the ``rate``
multiplier locates the saturation knee: the offered rate where served
QPS stops tracking offered QPS and the shed rate lifts off zero.

Determinism contract: an :class:`ArrivalSchedule` is a pure function of
``(seed, rate)`` plus the replayed series and the shape knobs — one
seeded generator draws every query count, burst size, segment choice
and intra-tick offset, and ``rate`` only rescales time.  Two runs with
the same ``(seed, rate)`` submit byte-identical request streams
(pinned via :meth:`ArrivalSchedule.fingerprint`); what the machine then
*does* with that stream (latency, shed rate) is measured and recorded,
never asserted.

Clock discipline: :func:`run_open_loop` uses the **fleet's** injectable
clock for scheduling and latency accounting, so tests drive the whole
loop with a fake clock and stay deterministic, while benchmarks use the
real one.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

import numpy as np

from ..serving.state import Observation
from .fleet import FleetRequest, ForecastFleet

__all__ = ["LoadEvent", "ArrivalSchedule", "LoadReport", "run_open_loop"]


@dataclass(frozen=True)
class LoadEvent:
    """One scheduled arrival: a tick's ingest batch or a query burst."""

    time_s: float
    step: int
    kind: str  # "ingest" | "predict"
    segment_ids: tuple[int, ...]


@dataclass(frozen=True)
class ArrivalSchedule:
    """A fully materialised, replayable arrival sequence."""

    series: object = field(repr=False)
    seed: int
    rate: float
    tick_seconds: float
    start_step: int
    ticks: int
    events: tuple[LoadEvent, ...] = field(repr=False)

    @classmethod
    def from_series(
        cls,
        series,
        *,
        seed: int,
        rate: float,
        ticks: int,
        start_step: int = 0,
        queries_per_tick: float = 8.0,
        burst_max: int = 4,
        tick_seconds: float | None = None,
    ) -> "ArrivalSchedule":
        """Build the deterministic schedule for one replay window.

        ``tick_seconds`` is the *native* duration of one simulator tick
        (defaults to the series' real cadence, e.g. 300 s for 5-minute
        data); ``rate`` is the replay multiplier, so wall time per tick
        is ``tick_seconds / rate``.  Query bursts model dashboard users:
        Poisson-many queries per tick, grouped into bursts of up to
        ``burst_max`` segments drawn from a centre-weighted popularity
        profile (middle segments are the model-servable ones; edges
        degrade to naive and exercise that path too).
        """
        if rate <= 0:
            raise ValueError("rate must be positive")
        if ticks < 1:
            raise ValueError("ticks must be positive")
        if burst_max < 1:
            raise ValueError("burst_max must be positive")
        if queries_per_tick < 0:
            raise ValueError("queries_per_tick must be non-negative")
        if tick_seconds is None:
            tick_seconds = float(series.interval_minutes) * 60.0
        if start_step < 0 or start_step + ticks > series.num_steps:
            raise ValueError(
                f"replay window [{start_step}, {start_step + ticks}) outside "
                f"series of {series.num_steps} steps"
            )
        num_segments = series.num_segments
        # Centre-weighted popularity: deterministic triangle profile.
        distance_from_edge = np.minimum(
            np.arange(num_segments), np.arange(num_segments)[::-1]
        )
        popularity = (1.0 + distance_from_edge) / (1.0 + distance_from_edge).sum()

        rng = np.random.default_rng(seed)
        tick_dt = tick_seconds / rate
        events: list[LoadEvent] = []
        for i in range(ticks):
            step = start_step + i
            tick_start = i * tick_dt
            events.append(
                LoadEvent(tick_start, step, "ingest", tuple(range(num_segments)))
            )
            remaining = int(rng.poisson(queries_per_tick))
            bursts: list[LoadEvent] = []
            while remaining > 0:
                size = min(remaining, int(rng.integers(1, burst_max + 1)))
                segments = rng.choice(num_segments, size=size, p=popularity)
                offset = float(rng.random()) * tick_dt
                bursts.append(
                    LoadEvent(
                        tick_start + offset,
                        step,
                        "predict",
                        tuple(int(s) for s in segments),
                    )
                )
                remaining -= size
            events.extend(sorted(bursts, key=lambda e: e.time_s))
        return cls(
            series=series,
            seed=seed,
            rate=float(rate),
            tick_seconds=float(tick_seconds),
            start_step=start_step,
            ticks=ticks,
            events=tuple(events),
        )

    # ------------------------------------------------------------------
    @property
    def duration_s(self) -> float:
        return self.ticks * self.tick_seconds / self.rate

    @property
    def num_queries(self) -> int:
        return sum(len(e.segment_ids) for e in self.events if e.kind == "predict")

    @property
    def offered_qps(self) -> float:
        return self.num_queries / self.duration_s

    def fingerprint(self) -> str:
        """Digest of the arrival structure (times, steps, kinds, segments)."""
        digest = hashlib.blake2b(digest_size=16)
        for event in self.events:
            digest.update(struct.pack("<dq", event.time_s, event.step))
            digest.update(event.kind.encode())
            digest.update(np.asarray(event.segment_ids, dtype=np.int64).tobytes())
        return digest.hexdigest()


@dataclass(frozen=True)
class LoadReport:
    """Measured outcome of one open-loop replay."""

    rate: float
    offered: int
    served: int
    shed: int
    shed_rate: float
    duration_s: float
    offered_qps: float
    served_qps: float
    p50_ms: float
    p99_ms: float
    max_queue_depth: int
    lost_shards: tuple[int, ...]

    def render(self) -> str:
        return (
            f"rate {self.rate:g}x: offered {self.offered} ({self.offered_qps:.1f} qps), "
            f"served {self.served} ({self.served_qps:.1f} qps), "
            f"shed {self.shed} ({100.0 * self.shed_rate:.1f}%), "
            f"p50 {self.p50_ms:.1f} ms, p99 {self.p99_ms:.1f} ms, "
            f"peak queue {self.max_queue_depth}"
            + (f", lost shards {list(self.lost_shards)}" if self.lost_shards else "")
        )


def _observations_at(series, step: int, segment_ids) -> list[Observation]:
    return [
        Observation(
            segment_id=int(segment),
            step=step,
            speed_kmh=float(series.speeds[segment, step]),
            event=float(series.events[segment, step]),
            temperature=float(series.temperature[step]),
            precipitation=float(series.precipitation[step]),
            day_type=tuple(series.day_types[step]),
        )
        for segment in segment_ids
    ]


def run_open_loop(
    fleet: ForecastFleet,
    schedule: ArrivalSchedule,
    *,
    sleep=None,
    recorder=None,
) -> LoadReport:
    """Replay ``schedule`` against ``fleet`` and measure what happened.

    Arrivals are submitted when their scheduled time comes due on the
    fleet's clock — never earlier, and crucially never *later on
    purpose*: if a drain ran long, every arrival that came due
    meanwhile is submitted in one catch-up burst before the next drain,
    which is how queue pressure (and shedding) develops.  Per-request
    latency is measured against the *scheduled* arrival time, so time
    spent waiting in a backlog counts against the SLO exactly as it
    would for a real user.
    """
    import time as _time

    if sleep is None:
        sleep = _time.sleep
    clock = fleet.clock
    recorder = recorder if recorder is not None else fleet._recorder
    origin = clock()
    tickets: list[FleetRequest] = []
    events = schedule.events
    i = 0
    while i < len(events):
        now = clock() - origin
        if events[i].time_s > now:
            sleep(events[i].time_s - now)
            now = clock() - origin
        while i < len(events) and events[i].time_s <= now:
            event = events[i]
            if event.kind == "ingest":
                fleet.ingest_many(
                    _observations_at(schedule.series, event.step, event.segment_ids)
                )
            else:
                tickets.extend(
                    fleet.submit(event.segment_ids, arrival_s=origin + event.time_s)
                )
            i += 1
        fleet.drain()
    fleet.drain()
    wall = max(clock() - origin, 1e-9)

    unresolved = [t for t in tickets if not t.done]
    assert not unresolved, f"{len(unresolved)} tickets left unresolved after drain"
    offered = len(tickets)
    shed = sum(1 for t in tickets if t.shed)
    served = offered - shed
    latencies_ms = [
        (t.completed_s - t.arrival_s) * 1e3 for t in tickets if not t.shed
    ]
    if latencies_ms:
        p50, p99 = np.percentile(np.asarray(latencies_ms), [50.0, 99.0])
    else:
        p50 = p99 = float("nan")
    admission = fleet.admission.snapshot()
    report = LoadReport(
        rate=schedule.rate,
        offered=offered,
        served=served,
        shed=shed,
        shed_rate=shed / offered if offered else 0.0,
        duration_s=wall,
        offered_qps=offered / wall,
        served_qps=served / wall,
        p50_ms=float(p50),
        p99_ms=float(p99),
        max_queue_depth=max(admission["peak_queue_depths"], default=0),
        lost_shards=tuple(fleet.lost_shards),
    )
    if recorder is not None:
        recorder.event(
            "fleet_loadgen_summary",
            rate=report.rate,
            offered=report.offered,
            served=report.served,
            shed=report.shed,
            shed_rate=report.shed_rate,
            offered_qps=report.offered_qps,
            served_qps=report.served_qps,
            p50_ms=report.p50_ms,
            p99_ms=report.p99_ms,
        )
    return report
