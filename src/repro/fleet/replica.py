"""The object living inside each fleet worker process.

A :class:`ShardReplica` hosts one full :class:`repro.serving.ForecastService`
built from a zoo checkpoint.  The service spans the *whole* corridor's
segment index space (so window geometry, edge-degradation messages and
cache keys are identical to a single-process deployment), but only the
shard's halo ever receives observations — the parent routes them via
:class:`repro.fleet.router.ShardMap`.

The replica is deliberately a thin batch adapter: ``ingest_batch`` /
``predict_batch`` exist so one pipe round trip carries one shard-batch
instead of one request, and ``snapshot`` rides the service's shard-aware
snapshot (segment range, gate quarantine count) so the parent can
aggregate telemetry without extra calls.

:class:`ReplicaSpec` is the picklable factory handed to
:class:`repro.parallel.WorkerGroup` — everything needed to rebuild the
replica inside a spawned child is plain data plus the checkpoint
directory path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from ..attacks.defense import GateConfig, PerturbationGate
from ..serving.service import Forecast, ForecastService
from ..serving.state import Observation
from .router import ShardMap

__all__ = ["ReplicaSpec", "ShardReplica"]


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything a child process needs to build its :class:`ShardReplica`.

    Picklable by construction (paths and plain numbers only); calling
    the spec builds the replica, so it doubles as the ``WorkerGroup``
    factory.
    """

    checkpoint_dir: str
    num_segments: int
    shard: int
    num_shards: int
    shard_starts: tuple[int, ...] | None = None
    gate_config: GateConfig | None = None
    max_batch_size: int = 64
    cache_capacity: int = 4096
    cache_ttl_seconds: float = 300.0
    interval_minutes: int = 5
    store_capacity: int | None = None

    def __call__(self) -> "ShardReplica":
        return ShardReplica(self)


class ShardReplica:
    """One shard's serving state: a full :class:`ForecastService` plus ids."""

    def __init__(self, spec: ReplicaSpec):
        self.spec = spec
        shard_map = ShardMap(spec.num_segments, spec.num_shards, starts=spec.shard_starts)
        self.owned = shard_map.owned_range(spec.shard)
        gate = PerturbationGate(spec.gate_config) if spec.gate_config is not None else None
        self.service = ForecastService.from_checkpoint(
            spec.checkpoint_dir,
            num_segments=spec.num_segments,
            gate=gate,
            segment_range=self.owned,
            max_batch_size=spec.max_batch_size,
            cache_capacity=spec.cache_capacity,
            cache_ttl_seconds=spec.cache_ttl_seconds,
            interval_minutes=spec.interval_minutes,
            store_capacity=spec.store_capacity,
        )

    # ------------------------------------------------------------------
    def ingest_batch(self, observations: Sequence[Observation]) -> int:
        """Absorb one routed halo batch; returns how many were ingested."""
        return self.service.ingest_many(observations)

    def predict_batch(
        self,
        segment_ids: Sequence[int],
        horizon_steps: int | None,
        use_cache: bool,
    ) -> list[Forecast]:
        """Answer one shard-batch of owned-segment queries, in order."""
        return self.service.predict_many(
            list(segment_ids), horizon_steps=horizon_steps, use_cache=use_cache
        )

    def reset_segment(self, segment_id: int) -> None:
        self.service.store.reset_segment(segment_id)

    def swap_checkpoint(self, directory: str) -> str:
        """Hot-swap the replica's served model; returns the new fingerprint."""
        self.service.swap_checkpoint(directory)
        return self.service.fingerprint

    def snapshot(self) -> dict:
        snap = self.service.snapshot()
        snap["shard"] = self.spec.shard
        return snap

    def ping(self) -> int:
        return self.spec.shard

    # ------------------------------------------------------------------
    def die(self, exit_code: int = 21) -> None:
        """Fault-injection hook: hard-exit the replica process.

        Simulates a segfault/OOM kill (no exception, no reply) so tests
        and chaos drills can exercise the fleet's shard-loss path; see
        :meth:`repro.fleet.ForecastFleet.kill_replica`.
        """
        os._exit(exit_code)
