"""Deterministic segment → shard routing for the forecast fleet.

:class:`ShardMap` partitions a corridor of ``num_segments`` into
``num_shards`` *contiguous* balanced ranges.  Contiguity is what makes
sharded serving bitwise-equal to a single service: a model window reads
the target segment plus ``m`` neighbours on each side, so the owner of
a contiguous range only ever needs a *halo* of ``m`` extra segments per
boundary — observations for a segment are routed to every shard whose
halo covers it (at most a handful, and exactly one owner).

The map is a pure function of ``(num_segments, num_shards)``: no
hashing, no registration order, no randomness.  Two processes that
agree on those two integers agree on every routing decision, which is
what lets the fleet parent and each replica derive the same ownership
independently.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from ..serving.errors import UnknownSegmentError

__all__ = ["ShardMap"]


@dataclass(frozen=True)
class ShardMap:
    """Balanced contiguous partition of ``range(num_segments)``.

    Shard ``i`` owns the half-open range
    ``[floor(i * n / k), floor((i + 1) * n / k))`` — sizes differ by at
    most one, and the layout for ``k`` shards refines deterministically
    as ``k`` grows.

    ``starts`` overrides the balanced cut positions with explicit ones
    (``starts[0] == 0``, strictly increasing, all below
    ``num_segments``) — how graph-aware partitions from
    ``repro.network.sharding`` reach the fleet as plain data.  Every
    routing property (contiguous ownership, halo coverage, contiguous
    ``shards_for_observation``) holds for any valid ``starts``.
    """

    num_segments: int
    num_shards: int
    starts: tuple[int, ...] | None = None
    _starts: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if self.num_segments < 1:
            raise ValueError("num_segments must be positive")
        if self.num_shards < 1:
            raise ValueError("num_shards must be positive")
        if self.num_shards > self.num_segments:
            raise ValueError(
                f"cannot spread {self.num_segments} segments over "
                f"{self.num_shards} shards (shards would own nothing)"
            )
        if self.starts is not None:
            starts = tuple(int(s) for s in self.starts)
            if len(starts) != self.num_shards:
                raise ValueError(
                    f"starts must have one entry per shard "
                    f"({self.num_shards}), got {len(starts)}"
                )
            if starts[0] != 0:
                raise ValueError("starts[0] must be 0")
            for a, b in zip(starts, starts[1:]):
                if b <= a:
                    raise ValueError("starts must be strictly increasing")
            if starts[-1] >= self.num_segments:
                raise ValueError("starts must stay below num_segments")
        else:
            starts = tuple(
                (i * self.num_segments) // self.num_shards for i in range(self.num_shards)
            )
        object.__setattr__(self, "_starts", starts)

    # ------------------------------------------------------------------
    def check_segment(self, segment_id: int) -> None:
        if not 0 <= segment_id < self.num_segments:
            raise UnknownSegmentError(
                f"segment {segment_id} outside corridor 0..{self.num_segments - 1}"
            )

    def shard_of(self, segment_id: int) -> int:
        """The shard that owns (answers queries for) ``segment_id``."""
        self.check_segment(segment_id)
        return bisect_right(self._starts, segment_id) - 1

    def owned_range(self, shard: int) -> tuple[int, int]:
        """Half-open ``[lo, hi)`` segment range owned by ``shard``."""
        self._check_shard(shard)
        lo = self._starts[shard]
        hi = (
            self._starts[shard + 1]
            if shard + 1 < self.num_shards
            else self.num_segments
        )
        return lo, hi

    def halo_range(self, shard: int, m: int) -> tuple[int, int]:
        """Owned range widened by ``m`` neighbours per side (clipped).

        These are the segments whose observations the shard must ingest
        so every *owned* segment's ``2m + 1``-row window stays complete.
        """
        if m < 0:
            raise ValueError("m must be non-negative")
        lo, hi = self.owned_range(shard)
        return max(0, lo - m), min(self.num_segments, hi + m)

    def shards_for_observation(self, segment_id: int, m: int) -> range:
        """Every shard whose ``m``-halo covers ``segment_id``.

        A shard's halo covers ``segment_id`` iff the shard owns some
        segment in ``[segment_id - m, segment_id + m]``; owners of a
        contiguous range are themselves contiguous, so the answer is a
        ``range`` of shard ids (always containing the owner).
        """
        if m < 0:
            raise ValueError("m must be non-negative")
        self.check_segment(segment_id)
        first = self.shard_of(max(0, segment_id - m))
        last = self.shard_of(min(self.num_segments - 1, segment_id + m))
        return range(first, last + 1)

    # ------------------------------------------------------------------
    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} outside fleet 0..{self.num_shards - 1}")
