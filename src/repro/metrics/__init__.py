"""``repro.metrics`` — error metrics, abrupt-change regimes, statistics."""

from .errors import all_errors, mae, mape, rmse
from .regimes import ABRUPT_THETA, RegimeMasks, classify_regimes
from .stats import TTestResult, gain, paired_t_test

__all__ = [
    "all_errors",
    "mae",
    "mape",
    "rmse",
    "ABRUPT_THETA",
    "RegimeMasks",
    "classify_regimes",
    "TTestResult",
    "gain",
    "paired_t_test",
]
