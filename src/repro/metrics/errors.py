"""Error metrics: MAE, RMSE and MAPE, as used in Section V.

All metrics operate on km/h arrays (never the scaled representation).
MAPE is reported in percent, as in the paper's tables.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mae", "rmse", "mape", "all_errors"]

_MIN_DENOMINATOR = 1e-9


def _validate(prediction: np.ndarray, truth: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    prediction = np.asarray(prediction, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if prediction.shape != truth.shape:
        raise ValueError(f"shape mismatch: {prediction.shape} vs {truth.shape}")
    if prediction.size == 0:
        raise ValueError("cannot compute an error metric over zero samples")
    return prediction, truth


def mae(prediction: np.ndarray, truth: np.ndarray) -> float:
    """Mean absolute error."""
    prediction, truth = _validate(prediction, truth)
    return float(np.mean(np.abs(prediction - truth)))


def rmse(prediction: np.ndarray, truth: np.ndarray) -> float:
    """Root mean squared error."""
    prediction, truth = _validate(prediction, truth)
    return float(np.sqrt(np.mean((prediction - truth) ** 2)))


def mape(prediction: np.ndarray, truth: np.ndarray) -> float:
    """Mean absolute percentage error (percent).

    Guards against division by (near-)zero truth values; simulated
    speeds are clipped above 4 km/h so the guard rarely binds.
    """
    prediction, truth = _validate(prediction, truth)
    denominator = np.maximum(np.abs(truth), _MIN_DENOMINATOR)
    return float(np.mean(np.abs(prediction - truth) / denominator) * 100.0)


def all_errors(prediction: np.ndarray, truth: np.ndarray) -> dict[str, float]:
    """All three paper metrics in one dict."""
    return {
        "mae": mae(prediction, truth),
        "rmse": rmse(prediction, truth),
        "mape": mape(prediction, truth),
    }
