"""Abrupt-change regime classification (Section V-B, Eq 7/8).

The paper defines *abrupt deceleration* as a relative drop of at least
``theta`` between the past speed and the present speed, and *abrupt
acceleration* as a relative rise of at least ``theta``:

    (s_prev - s_now) / s_prev >= theta     (deceleration, Eq 7)
    (s_prev - s_now) / s_prev <= -theta    (acceleration, Eq 8)

with theta = 0.3.  For a prediction sample, ``s_prev`` is the last
observed (input) speed and ``s_now`` the target the model must predict —
the regimes isolate exactly the samples where the model must foresee a
change it has not yet observed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RegimeMasks", "classify_regimes", "ABRUPT_THETA"]

#: The paper's threshold: speeds in the dataset change by at most ~30 %.
ABRUPT_THETA = 0.3


@dataclass(frozen=True)
class RegimeMasks:
    """Boolean masks over a sample set, one per paper regime."""

    whole: np.ndarray
    normal: np.ndarray
    abrupt_acceleration: np.ndarray
    abrupt_deceleration: np.ndarray

    def counts(self) -> dict[str, int]:
        """Number of samples in each regime."""
        return {
            "whole": int(self.whole.sum()),
            "normal": int(self.normal.sum()),
            "abrupt_acc": int(self.abrupt_acceleration.sum()),
            "abrupt_dec": int(self.abrupt_deceleration.sum()),
        }

    def as_dict(self) -> dict[str, np.ndarray]:
        return {
            "whole": self.whole,
            "normal": self.normal,
            "abrupt_acc": self.abrupt_acceleration,
            "abrupt_dec": self.abrupt_deceleration,
        }


def classify_regimes(
    last_input_kmh: np.ndarray,
    target_kmh: np.ndarray,
    theta: float = ABRUPT_THETA,
) -> RegimeMasks:
    """Classify each sample by the change from last input to target.

    Parameters
    ----------
    last_input_kmh:
        Target-road speed at each sample's final input timestep.
    target_kmh:
        The true speed the sample predicts.
    theta:
        Abrupt-change threshold (paper: 0.3).
    """
    last_input_kmh = np.asarray(last_input_kmh, dtype=np.float64)
    target_kmh = np.asarray(target_kmh, dtype=np.float64)
    if last_input_kmh.shape != target_kmh.shape:
        raise ValueError("regime inputs must be aligned")
    if theta <= 0:
        raise ValueError("theta must be positive")

    relative_change = (last_input_kmh - target_kmh) / np.maximum(last_input_kmh, 1e-9)
    deceleration = relative_change >= theta
    acceleration = relative_change <= -theta
    whole = np.ones_like(deceleration, dtype=bool)
    normal = ~(deceleration | acceleration)
    return RegimeMasks(
        whole=whole,
        normal=normal,
        abrupt_acceleration=acceleration,
        abrupt_deceleration=deceleration,
    )
