"""Statistical helpers used by the evaluation (Section V-B).

* ``gain`` — the paper's Eq 9 improvement measure;
* ``paired_t_test`` — the t(7) tests the paper reports when comparing
  model variants across the eight predictor configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["gain", "TTestResult", "paired_t_test"]


def gain(error_after: float, error_before: float) -> float:
    """The paper's Eq 9: (E_a - E_b) / E_b * 100.

    The paper reports improvements as positive percentages, so this
    returns the *reduction* of error as a positive number when
    ``error_after`` is smaller.
    """
    if error_before == 0:
        raise ValueError("error_before must be non-zero")
    return (error_before - error_after) / error_before * 100.0


@dataclass(frozen=True)
class TTestResult:
    """Paired t-test output."""

    statistic: float
    p_value: float
    degrees_of_freedom: int

    @property
    def significant(self) -> bool:
        """Significance at the paper's p < 0.05 level."""
        return self.p_value < 0.05

    def __str__(self) -> str:
        return f"t({self.degrees_of_freedom})={self.statistic:.2f}, p={self.p_value:.4f}"


def paired_t_test(errors_a: np.ndarray, errors_b: np.ndarray) -> TTestResult:
    """Two-sided paired t-test over matched error measurements.

    The paper compares, e.g., the eight (predictor x data) MAPEs with
    and without adversarial training: t(7)=3.04, p<0.05.
    """
    errors_a = np.asarray(errors_a, dtype=np.float64)
    errors_b = np.asarray(errors_b, dtype=np.float64)
    if errors_a.shape != errors_b.shape:
        raise ValueError("paired t-test requires equally shaped inputs")
    if errors_a.size < 2:
        raise ValueError("paired t-test requires at least two pairs")
    result = scipy_stats.ttest_rel(errors_a, errors_b)
    return TTestResult(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        degrees_of_freedom=errors_a.size - 1,
    )
