"""``repro.mlops`` — drift-triggered continual learning for serving.

Closes the loop the ROADMAP left open between training and serving:

* :mod:`drift` watches the live stream — rolling per-regime forecast
  error (predictions reconciled against later-observed truth) and
  input-distribution shift (PSI / mean shift against the checkpoint's
  training-time :class:`repro.data.ReferenceProfile`) — with hysteresis
  so one noisy tick never triggers;
* :mod:`history` snapshots the recent observation stream back into a
  :class:`repro.traffic.TrafficSeries` the offline pipeline understands;
* :mod:`retrain` fine-tunes the current champion on that snapshot with
  the existing trainers, under a seed derived from the trigger;
* :mod:`shadow` replays a held-out tail of live windows through both
  champion and challenger and applies a pinned promotion rule;
* :mod:`controller` orchestrates monitor → retrain → shadow →
  ``swap_checkpoint`` on a :class:`repro.serving.ForecastService` or a
  :class:`repro.fleet.ForecastFleet`, with automatic rollback past a
  guardband.

Every transition is a schema-valid ``drift_*`` / ``mlops_*`` obs event
(:mod:`repro.obs.schema`), so any promotion or rollback is fully
reconstructable from the run log.  Layering: this package may import
core/serving/fleet/obs/data/traffic/metrics/parallel; only tools and
experiments may import it (enforced by ``tools/check_imports.py``).
"""

from .controller import ContinualController, ControllerConfig
from .drift import (
    DriftConfig,
    DriftDecision,
    ErrorDriftMonitor,
    ErrorSample,
    InputDriftMonitor,
    TruthReconciler,
)
from .history import HistoryBuffer
from .retrain import RetrainResult, RetrainSpec, retrain_challenger
from .shadow import PromotionDecision, PromotionRule, ShadowReport, evaluate_shadow

__all__ = [
    "ContinualController",
    "ControllerConfig",
    "DriftConfig",
    "DriftDecision",
    "ErrorDriftMonitor",
    "ErrorSample",
    "InputDriftMonitor",
    "TruthReconciler",
    "HistoryBuffer",
    "RetrainResult",
    "RetrainSpec",
    "retrain_challenger",
    "PromotionDecision",
    "PromotionRule",
    "ShadowReport",
    "evaluate_shadow",
]
