"""The continual-learning controller: monitor → retrain → shadow → swap → guard.

:class:`ContinualController` wraps a serving *target* — a
:class:`repro.serving.ForecastService` or a
:class:`repro.fleet.ForecastFleet`; anything with ``ingest_many`` /
``predict_many`` / ``swap_checkpoint`` works — and drives the whole
MLOps loop from the observation stream:

1. **Monitor.**  Every :meth:`ingest_tick` feeds the target, the raw
   :class:`~repro.mlops.history.HistoryBuffer`, and both drift monitors
   (forecast error via :class:`~repro.mlops.drift.TruthReconciler`,
   input distribution via the champion's reference profile).
2. **Retrain.**  A hysteresis-confirmed trigger (outside cooldown, with
   enough history) runs :func:`~repro.mlops.retrain.retrain_challenger`
   inline between ticks — off the predict hot path, deterministic under
   a seed derived from ``(config.seed, trigger_count)``.
3. **Shadow.**  The challenger replays the held-out newest windows
   against the champion under the pinned
   :class:`~repro.mlops.shadow.PromotionRule`.
4. **Swap.**  On promotion, :meth:`deploy` hot-swaps the target (one
   call covers a single service or a whole fleet broadcast) and arms
   the guardband.
5. **Guard / rollback.**  For ``postswap_ticks`` after a swap the
   reconciled error stream is compared against ``rollback_ratio x`` the
   pre-swap rolling MAE; ``rollback_patience`` consecutive breaches
   restore the previous champion automatically.  A clean guard window
   accepts the new champion and re-arms the monitors from scratch.

Every transition emits a schema-valid ``mlops_*`` event; the run log
alone reconstructs any promotion or rollback decision.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..core.model import APOTS
from ..core.zoo import load_model, model_fingerprint
from ..obs import RunRecorder
from ..parallel import derive_task_seed
from .drift import (
    DriftConfig,
    DriftDecision,
    ErrorDriftMonitor,
    InputDriftMonitor,
    TruthReconciler,
)
from .history import HistoryBuffer
from .retrain import RetrainSpec, retrain_challenger
from .shadow import PromotionRule, evaluate_shadow

__all__ = ["ControllerConfig", "ContinualController"]


@dataclass(frozen=True)
class ControllerConfig:
    """All knobs of the continual-learning loop."""

    drift: DriftConfig = field(default_factory=DriftConfig)
    retrain: RetrainSpec = field(default_factory=RetrainSpec)
    promotion: PromotionRule = field(default_factory=PromotionRule)
    history_capacity: int = 2048  # raw ticks retained for retraining
    min_history_steps: int = 128  # don't retrain on a thinner buffer
    cooldown_ticks: int = 64  # ticks between pipeline runs
    postswap_ticks: int = 48  # guardband length after a swap
    rollback_ratio: float = 1.25  # guard: post-swap MAE vs pre-swap rolling MAE
    rollback_window: int = 32  # rolling window of post-swap errors
    rollback_min_samples: int = 16  # guard needs this many reconciled samples
    rollback_patience: int = 2  # consecutive guard breaches to roll back
    seed: int = 0  # root seed; retrains use derive_task_seed(seed, n)

    def __post_init__(self):
        if self.rollback_ratio <= 1.0:
            raise ValueError("rollback_ratio must exceed 1.0")
        if self.rollback_patience < 1 or self.rollback_min_samples < 1:
            raise ValueError("rollback patience/min_samples must be positive")


class ContinualController:
    """Drive one serving target through the drift→retrain→swap loop.

    Parameters
    ----------
    target:
        The serving deployment: a ``ForecastService`` or a
        ``ForecastFleet`` (duck-typed on ``ingest_many`` /
        ``predict_many`` / ``swap_checkpoint``).  The target must have
        been built from ``champion_dir`` so weights and controller
        bookkeeping agree.
    champion_dir:
        The checkpoint directory currently served.
    workdir:
        Where challenger checkpoints are written (one subdirectory per
        trigger, so a rollback's restore target is never overwritten).
    config, recorder:
        Loop knobs and the obs event sink.
    """

    def __init__(
        self,
        target,
        champion_dir: str | Path,
        workdir: str | Path,
        config: ControllerConfig | None = None,
        recorder: RunRecorder | None = None,
    ):
        self.target = target
        self.config = config if config is not None else ControllerConfig()
        self.recorder = recorder
        self.workdir = Path(workdir)
        self._champion_dir = Path(champion_dir)
        self._previous_dir: Path | None = None
        self._champion: APOTS = load_model(champion_dir)
        self._fingerprint = model_fingerprint(self._champion)
        num_segments = getattr(target, "num_segments", None)
        if num_segments is None:
            num_segments = target.store.num_segments
        self.history = HistoryBuffer(
            num_segments,
            capacity=self.config.history_capacity,
            interval_minutes=getattr(target, "interval_minutes", 5),
        )
        self.reconciler = TruthReconciler()
        self.error_monitor = ErrorDriftMonitor(self.config.drift, recorder)
        self.input_monitor = InputDriftMonitor(
            self._champion.reference_profile, self.config.drift, recorder
        )
        self.trigger_count = 0
        self.swap_count = 0
        self.rollback_count = 0
        self.last_trigger: DriftDecision | None = None
        self._cooldown = 0
        # Guardband state (armed by deploy()).
        self._postswap_remaining = 0
        self._guard_mae: float | None = None
        self._guard_errors: deque[float] = deque(maxlen=self.config.rollback_window)
        self._guard_breaches = 0

    # ------------------------------------------------------------------
    @property
    def champion_dir(self) -> Path:
        return self._champion_dir

    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    @property
    def in_guardband(self) -> bool:
        return self._postswap_remaining > 0

    def _emit(self, kind: str, **fields) -> None:
        if self.recorder is not None:
            self.recorder.event(kind, **fields)

    def _shards(self) -> int:
        return int(getattr(self.target, "num_shards", 1))

    # ------------------------------------------------------------------
    # Stream plumbing
    # ------------------------------------------------------------------
    def ingest_tick(self, observations: Iterable["object"]) -> None:
        """Feed one tick's full-corridor batch through the whole loop."""
        observations = list(observations)
        self.target.ingest_many(observations)
        self.history.ingest_tick(observations)
        samples = self.reconciler.reconcile(observations)
        if self._cooldown > 0:
            self._cooldown -= 1
        if self.in_guardband:
            self._guard_tick(samples)
            return
        decision = self.error_monitor.observe(samples)
        if decision is None:
            decision = self.input_monitor.observe(observations)
        else:
            # Still feed the input window so its state stays warm.
            self.input_monitor.observe(observations)
        if decision is not None and self._cooldown == 0:
            if len(self.history) >= self.config.min_history_steps:
                self._run_pipeline(decision)
            # else: not enough history yet; the monitors keep watching.

    def predict(
        self,
        segment_ids: Sequence[int],
        horizon_steps: int | None = None,
        use_cache: bool = True,
    ):
        """Forecast via the target, filing model answers for reconciliation."""
        forecasts = self.target.predict_many(segment_ids, horizon_steps, use_cache)
        for forecast in forecasts:
            if forecast.source != "model":
                continue  # naive answers monitor nothing but themselves
            self.reconciler.record(
                forecast.segment_id,
                forecast.target_step,
                forecast.speed_kmh,
                self.history.last_speed_kmh(forecast.segment_id),
            )
        return forecasts

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def _run_pipeline(self, decision: DriftDecision) -> None:
        seed = derive_task_seed(self.config.seed, self.trigger_count)
        self.trigger_count += 1
        self.last_trigger = decision
        self._emit(
            "mlops_trigger",
            monitor=decision.monitor,
            reason=decision.reason,
            step=decision.step,
            seed=seed,
        )
        result = retrain_challenger(
            self._champion_dir,
            self.history.snapshot(),
            spec=self.config.retrain,
            seed=seed,
            workdir=self.workdir / f"challenger-{self.trigger_count:03d}",
            recorder=self.recorder,
        )
        self._cooldown = self.config.cooldown_ticks
        if not result.ok:
            return  # champion keeps serving; mlops_retrain_end told the story
        challenger = load_model(result.challenger_dir)
        report = evaluate_shadow(
            self._champion,
            challenger,
            result.dataset,
            result.holdout,
            rule=self.config.promotion,
            recorder=self.recorder,
        )
        if report.promote:
            self.deploy(result.challenger_dir)
        else:
            # Rejected challenger: clear the breach trail so the next
            # trigger needs fresh consecutive evidence, but KEEP the
            # error baseline — re-calibrating on the drifted stream
            # would make persistent drift invisible forever.
            self.error_monitor.calm()
            self.input_monitor.calm()

    def deploy(self, directory: str | Path) -> str:
        """Hot-swap the target to ``directory`` and arm the guardband.

        Public so drills (and operators) can push an arbitrary
        checkpoint through the exact promotion path — including the
        automatic rollback that follows a bad one.  Returns the new
        champion's fingerprint.
        """
        directory = Path(directory)
        model = load_model(directory)
        fingerprint = model_fingerprint(model)
        previous_fingerprint = self._fingerprint
        self._guard_mae = self.error_monitor.rolling_mae()
        self.target.swap_checkpoint(directory)
        self._previous_dir = self._champion_dir
        self._champion_dir = directory
        self._champion = model
        self._fingerprint = fingerprint
        self.swap_count += 1
        self._emit(
            "mlops_swap",
            fingerprint=fingerprint,
            previous_fingerprint=previous_fingerprint,
            shards=self._shards(),
        )
        # Old-champion forecasts and error history mean nothing now.
        self.reconciler.clear()
        self.error_monitor.reset()
        self._postswap_remaining = self.config.postswap_ticks
        self._guard_errors.clear()
        self._guard_breaches = 0
        return fingerprint

    # ------------------------------------------------------------------
    # Guardband
    # ------------------------------------------------------------------
    def _guard_tick(self, samples) -> None:
        self._postswap_remaining -= 1
        for sample in samples:
            self._guard_errors.append(sample.abs_error)
        guard = self._guard_mae
        if guard is not None and len(self._guard_errors) >= self.config.rollback_min_samples:
            rolling = float(np.mean(self._guard_errors))
            if rolling > self.config.rollback_ratio * max(guard, 1e-9):
                self._guard_breaches += 1
                if self._guard_breaches >= self.config.rollback_patience:
                    self._rollback(rolling, guard)
                    return
            else:
                self._guard_breaches = 0
        if self._postswap_remaining <= 0:
            self._accept()

    def _accept(self) -> None:
        """Guard window survived: the new champion is the champion."""
        self._postswap_remaining = 0
        self._guard_mae = None
        self._guard_errors.clear()
        self._guard_breaches = 0
        self.input_monitor = InputDriftMonitor(
            self._champion.reference_profile, self.config.drift, self.recorder
        )
        self.error_monitor.reset()
        self._cooldown = self.config.cooldown_ticks

    def _rollback(self, rolling_mae: float, guard_mae: float) -> None:
        assert self._previous_dir is not None
        bad_fingerprint = self._fingerprint
        self.target.swap_checkpoint(self._previous_dir)
        self._champion_dir = self._previous_dir
        self._champion = load_model(self._champion_dir)
        self._fingerprint = model_fingerprint(self._champion)
        self._previous_dir = None
        self.rollback_count += 1
        self._emit(
            "mlops_rollback",
            fingerprint=bad_fingerprint,
            restored_fingerprint=self._fingerprint,
            rolling_mae=rolling_mae,
            guard_mae=guard_mae,
        )
        self._postswap_remaining = 0
        self._guard_mae = None
        self._guard_errors.clear()
        self._guard_breaches = 0
        self.reconciler.clear()
        self.error_monitor.reset()
        self.input_monitor = InputDriftMonitor(
            self._champion.reference_profile, self.config.drift, self.recorder
        )
        self._cooldown = self.config.cooldown_ticks
