"""Drift monitors over the live serving stream.

Two independent detectors, both hysteresis-gated so one noisy tick can
never trigger a retrain (DESIGN.md §14):

* :class:`ErrorDriftMonitor` — *is the model still accurate?*  Forecasts
  are reconciled against the later-observed truth by
  :class:`TruthReconciler`; the monitor keeps a rolling window of
  absolute errors, freezes its first full window as the **baseline**
  (self-calibrating — no training-time error statistic needs to ride in
  the checkpoint), and breaches when the rolling MAE exceeds
  ``error_ratio x baseline``.  Per-regime errors (the paper's
  abrupt-change regimes) are tracked alongside so the breach report
  names the regime that degraded most.

* :class:`InputDriftMonitor` — *does the input still look like the
  training data?*  Raw km/h speeds are windowed and compared against
  the champion checkpoint's :class:`repro.data.ReferenceProfile`
  (format v3) by PSI and mean shift.  A v1/v2 checkpoint has no
  profile; the monitor is then disabled rather than guessing.

Every evaluation emits a schema-valid ``drift_error`` / ``drift_input``
event, so the full hysteresis trail — not just the final trigger — is
reconstructable from the run log.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from ..data.profile import ReferenceProfile
from ..metrics.regimes import ABRUPT_THETA
from ..obs import RunRecorder

__all__ = [
    "DriftConfig",
    "DriftDecision",
    "ErrorSample",
    "TruthReconciler",
    "ErrorDriftMonitor",
    "InputDriftMonitor",
]

_REGIMES = ("normal", "abrupt_acc", "abrupt_dec")


@dataclass(frozen=True)
class DriftConfig:
    """Knobs of both monitors (shared so one config rides the controller).

    ``check_every`` paces evaluations in *samples*, keeping the per-tick
    overhead flat; ``hysteresis`` is the number of **consecutive**
    breaching evaluations required to trigger.
    """

    # Forecast-error monitor
    error_window: int = 64  # rolling error window (samples)
    min_samples: int = 32  # don't evaluate before this many samples
    error_ratio: float = 1.5  # breach when rolling MAE > ratio x baseline
    # Input-distribution monitor
    input_window: int = 256  # rolling raw-speed window (samples)
    psi_threshold: float = 0.25  # "significant shift" by PSI convention
    mean_shift_kmh: float = 10.0  # absolute mean-speed shift breach
    # Shared pacing
    check_every: int = 16  # evaluate every N new samples
    hysteresis: int = 3  # consecutive breaches required to trigger

    def __post_init__(self):
        if self.error_window < 2 or self.input_window < 2:
            raise ValueError("windows must hold at least 2 samples")
        if self.min_samples < 1 or self.min_samples > self.error_window:
            raise ValueError("min_samples must be in 1..error_window")
        if self.error_ratio <= 1.0:
            raise ValueError("error_ratio must exceed 1.0")
        if self.check_every < 1 or self.hysteresis < 1:
            raise ValueError("check_every and hysteresis must be positive")


@dataclass(frozen=True)
class DriftDecision:
    """One monitor's trigger: who fired, why, and the stats behind it."""

    monitor: str  # "error" | "input"
    reason: str
    step: int  # stream step at which the trigger fired
    stats: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ErrorSample:
    """One reconciled (forecast, truth) pair with its regime label."""

    segment_id: int
    target_step: int
    predicted_kmh: float
    truth_kmh: float
    last_input_kmh: float

    @property
    def abs_error(self) -> float:
        return abs(self.predicted_kmh - self.truth_kmh)

    @property
    def regime(self) -> str:
        """Paper regime of this sample (Eq 7/8, scalar form)."""
        relative = (self.last_input_kmh - self.truth_kmh) / max(self.last_input_kmh, 1e-9)
        if relative >= ABRUPT_THETA:
            return "abrupt_dec"
        if relative <= -ABRUPT_THETA:
            return "abrupt_acc"
        return "normal"


class TruthReconciler:
    """Match forecasts to the later-observed speeds they predicted.

    :meth:`record` files a model forecast under ``(segment,
    target_step)``; :meth:`reconcile` resolves the pairs whose truth
    just arrived on the observation stream.  Pending entries are
    bounded: past ``max_pending`` the oldest are dropped (a forecast
    whose truth never arrives — gap, reset — must not leak).
    """

    def __init__(self, max_pending: int = 4096):
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        self.max_pending = max_pending
        self._pending: OrderedDict[tuple[int, int], tuple[float, float]] = OrderedDict()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._pending)

    def record(self, segment_id: int, target_step: int, predicted_kmh: float, last_input_kmh: float) -> None:
        key = (int(segment_id), int(target_step))
        self._pending[key] = (float(predicted_kmh), float(last_input_kmh))
        self._pending.move_to_end(key)
        while len(self._pending) > self.max_pending:
            self._pending.popitem(last=False)
            self.dropped += 1

    def reconcile(self, observations) -> list[ErrorSample]:
        """Resolve every pending forecast answered by these observations."""
        samples: list[ErrorSample] = []
        for obs in observations:
            entry = self._pending.pop((int(obs.segment_id), int(obs.step)), None)
            if entry is None:
                continue
            predicted, last_input = entry
            samples.append(
                ErrorSample(
                    segment_id=int(obs.segment_id),
                    target_step=int(obs.step),
                    predicted_kmh=predicted,
                    truth_kmh=float(obs.speed_kmh),
                    last_input_kmh=last_input,
                )
            )
        return samples

    def clear(self) -> None:
        """Drop all pending forecasts (called on swap/rollback: pending
        predictions belong to the outgoing model)."""
        self._pending.clear()


class _HysteresisGate:
    """Consecutive-breach counter shared by both monitors."""

    __slots__ = ("required", "breaches")

    def __init__(self, required: int):
        self.required = required
        self.breaches = 0

    def update(self, breached: bool) -> bool:
        self.breaches = self.breaches + 1 if breached else 0
        return self.breaches >= self.required


class ErrorDriftMonitor:
    """Rolling forecast-error drift with a self-calibrated baseline."""

    def __init__(self, config: DriftConfig | None = None, recorder: RunRecorder | None = None):
        self.config = config if config is not None else DriftConfig()
        self.recorder = recorder
        self._errors: deque[float] = deque(maxlen=self.config.error_window)
        self._regime_errors: dict[str, deque[float]] = {
            r: deque(maxlen=self.config.error_window) for r in _REGIMES
        }
        self._gate = _HysteresisGate(self.config.hysteresis)
        self._baseline: float | None = None
        self._since_check = 0
        self._total = 0
        self._latest_step = 0

    # ------------------------------------------------------------------
    @property
    def baseline_mae(self) -> float | None:
        return self._baseline

    def rolling_mae(self) -> float | None:
        if not self._errors:
            return None
        return float(np.mean(self._errors))

    def reset(self) -> None:
        """Forget all rolling state (after a swap the old errors are
        another model's); the baseline re-calibrates from fresh data."""
        self._errors.clear()
        for errs in self._regime_errors.values():
            errs.clear()
        self._gate.breaches = 0
        self._baseline = None
        self._since_check = 0

    def calm(self) -> None:
        """Clear only the hysteresis trail, keeping window and baseline.

        Used when a trigger was handled without a swap (challenger
        rejected, retrain failed): the baseline must survive, otherwise
        it would re-calibrate on the drifted stream and persistent
        drift could never re-trigger.
        """
        self._gate.breaches = 0

    # ------------------------------------------------------------------
    def observe(self, samples: list[ErrorSample]) -> DriftDecision | None:
        """Fold in reconciled samples; returns a decision when triggered."""
        decision = None
        for sample in samples:
            self._errors.append(sample.abs_error)
            self._regime_errors[sample.regime].append(sample.abs_error)
            self._total += 1
            self._since_check += 1
            self._latest_step = max(self._latest_step, sample.target_step)
            if self._baseline is None:
                if self._total >= self.config.error_window:
                    # First full window becomes the frozen baseline.
                    self._baseline = float(np.mean(self._errors))
                continue
            if self._since_check >= self.config.check_every and len(self._errors) >= self.config.min_samples:
                self._since_check = 0
                fired = self._evaluate()
                decision = decision or fired
        return decision

    def _worst_regime(self) -> str:
        """The regime whose rolling MAE is highest (enough samples held)."""
        worst, worst_mae = "whole", -1.0
        for regime, errs in self._regime_errors.items():
            if len(errs) >= 4:
                regime_mae = float(np.mean(errs))
                if regime_mae > worst_mae:
                    worst, worst_mae = regime, regime_mae
        return worst

    def _evaluate(self) -> DriftDecision | None:
        assert self._baseline is not None
        rolling = float(np.mean(self._errors))
        baseline = max(self._baseline, 1e-9)
        ratio = rolling / baseline
        breached = ratio > self.config.error_ratio
        triggered = self._gate.update(breached)
        if self.recorder is not None:
            self.recorder.event(
                "drift_error",
                samples=len(self._errors),
                regime=self._worst_regime(),
                rolling_mae=rolling,
                baseline_mae=self._baseline,
                ratio=ratio,
                threshold=self.config.error_ratio,
                breaches=self._gate.breaches,
                triggered=triggered,
            )
        if not triggered:
            return None
        self._gate.breaches = 0
        return DriftDecision(
            monitor="error",
            reason=(
                f"rolling MAE {rolling:.2f} km/h is {ratio:.2f}x the baseline "
                f"{self._baseline:.2f} (threshold {self.config.error_ratio}x, "
                f"worst regime {self._worst_regime()})"
            ),
            step=self._latest_step,
            stats={"rolling_mae": rolling, "baseline_mae": self._baseline, "ratio": ratio},
        )


class InputDriftMonitor:
    """Input-distribution shift against a training-time reference profile.

    When the profile carries day-type bins (format v3 profiles built by
    :meth:`ReferenceProfile.from_series`) and the observation stream
    labels its day types, the PSI and mean-shift statistics are
    **conditioned**: each day type in the window is compared against its
    own training sub-distribution and the worst subgroup gates the
    breach.  That removes the weekly-seasonality false-positive (a
    weekend window legitimately runs faster than the pooled training
    mean), which is what lets the PSI threshold sit at the conventional
    0.25 instead of being inflated to tolerate seasonality.
    """

    #: Minimum samples a day-type subgroup needs in the window before its
    #: conditioned PSI is trusted (smaller subgroups are skipped).
    MIN_SUBGROUP = 24

    def __init__(
        self,
        profile: ReferenceProfile | None,
        config: DriftConfig | None = None,
        recorder: RunRecorder | None = None,
    ):
        self.profile = profile
        self.config = config if config is not None else DriftConfig()
        self.recorder = recorder
        self._speeds: deque[float] = deque(maxlen=self.config.input_window)
        self._labels: deque[str | None] = deque(maxlen=self.config.input_window)
        self._gate = _HysteresisGate(self.config.hysteresis)
        self._since_check = 0
        self._latest_step = 0

    @property
    def enabled(self) -> bool:
        """False when the champion checkpoint predates format v3."""
        return self.profile is not None

    def reset(self) -> None:
        self._speeds.clear()
        self._labels.clear()
        self._gate.breaches = 0
        self._since_check = 0

    def calm(self) -> None:
        """Clear only the hysteresis trail (see ErrorDriftMonitor.calm)."""
        self._gate.breaches = 0

    @staticmethod
    def _day_label(observation) -> str | None:
        """Day-type label of one observation, or None when unlabelled."""
        day_type = getattr(observation, "day_type", None)
        if day_type is None:
            return None
        return "weekday" if day_type[0] > 0.5 else "offday"

    # ------------------------------------------------------------------
    def observe(self, observations) -> DriftDecision | None:
        """Fold in raw observations; returns a decision when triggered."""
        if not self.enabled:
            return None
        decision = None
        for obs in observations:
            self._speeds.append(float(obs.speed_kmh))
            self._labels.append(self._day_label(obs))
            self._since_check += 1
            self._latest_step = max(self._latest_step, int(obs.step))
            full = len(self._speeds) == self.config.input_window
            if full and self._since_check >= self.config.check_every:
                self._since_check = 0
                fired = self._evaluate()
                decision = decision or fired
        return decision

    def _statistics(self, window: np.ndarray) -> tuple[float, float, float, bool]:
        """(psi, mean, reference_mean, conditioned) for the current window.

        Conditioned when the profile has day bins and every sample in
        the window carries a day-type label: each sufficiently populated
        subgroup is scored against its own sub-profile and the worst one
        is reported.  Otherwise falls back to the pooled statistic.
        """
        assert self.profile is not None
        labels = list(self._labels)
        if self.profile.day_bins and all(label is not None for label in labels):
            label_array = np.asarray(labels)
            worst: tuple[float, float, float] | None = None
            for label, sub in self.profile.day_bins:
                mask = label_array == label
                if int(mask.sum()) < self.MIN_SUBGROUP:
                    continue
                sub_window = window[mask]
                candidate = (sub.psi(sub_window), float(sub_window.mean()), sub.mean_kmh)
                if worst is None or candidate[0] > worst[0]:
                    worst = candidate
            if worst is not None:
                return worst[0], worst[1], worst[2], True
        return self.profile.psi(window), float(window.mean()), self.profile.mean_kmh, False

    def _evaluate(self) -> DriftDecision | None:
        assert self.profile is not None
        window = np.asarray(self._speeds)
        psi, mean, reference_mean, conditioned = self._statistics(window)
        mean_shift = abs(mean - reference_mean)
        breached = psi > self.config.psi_threshold or mean_shift > self.config.mean_shift_kmh
        triggered = self._gate.update(breached)
        if self.recorder is not None:
            self.recorder.event(
                "drift_input",
                samples=len(window),
                psi=psi,
                psi_threshold=self.config.psi_threshold,
                mean_kmh=mean,
                reference_mean_kmh=reference_mean,
                conditioned=conditioned,
                breaches=self._gate.breaches,
                triggered=triggered,
            )
        if not triggered:
            return None
        self._gate.breaches = 0
        qualifier = "conditioned " if conditioned else ""
        return DriftDecision(
            monitor="input",
            reason=(
                f"{qualifier}input PSI {psi:.3f} (threshold "
                f"{self.config.psi_threshold}), mean {mean:.1f} km/h vs "
                f"training {reference_mean:.1f}"
            ),
            step=self._latest_step,
            stats={
                "psi": psi,
                "mean_kmh": mean,
                "reference_mean_kmh": reference_mean,
                "conditioned": conditioned,
            },
        )
