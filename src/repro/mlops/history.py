"""Rolling raw-observation history for retraining snapshots.

The serving :class:`repro.serving.SegmentStateStore` keeps exactly what
inference needs (``alpha`` scaled steps); retraining needs much more —
a long *raw* tail of the stream, reassembled into the
:class:`repro.traffic.TrafficSeries` shape the offline feature pipeline
consumes.  :class:`HistoryBuffer` is that second, wider ring: raw km/h
speeds, event flags and context per tick, with :meth:`snapshot`
materialising the contiguous run it currently holds.

The buffer is tick-oriented: one :meth:`ingest_tick` call carries one
step's observations for the **whole corridor** (the same full-corridor
per-tick contract the fleet's shard-count invariance already relies
on).  Context fields (temperature / precipitation / day type) may be
``None`` on any observation; the previous tick's values are carried
forward, mirroring the serving store.
"""

from __future__ import annotations

import datetime as dt
from typing import Iterable, Sequence

import numpy as np

from ..serving.state import Observation
from ..traffic.calendar import STUDY_START
from ..traffic.types import Corridor, TrafficSeries

__all__ = ["HistoryBuffer"]

_DEFAULT_DAY_TYPE = (1.0, 0.0, 0.0, 0.0)  # plain weekday


class HistoryBuffer:
    """Fixed-capacity raw history of the full corridor stream.

    Parameters
    ----------
    num_segments:
        Corridor length; every tick must cover all of it.
    capacity:
        Maximum number of ticks retained (the retraining horizon).
    interval_minutes:
        Tick length, forwarded into snapshots.
    """

    def __init__(self, num_segments: int, capacity: int = 2048, interval_minutes: int = 5):
        if num_segments < 1:
            raise ValueError("num_segments must be positive")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.num_segments = num_segments
        self.capacity = capacity
        self.interval_minutes = interval_minutes
        self.steps_per_day = (24 * 60) // interval_minutes
        self._speeds = np.zeros((num_segments, capacity), dtype=np.float64)
        self._events = np.zeros((num_segments, capacity), dtype=np.float64)
        self._temperature = np.zeros(capacity, dtype=np.float64)
        self._precipitation = np.zeros(capacity, dtype=np.float64)
        self._day_types = np.zeros((capacity, 4), dtype=np.float64)
        self._latest: int | None = None
        self._count = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of contiguous ticks currently held."""
        return self._count

    @property
    def latest_step(self) -> int | None:
        return self._latest

    def last_speed_kmh(self, segment_id: int) -> float:
        """Most recent raw speed of one segment."""
        if self._latest is None:
            raise ValueError("history buffer is empty")
        if not 0 <= segment_id < self.num_segments:
            raise ValueError(f"segment {segment_id} outside corridor")
        return float(self._speeds[segment_id, self._latest % self.capacity])

    # ------------------------------------------------------------------
    def ingest_tick(self, observations: Iterable[Observation]) -> int:
        """Absorb one tick's full-corridor observation batch.

        All observations must share one step; a step that is not
        ``latest + 1`` restarts the contiguous run (mirroring the
        serving store's gap semantics — the caller is expected to have
        validated the stream already).  Returns the step ingested.
        """
        observations = list(observations)
        if not observations:
            raise ValueError("ingest_tick needs at least one observation")
        step = observations[0].step
        seen: set[int] = set()
        for obs in observations:
            if obs.step != step:
                raise ValueError(
                    f"ingest_tick got mixed steps {step} and {obs.step}; "
                    "one call carries one tick"
                )
            if not 0 <= obs.segment_id < self.num_segments:
                raise ValueError(f"segment {obs.segment_id} outside corridor")
            seen.add(obs.segment_id)
        if len(seen) != self.num_segments:
            missing = sorted(set(range(self.num_segments)) - seen)
            raise ValueError(
                f"tick {step} covers {len(seen)}/{self.num_segments} segments "
                f"(missing {missing[:5]}{'...' if len(missing) > 5 else ''}); "
                "retraining history needs the full corridor per tick"
            )

        slot = step % self.capacity
        if self._latest is not None and step == self._latest + 1:
            self._count = min(self._count + 1, self.capacity)
            # Carry context forward from the previous tick by default.
            prev = self._latest % self.capacity
            self._temperature[slot] = self._temperature[prev]
            self._precipitation[slot] = self._precipitation[prev]
            self._day_types[slot] = self._day_types[prev]
        else:
            self._count = 1
            self._temperature[slot] = 0.0
            self._precipitation[slot] = 0.0
            self._day_types[slot] = _DEFAULT_DAY_TYPE
        for obs in observations:
            self._speeds[obs.segment_id, slot] = obs.speed_kmh
            self._events[obs.segment_id, slot] = float(obs.event)
            if obs.temperature is not None:
                self._temperature[slot] = obs.temperature
            if obs.precipitation is not None:
                self._precipitation[slot] = obs.precipitation
            if obs.day_type is not None:
                self._day_types[slot] = obs.day_type
        self._latest = step
        return step

    # ------------------------------------------------------------------
    def _held_steps(self, steps: int | None = None) -> np.ndarray:
        if self._latest is None or self._count == 0:
            raise ValueError("history buffer is empty")
        n = self._count if steps is None else min(steps, self._count)
        return np.arange(self._latest - n + 1, self._latest + 1)

    def snapshot(self, steps: int | None = None) -> TrafficSeries:
        """Materialise the held run (or its last ``steps``) as a series.

        The snapshot is deterministic given the ingested stream: the
        corridor is the default Gyeongbu layout for this segment count
        and timestamps are synthesised from the absolute step index
        anchored at the study start (step 0 = midnight), so repeated
        snapshots of the same stream are identical.
        """
        held = self._held_steps(steps)
        idx = held % self.capacity
        base = dt.datetime.combine(STUDY_START, dt.time())
        minutes = self.interval_minutes
        hours = ((held % self.steps_per_day) * minutes // 60).astype(np.float64)
        return TrafficSeries(
            corridor=Corridor.gyeongbu(self.num_segments),
            speeds=self._speeds[:, idx].copy(),
            temperature=self._temperature[idx].copy(),
            precipitation=self._precipitation[idx].copy(),
            events=self._events[:, idx].copy(),
            hours=hours,
            day_types=self._day_types[idx].copy(),
            timestamps=[base + dt.timedelta(minutes=int(s) * minutes) for s in held],
            interval_minutes=minutes,
        )

    def recent_speeds(self, segments: Sequence[int] | None = None) -> np.ndarray:
        """Raw km/h speeds of the held run, ``(len(segments), count)``."""
        held = self._held_steps()
        idx = held % self.capacity
        if segments is None:
            return self._speeds[:, idx].copy()
        return self._speeds[np.asarray(segments)[:, None], idx[None, :]].copy()
