"""Background retraining: from a history snapshot to a challenger checkpoint.

"Background" here means *off the predict hot path*: the controller runs
the retrain between ticks on its own control loop, never inside a
forecast request.  The run itself is synchronous and deterministic —
the trigger event carries a seed derived from ``(controller seed,
trigger count)`` via :func:`repro.parallel.derive_task_seed`, so a
replayed run log reproduces the identical challenger bitwise.

The challenger starts from the champion's weights (warm start: a fresh
``load_model`` of the champion directory) and is fine-tuned with the
plain :class:`repro.core.SupervisedTrainer` — or
:class:`repro.core.DataParallelTrainer` when ``workers > 1`` — on a
**time-ordered** split of the history snapshot: the most recent
``holdout_fraction`` of windows is held out for shadow evaluation, an
``alpha + beta``-window gap before it prevents train/holdout sample
overlap, and training sees only the older remainder.  The champion's
scalers are reused (not refitted) so the held-out windows feed champion
and challenger identically, and so the serving store's scaling is
unchanged by a swap.  Adversarial champions are fine-tuned supervised
(predictor only) — the discriminator rides along untouched; online
drift correction needs the forecaster, not the GAN game.

Failures are a *result*, not an exception: a retrainer that dies
mid-run reports ``status="failed"`` and the controller backs off into
cooldown with the champion still serving (DESIGN.md §14 failure model).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.config import TrainSpec
from ..core.data_parallel import DataParallelTrainer
from ..core.trainer import SupervisedTrainer
from ..core.zoo import load_model, save_model
from ..data.dataset import TrafficDataset
from ..data.profile import ReferenceProfile
from ..data.split import SplitIndices
from ..obs import RunRecorder
from ..traffic.types import TrafficSeries

__all__ = ["RetrainSpec", "RetrainResult", "retrain_challenger"]


@dataclass(frozen=True)
class RetrainSpec:
    """Fine-tuning knobs for one challenger run."""

    epochs: int = 2
    batch_size: int = 64
    learning_rate: float = 0.001
    max_steps_per_epoch: int | None = None
    holdout_fraction: float = 0.25  # newest windows reserved for shadow eval
    min_windows: int = 48  # refuse to retrain on less history than this
    min_holdout: int = 8  # shadow eval needs at least this many windows
    workers: int = 1  # >1 routes through DataParallelTrainer
    compile: bool = False  # tape-replay the fine-tune hot path

    def __post_init__(self):
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        if self.min_windows < 4 or self.min_holdout < 1:
            raise ValueError("min_windows/min_holdout too small")


@dataclass
class RetrainResult:
    """Outcome of one retrain: a challenger directory, or why not.

    ``status`` is one of ``"ok"``, ``"insufficient_history"``,
    ``"failed"``.  On ``"ok"``, ``challenger_dir`` holds the saved
    checkpoint and ``dataset`` / ``holdout`` are the shadow-evaluation
    inputs (the challenger never saw the holdout windows).
    """

    status: str
    seed: int
    num_windows: int = 0
    duration_s: float = 0.0
    challenger_dir: Path | None = None
    dataset: TrafficDataset | None = None
    holdout: np.ndarray | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _time_ordered_split(num_windows: int, holdout: int, gap: int) -> SplitIndices:
    """Train on the past, hold out the most recent windows, gap between."""
    holdout_start = num_windows - holdout
    train_stop = max(holdout_start - gap, 0)
    return SplitIndices(
        train=np.arange(0, train_stop),
        validation=np.array([], dtype=np.int64),
        test=np.arange(holdout_start, num_windows),
    )


def retrain_challenger(
    champion_dir: str | Path,
    history: TrafficSeries,
    spec: RetrainSpec | None = None,
    seed: int = 0,
    workdir: str | Path = "challenger",
    recorder: RunRecorder | None = None,
) -> RetrainResult:
    """Fine-tune the champion on recent history; save the challenger.

    Emits ``mlops_retrain_start`` / ``mlops_retrain_end`` events and
    never raises for a failed training run — see module docstring.
    """
    spec = spec if spec is not None else RetrainSpec()
    started = time.perf_counter()

    def emit(kind: str, **fields) -> None:
        if recorder is not None:
            recorder.event(kind, **fields)

    try:
        challenger = load_model(champion_dir)
        if challenger.scalers is None:
            raise ValueError("champion checkpoint lacks scalers; cannot fine-tune")
        config = challenger.features
        dataset = TrafficDataset(
            history,
            config,
            split=SplitIndices(  # placeholder; replaced once num_windows known
                train=np.array([0]), validation=np.array([], dtype=np.int64), test=np.array([1])
            ),
            scalers=challenger.scalers,
        )
        num_windows = dataset.features.num_windows
        holdout = max(spec.min_holdout, int(round(num_windows * spec.holdout_fraction)))
        gap = config.alpha + config.beta
        if num_windows < max(spec.min_windows, holdout + gap + spec.batch_size // 2):
            emit(
                "mlops_retrain_end",
                status="insufficient_history",
                num_windows=num_windows,
                duration_s=time.perf_counter() - started,
            )
            return RetrainResult(
                status="insufficient_history",
                seed=seed,
                num_windows=num_windows,
                duration_s=time.perf_counter() - started,
                error=f"only {num_windows} windows of history",
            )
        dataset.split = _time_ordered_split(num_windows, holdout, gap)

        emit("mlops_retrain_start", seed=seed, num_windows=num_windows, epochs=spec.epochs)
        train_spec = TrainSpec(
            learning_rate=spec.learning_rate,
            epochs=spec.epochs,
            batch_size=spec.batch_size,
            max_steps_per_epoch=spec.max_steps_per_epoch,
            compile=spec.compile,
            seed=seed,
        )
        if spec.workers > 1:
            trainer: SupervisedTrainer = DataParallelTrainer(
                challenger.predictor, train_spec, workers=spec.workers
            )
        else:
            trainer = SupervisedTrainer(challenger.predictor, train_spec)
        challenger.history = trainer.fit(dataset, recorder=recorder)
        challenger.reference_profile = ReferenceProfile.from_series(history)
        challenger_dir = save_model(challenger, Path(workdir))
    except Exception as exc:  # a dead retrainer must not kill serving
        duration = time.perf_counter() - started
        emit("mlops_retrain_end", status="failed", num_windows=0, duration_s=duration)
        return RetrainResult(
            status="failed", seed=seed, duration_s=duration, error=f"{type(exc).__name__}: {exc}"
        )

    duration = time.perf_counter() - started
    emit("mlops_retrain_end", status="ok", num_windows=num_windows, duration_s=duration)
    return RetrainResult(
        status="ok",
        seed=seed,
        num_windows=num_windows,
        duration_s=duration,
        challenger_dir=challenger_dir,
        dataset=dataset,
        holdout=dataset.split.test,
    )
