"""Champion/challenger shadow evaluation with a pinned promotion rule.

The held-out tail of live windows (the newest data, which the
challenger never trained on) is replayed through both checkpoints, and
per-regime MAE/RMSE is computed exactly as the paper's evaluation does
(:func:`repro.metrics.regimes.classify_regimes`).  The decision rule is
pinned (DESIGN.md §14):

* **promote** iff the challenger improves whole-set MAE by at least
  ``min_rel_improvement`` (relative), **and**
* no regime with at least ``min_regime_samples`` held-out samples
  regresses by more than ``max_regime_regression`` (relative) — a
  challenger that buys average accuracy by giving up abrupt-change
  accuracy is exactly the failure mode the paper's regime split exists
  to expose.

One ``mlops_shadow`` event records the verdict and the numbers behind
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.model import APOTS
from ..data.dataset import TrafficDataset
from ..metrics.errors import all_errors
from ..metrics.regimes import classify_regimes
from ..obs import RunRecorder

__all__ = ["PromotionRule", "PromotionDecision", "ShadowReport", "evaluate_shadow"]


@dataclass(frozen=True)
class PromotionRule:
    """The pinned decision rule (see module docstring)."""

    min_rel_improvement: float = 0.02  # challenger must beat champion by >= 2 %
    max_regime_regression: float = 0.15  # no qualifying regime may regress > 15 %
    min_regime_samples: int = 10  # regimes thinner than this are advisory only

    def __post_init__(self):
        if self.min_rel_improvement < 0:
            raise ValueError("min_rel_improvement must be non-negative")
        if self.max_regime_regression < 0:
            raise ValueError("max_regime_regression must be non-negative")


@dataclass(frozen=True)
class PromotionDecision:
    promote: bool
    reason: str
    rel_improvement: float


@dataclass
class ShadowReport:
    """Both models' held-out errors plus the decision."""

    decision: PromotionDecision
    num_samples: int
    champion: dict[str, dict[str, float]] = field(default_factory=dict)
    challenger: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def promote(self) -> bool:
        return self.decision.promote


def _predict_kmh(model: APOTS, dataset: TrafficDataset, indices: np.ndarray) -> np.ndarray:
    batch = dataset.batch(indices)
    scaled = model.predictor.predict(batch.images, batch.day_types, batch.flat)
    return dataset.kmh(scaled)


def evaluate_shadow(
    champion: APOTS,
    challenger: APOTS,
    dataset: TrafficDataset,
    indices: np.ndarray,
    rule: PromotionRule | None = None,
    recorder: RunRecorder | None = None,
) -> ShadowReport:
    """Replay held-out windows through both models and decide.

    ``dataset`` must be scaled with the scalers both models share (the
    retrainer guarantees this); ``indices`` is the held-out window set.
    """
    rule = rule if rule is not None else PromotionRule()
    indices = np.asarray(indices)
    if len(indices) == 0:
        raise ValueError("shadow evaluation needs at least one held-out window")

    targets_kmh = dataset.features.targets_kmh[indices]
    last_input_kmh = dataset.features.last_input_kmh[indices]
    masks = classify_regimes(last_input_kmh, targets_kmh)

    def regime_errors(predictions: np.ndarray) -> dict[str, dict[str, float]]:
        report = {}
        for regime, mask in masks.as_dict().items():
            if mask.sum() == 0:
                report[regime] = {"mae": float("nan"), "rmse": float("nan"), "mape": float("nan")}
            else:
                report[regime] = all_errors(predictions[mask], targets_kmh[mask])
        return report

    champion_pred = _predict_kmh(champion, dataset, indices)
    challenger_pred = _predict_kmh(challenger, dataset, indices)
    champion_errors = regime_errors(champion_pred)
    challenger_errors = regime_errors(challenger_pred)

    champion_mae = champion_errors["whole"]["mae"]
    challenger_mae = challenger_errors["whole"]["mae"]
    rel_improvement = (champion_mae - challenger_mae) / max(champion_mae, 1e-9)

    promote = True
    if rel_improvement < rule.min_rel_improvement:
        promote = False
        reason = (
            f"rel improvement {rel_improvement:.3f} below required "
            f"{rule.min_rel_improvement:.3f}"
        )
    else:
        reason = f"rel improvement {rel_improvement:.3f} >= {rule.min_rel_improvement:.3f}"
        counts = masks.counts()
        for regime in ("normal", "abrupt_acc", "abrupt_dec"):
            if counts[regime] < rule.min_regime_samples:
                continue
            regression = (
                challenger_errors[regime]["mae"] - champion_errors[regime]["mae"]
            ) / max(champion_errors[regime]["mae"], 1e-9)
            if regression > rule.max_regime_regression:
                promote = False
                reason = (
                    f"regime {regime} regresses {regression:.3f} "
                    f"(> {rule.max_regime_regression:.3f}) despite whole-set gain"
                )
                break

    decision = PromotionDecision(promote=promote, reason=reason, rel_improvement=rel_improvement)
    if recorder is not None:
        recorder.event(
            "mlops_shadow",
            champion_mae=champion_mae,
            challenger_mae=challenger_mae,
            rel_improvement=rel_improvement,
            num_samples=int(len(indices)),
            promote=promote,
            reason=reason,
        )
    return ShadowReport(
        decision=decision,
        num_samples=int(len(indices)),
        champion=champion_errors,
        challenger=challenger_errors,
    )
