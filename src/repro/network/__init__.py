"""``repro.network`` — city-scale road-graph scenario engine.

Generalises the linear corridor to a directed road graph: junction
topology (:mod:`~repro.network.graph`), gravity-model OD demand
(:mod:`~repro.network.demand`), wave propagation with queue spillback
(:mod:`~repro.network.waves`), declarative scenario configs
(:mod:`~repro.network.scenarios`), network KPIs
(:mod:`~repro.network.kpis`) and graph-aware fleet shard boundaries
(:mod:`~repro.network.sharding`).

The engine emits ordinary :class:`~repro.traffic.types.TrafficSeries`
objects, so the existing feature pipeline, trainers, serving stack and
fleet consume network scenarios unchanged; a corridor embedded via
:func:`from_corridor` reproduces the corridor simulator bitwise.
"""

from .demand import (
    Zone,
    assign_od_to_segments,
    day_demand_scale,
    gravity_od_matrix,
    segment_demand_weights,
    zones_from_graph,
)
from .features import graph_feature_config, graph_window_layout
from .graph import Junction, RoadGraph, from_corridor, grid_city, ring_and_spokes
from .kpis import NetworkKpis, compare_kpis, compute_kpis, invert_congestion_demand
from .scenarios import (
    EventPulse,
    IncidentCascade,
    ModifierSchedule,
    Scenario,
    WeatherFront,
    compile_scenario,
)
from .sharding import crossing_edges, partition_starts
from .stress import StressPhase, degradation_table, phase_error_table, scenario_phases
from .waves import NetworkSimulator, simulate_network

__all__ = [
    "Junction",
    "RoadGraph",
    "grid_city",
    "ring_and_spokes",
    "from_corridor",
    "Zone",
    "zones_from_graph",
    "gravity_od_matrix",
    "day_demand_scale",
    "assign_od_to_segments",
    "segment_demand_weights",
    "IncidentCascade",
    "EventPulse",
    "WeatherFront",
    "Scenario",
    "ModifierSchedule",
    "compile_scenario",
    "NetworkSimulator",
    "simulate_network",
    "NetworkKpis",
    "invert_congestion_demand",
    "compute_kpis",
    "compare_kpis",
    "crossing_edges",
    "partition_starts",
    "graph_window_layout",
    "graph_feature_config",
    "StressPhase",
    "scenario_phases",
    "phase_error_table",
    "degradation_table",
]
