"""Zone-based origin–destination demand via a gravity model.

The corridor simulator models demand as one shared diurnal profile plus
a per-segment bias — good enough for a line, but a network needs to know
*where* trips concentrate: the SUMO-style pipeline the ROADMAP cites
builds an OD matrix first and loads the network by routing it.

This module follows that shape deterministically:

1. :func:`zones_from_graph` gives each of the graph's demand zones a
   centroid (mean member-segment midpoint) and seeded production /
   attraction masses.
2. :func:`gravity_od_matrix` fills the OD matrix with the classic
   gravity form ``T_ij ∝ P_i * A_j / d_ij^deterrence`` (unit-normalised
   so it composes with the corridor's demand-fraction scale).
3. :func:`assign_od_to_segments` routes every zone pair along the
   free-flow shortest path (:mod:`repro.routing` Dijkstra over
   :meth:`RoadGraph.adjacency`) and accumulates per-segment load.
4. :func:`segment_demand_weights` softens the loads into multiplicative
   demand weights (mean 1.0) that
   :class:`repro.network.waves.NetworkSimulator` applies on top of the
   corridor's shared diurnal profile.

Day-type and event modifiers reuse :mod:`repro.traffic.calendar`:
:func:`day_demand_scale` mirrors the corridor's weekday/weekend/holiday
scaling, and stadium-event pulses live in
:mod:`repro.network.scenarios` (they are schedule modifiers, not OD
structure).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

import numpy as np

from ..routing.paths import dijkstra
from ..traffic.calendar import is_holiday, is_weekend
from ..traffic.types import SimulationConfig
from .graph import RoadGraph

__all__ = [
    "Zone",
    "zones_from_graph",
    "gravity_od_matrix",
    "day_demand_scale",
    "assign_od_to_segments",
    "segment_demand_weights",
]


@dataclass(frozen=True)
class Zone:
    """One traffic analysis zone: masses for the gravity model."""

    zone_id: int
    name: str
    centroid: tuple[float, float]
    population: float  # production mass (trips originate here)
    attraction: float  # attraction mass (trips end here)

    def __post_init__(self):
        if self.population <= 0 or self.attraction <= 0:
            raise ValueError("zone masses must be positive")


def zones_from_graph(graph: RoadGraph, seed: int = 0) -> tuple[Zone, ...]:
    """Build the graph's zones with seeded masses.

    Centroids are the mean midpoints of each zone's member segments;
    population and attraction are drawn from one seeded rng in zone-id
    order, so the same ``(graph, seed)`` always yields the same zones.
    A zone with no member segments gets the graph's overall centroid
    (it can still attract through trips).
    """
    rng = np.random.default_rng(seed)
    positions = graph.segment_positions()
    zone_ids = np.asarray(graph.zone_of)
    zones = []
    for zone_id in range(graph.num_zones):
        members = positions[zone_ids == zone_id]
        centroid = members.mean(axis=0) if len(members) else positions.mean(axis=0)
        zones.append(
            Zone(
                zone_id=zone_id,
                name=f"zone-{zone_id:02d}",
                centroid=(float(centroid[0]), float(centroid[1])),
                population=float(rng.uniform(20_000.0, 120_000.0)),
                attraction=float(rng.uniform(15_000.0, 100_000.0)),
            )
        )
    return tuple(zones)


def gravity_od_matrix(
    zones: tuple[Zone, ...] | list[Zone],
    deterrence: float = 1.4,
    min_distance_km: float = 1.0,
) -> np.ndarray:
    """The gravity-model OD matrix, normalised to sum to 1.

    ``T_ij = P_i * A_j / max(d_ij, min_distance)^deterrence`` with the
    diagonal zeroed (intra-zonal trips never load inter-zone paths).
    Normalisation makes the matrix a *distribution* of inter-zonal
    demand, so absolute trip volume stays a property of the simulation
    config, not the geography.
    """
    if len(zones) < 1:
        raise ValueError("need at least one zone")
    if deterrence <= 0:
        raise ValueError("deterrence must be positive")
    centroids = np.array([z.centroid for z in zones])
    production = np.array([z.population for z in zones])
    attraction = np.array([z.attraction for z in zones])
    distance = np.linalg.norm(centroids[:, None, :] - centroids[None, :, :], axis=2)
    distance = np.maximum(distance, min_distance_km)
    od = production[:, None] * attraction[None, :] / distance**deterrence
    np.fill_diagonal(od, 0.0)
    total = od.sum()
    if total <= 0:
        # Single zone: no inter-zonal demand at all.
        return np.zeros_like(od)
    return od / total


def day_demand_scale(day: dt.date, config: SimulationConfig) -> float:
    """The corridor's day-type demand scaling, applied to OD volume.

    Weekday 1.0, weekend ``weekend_demand_scale``, holiday
    ``holiday_demand_scale`` — the same calendar modifiers the corridor
    demand profile uses, so network and corridor demand agree on what a
    holiday does.
    """
    if is_holiday(day, config.holidays):
        return config.holiday_demand_scale
    if is_weekend(day):
        return config.weekend_demand_scale
    return 1.0


def _zone_representatives(graph: RoadGraph) -> dict[int, int]:
    """Lowest member segment id per zone (the routing anchor)."""
    representatives: dict[int, int] = {}
    for segment, zone in enumerate(graph.zone_of):
        if zone not in representatives:
            representatives[zone] = segment
    return representatives


def assign_od_to_segments(
    graph: RoadGraph,
    od: np.ndarray,
    *,
    min_share: float = 1e-4,
) -> np.ndarray:
    """Route the OD matrix onto segments along free-flow shortest paths.

    Every zone pair with at least ``min_share`` of total demand is
    routed from the origin zone's representative segment to the
    destination's; each segment on the path accumulates the pair's
    share.  Unreachable pairs are skipped (a disconnected outer spur
    should not crash demand assignment).  Returns the (num_segments,)
    load vector (sums to ≈ the routed share, before any normalisation).
    """
    od = np.asarray(od, dtype=np.float64)
    if od.shape != (graph.num_zones, graph.num_zones):
        raise ValueError(
            f"od must be ({graph.num_zones}, {graph.num_zones}), got {od.shape}"
        )
    loads = np.zeros(len(graph))
    representatives = _zone_representatives(graph)
    adjacency = graph.adjacency()
    distances: dict[int, tuple[dict[int, float], dict[int, int]]] = {}
    for origin in range(graph.num_zones):
        if origin not in representatives:
            continue
        row = od[origin]
        if not (row >= min_share).any():
            continue
        source = representatives[origin]
        if source not in distances:
            distances[source] = dijkstra(adjacency, source)
        distance, parent = distances[source]
        for destination in range(graph.num_zones):
            share = float(row[destination])
            if share < min_share or destination == origin:
                continue
            target = representatives.get(destination)
            if target is None or target not in distance:
                continue
            path = [target]
            while path[-1] != source:
                path.append(parent[path[-1]])
            loads[path] += share
    return loads


def segment_demand_weights(
    graph: RoadGraph,
    od: np.ndarray,
    *,
    spread: float = 0.35,
    floor: float = 0.6,
    ceiling: float = 1.6,
) -> np.ndarray:
    """Soften OD loads into mean-1.0 multiplicative demand weights.

    ``w_s = 1 + spread * (load_s / mean_load - 1)`` clipped to
    ``[floor, ceiling]``: heavily routed segments run hotter than the
    shared diurnal profile, bypassed ones cooler, and the network-wide
    mean stays anchored so corridor-calibrated congestion knees keep
    their meaning.  With no routable demand every weight is 1.
    """
    if not 0.0 <= spread <= 1.0:
        raise ValueError("spread must be in [0, 1]")
    loads = assign_od_to_segments(graph, od)
    mean = loads.mean()
    if mean <= 0:
        return np.ones(len(graph))
    weights = 1.0 + spread * (loads / mean - 1.0)
    return np.clip(weights, floor, ceiling)
