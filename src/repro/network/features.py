"""Neighbourhood export: from a :class:`RoadGraph` to a window layout.

The bridge between the network engine and the feature pipeline: collect
every segment's ``k_hop_neighbourhood`` and hand the sorted sets to
:meth:`repro.data.GraphWindowLayout.from_neighbourhoods`, which fixes
the canonical padded row layout (lower ids right-aligned below the
target row, upper ids left-aligned above, ``-1`` padding elsewhere).

Determinism: ``k_hop_neighbourhood`` returns sorted ids and the layout
rule is a pure function of those sets, so the same graph and ``k``
always produce the same layout, bit for bit (pinned by the property
suite in ``tests/data/test_graph_features.py``).
"""

from __future__ import annotations

from ..data.graph_features import GraphFeatureConfig, GraphWindowLayout
from .graph import RoadGraph

__all__ = ["graph_window_layout", "graph_feature_config"]


def graph_window_layout(graph: RoadGraph, k: int) -> GraphWindowLayout:
    """The canonical k-hop window layout of ``graph``.

    On a :func:`from_corridor` path graph with ``len >= 2k + 1`` the
    layout has ``target_row == k`` and ``num_rows == 2k + 1``, and every
    interior segment's row list is ``[s - k, ..., s + k]`` — exactly the
    corridor's ``adjacent_indices(k)``.
    """
    n = len(graph)
    hoods = [graph.k_hop_neighbourhood(s, k) for s in range(n)]
    return GraphWindowLayout.from_neighbourhoods(hoods, num_segments=n, k=k)


def graph_feature_config(
    graph: RoadGraph,
    k: int,
    *,
    alpha: int = 12,
    beta: int = 1,
) -> GraphFeatureConfig:
    """Convenience: layout + window geometry in one call."""
    return GraphFeatureConfig(layout=graph_window_layout(graph, k), alpha=alpha, beta=beta)
