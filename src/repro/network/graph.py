"""Directed road graphs: the city-scale generalisation of the corridor.

The corridor is a *path*: segment ``s`` feeds segment ``s + 1`` and the
``±m`` index arithmetic of the feature pipeline doubles as its adjacency
structure.  A :class:`RoadGraph` keeps the same per-segment vocabulary
(:class:`~repro.traffic.types.RoadSegment`) but joins segments at
:class:`Junction` nodes — merges, diverges, signal-controlled arterial
crossings, ramps — so congestion can propagate through a network instead
of along a line.

**Segment ids are BFS-ordered by construction.**  Every generator
relabels its segments in breadth-first discovery order over the
undirected segment-adjacency graph, so a *contiguous id range is a
BFS block*: graph-local segments get nearby ids.  That single invariant
is what lets the downstream stack stay unchanged —

* the feature pipeline's ``±m`` index windows read graph-local context,
* :class:`repro.fleet.router.ShardMap` keeps its contiguous-range
  partition (graph partitioning reduces to choosing the cut *positions*,
  see :mod:`repro.network.sharding`), and
* a corridor is exactly the degenerate case: :func:`from_corridor`
  embeds it as a path graph whose BFS order is the identity.

Determinism: generators draw all attributes from one seeded
``np.random.default_rng`` in construction order, and the BFS relabelling
breaks ties by ascending raw id — the same call always yields the same
graph, bit for bit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..traffic.types import Corridor, RoadSegment

__all__ = [
    "Junction",
    "RoadGraph",
    "grid_city",
    "ring_and_spokes",
    "from_corridor",
]


@dataclass(frozen=True)
class Junction:
    """A node where segments meet.

    ``kind`` is a descriptive label derived from the junction's degree
    ("signal" for full arterial crossings, "merge"/"diverge" for
    three-way branches, "ramp" for two-way corners, "source"/"sink"/
    "through" for path endpoints and interiors).
    """

    junction_id: int
    kind: str
    x: float
    y: float


_JUNCTION_KINDS = ("source", "sink", "through", "ramp", "merge", "diverge", "signal")


@dataclass(frozen=True)
class RoadGraph:
    """Directed segments joined at junctions, with BFS-ordered ids.

    ``tails[i]`` / ``heads[i]`` are the junctions segment ``i`` leaves
    from and flows into.  ``zone_of[i]`` assigns each segment to a
    demand zone (see :mod:`repro.network.demand`).  ``corridor`` is set
    only by :func:`from_corridor` and marks the graph as a degenerate
    path: the network simulator delegates such graphs to the corridor
    engine so corridor output stays bitwise identical.
    """

    segments: tuple[RoadSegment, ...]
    junctions: tuple[Junction, ...]
    tails: tuple[int, ...]
    heads: tuple[int, ...]
    zone_of: tuple[int, ...]
    num_zones: int
    target_index: int
    corridor: Corridor | None = None
    _downstream: tuple[tuple[int, ...], ...] = field(init=False, repr=False, compare=False)
    _upstream: tuple[tuple[int, ...], ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        n = len(self.segments)
        if n < 1:
            raise ValueError("graph needs at least one segment")
        if not (len(self.tails) == len(self.heads) == len(self.zone_of) == n):
            raise ValueError("tails/heads/zone_of must align with segments")
        for index, segment in enumerate(self.segments):
            if segment.segment_id != index:
                raise ValueError(
                    f"segment at position {index} carries id {segment.segment_id}; "
                    f"ids must equal positions (BFS order)"
                )
        num_junctions = len(self.junctions)
        for i in range(n):
            if not (0 <= self.tails[i] < num_junctions and 0 <= self.heads[i] < num_junctions):
                raise ValueError(f"segment {i} references an unknown junction")
            if self.tails[i] == self.heads[i]:
                raise ValueError(f"segment {i} is a self-loop")
        if self.num_zones < 1:
            raise ValueError("num_zones must be positive")
        if any(not 0 <= z < self.num_zones for z in self.zone_of):
            raise ValueError("zone_of entries must be in 0..num_zones-1")
        if not 0 <= self.target_index < n:
            raise ValueError("target_index out of range")

        by_tail: dict[int, list[int]] = {}
        by_head: dict[int, list[int]] = {}
        for i in range(n):
            by_tail.setdefault(self.tails[i], []).append(i)
            by_head.setdefault(self.heads[i], []).append(i)
        downstream = []
        upstream = []
        for i in range(n):
            # Exclude the reverse carriageway of a two-way link: a
            # queue on the eastbound side neither receives from nor
            # spills onto the westbound side, and routes must not
            # U-turn at the far junction.
            down = tuple(
                s
                for s in sorted(by_tail.get(self.heads[i], ()))
                if not (self.tails[s] == self.heads[i] and self.heads[s] == self.tails[i])
            )
            up = tuple(
                s
                for s in sorted(by_head.get(self.tails[i], ()))
                if not (self.tails[s] == self.heads[i] and self.heads[s] == self.tails[i])
            )
            downstream.append(down)
            upstream.append(up)
        object.__setattr__(self, "_downstream", tuple(downstream))
        object.__setattr__(self, "_upstream", tuple(upstream))

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.segments)

    def downstream_of(self, segment_id: int) -> tuple[int, ...]:
        """Segments fed by ``segment_id`` (sorted; excludes the reverse lane)."""
        return self._downstream[segment_id]

    def upstream_of(self, segment_id: int) -> tuple[int, ...]:
        """Segments feeding ``segment_id`` (sorted; excludes the reverse lane)."""
        return self._upstream[segment_id]

    def neighbours(self, segment_id: int) -> tuple[int, ...]:
        """Undirected adjacency: upstream ∪ downstream, sorted."""
        return tuple(
            sorted(set(self._downstream[segment_id]) | set(self._upstream[segment_id]))
        )

    def k_hop_neighbourhood(self, segment_id: int, k: int) -> list[int]:
        """Sorted segment ids within ``k`` undirected hops (incl. itself).

        The graph replacement for the corridor's ``±m`` index window:
        on a :func:`from_corridor` graph this is exactly
        ``[segment_id - k, ..., segment_id + k]`` clipped to the ends.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        if not 0 <= segment_id < len(self.segments):
            raise ValueError(f"segment {segment_id} outside graph 0..{len(self.segments) - 1}")
        seen = {segment_id}
        frontier = [segment_id]
        for _ in range(k):
            nxt = []
            for seg in frontier:
                for other in self.neighbours(seg):
                    if other not in seen:
                        seen.add(other)
                        nxt.append(other)
            frontier = nxt
        return sorted(seen)

    def adjacency(self) -> dict[int, tuple[tuple[int, float], ...]]:
        """Weighted digraph for :mod:`repro.routing` shortest paths.

        The weight of edge ``i -> j`` is the free-flow traversal time of
        ``j`` in minutes, so a path's cost is the free-flow travel time
        of everything after its first segment.
        """
        return {
            i: tuple(
                (j, self.segments[j].length_km / self.segments[j].free_flow_kmh * 60.0)
                for j in self._downstream[i]
            )
            for i in range(len(self.segments))
        }

    def segment_positions(self) -> np.ndarray:
        """(num_segments, 2) midpoint coordinates in km."""
        positions = np.empty((len(self.segments), 2))
        for i in range(len(self.segments)):
            tail = self.junctions[self.tails[i]]
            head = self.junctions[self.heads[i]]
            positions[i] = ((tail.x + head.x) / 2.0, (tail.y + head.y) / 2.0)
        return positions

    def is_bfs_ordered(self) -> bool:
        """Whether ids follow BFS discovery order (the pinned invariant)."""
        return _bfs_order(len(self.segments), self.neighbours) == list(
            range(len(self.segments))
        )

    # ------------------------------------------------------------------
    # Corridor views
    # ------------------------------------------------------------------
    def as_corridor(self) -> Corridor:
        """The corridor container the :class:`TrafficSeries` rides on.

        For a :func:`from_corridor` graph this is the original corridor;
        otherwise it wraps the BFS-ordered segments so the existing
        pipeline (which only needs segment count, lengths and a target
        index) consumes network output unchanged.
        """
        if self.corridor is not None:
            return self.corridor
        return Corridor(segments=self.segments, target_index=self.target_index)

    def path_corridor(self, path: list[int] | tuple[int, ...]) -> Corridor:
        """Embed a route (consecutive connected segments) as a corridor.

        Used to train corridor-shaped models on a subgraph: the path's
        segments are renumbered 0..len-1 in traversal order with the
        target in the middle.  Raises when consecutive entries are not
        connected tail-to-head.
        """
        if len(path) < 1:
            raise ValueError("path must contain at least one segment")
        for a, b in zip(path, path[1:]):
            if b not in self._downstream[a]:
                raise ValueError(f"segments {a} -> {b} are not connected")
        renumbered = tuple(
            RoadSegment(
                segment_id=pos,
                name=self.segments[seg].name,
                length_km=self.segments[seg].length_km,
                free_flow_kmh=self.segments[seg].free_flow_kmh,
                capacity_vph=self.segments[seg].capacity_vph,
            )
            for pos, seg in enumerate(path)
        )
        return Corridor(segments=renumbered, target_index=len(path) // 2)


# ----------------------------------------------------------------------
# BFS relabelling
# ----------------------------------------------------------------------
def _bfs_order(num_segments: int, neighbours) -> list[int]:
    """BFS discovery order over ``neighbours`` (ascending-id tie-break).

    Disconnected components are appended in ascending root order, so the
    result always covers every segment.
    """
    order: list[int] = []
    seen: set[int] = set()
    for root in range(num_segments):
        if root in seen:
            continue
        seen.add(root)
        queue: deque[int] = deque([root])
        while queue:
            node = queue.popleft()
            order.append(node)
            for nxt in neighbours(node):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
    return order


def _assemble(
    names: list[str],
    lengths: list[float],
    free_flows: list[float],
    capacities: list[float],
    tails: list[int],
    heads: list[int],
    junctions: list[Junction],
    zone_of: list[int],
    num_zones: int,
    target_raw: int,
    corridor: Corridor | None = None,
) -> RoadGraph:
    """Relabel raw segments into BFS order and build the graph.

    The BFS runs over the *flow* adjacency (upstream ∪ downstream,
    reverse lane excluded) — the same relation
    :meth:`RoadGraph.neighbours` exposes — so re-running BFS on the
    relabelled graph reproduces the identity (``is_bfs_ordered``):
    both passes process parents in discovery order and append each
    parent's unseen neighbours in the order that assigned their labels.
    """

    def build(order: list[int]) -> RoadGraph:
        new_of_old = {old: new for new, old in enumerate(order)}
        segments = tuple(
            RoadSegment(
                segment_id=new,
                name=names[old],
                length_km=lengths[old],
                free_flow_kmh=free_flows[old],
                capacity_vph=capacities[old],
            )
            for new, old in enumerate(order)
        )
        return RoadGraph(
            segments=segments,
            junctions=tuple(junctions),
            tails=tuple(tails[old] for old in order),
            heads=tuple(heads[old] for old in order),
            zone_of=tuple(zone_of[old] for old in order),
            num_zones=num_zones,
            target_index=new_of_old[target_raw],
            corridor=corridor,
        )

    provisional = build(list(range(len(names))))
    order = _bfs_order(len(names), provisional.neighbours)
    if order == list(range(len(names))):
        return provisional
    return build(order)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def grid_city(
    rows: int,
    cols: int,
    *,
    zone_rows: int = 2,
    zone_cols: int = 2,
    spacing_km: float = 1.8,
    seed: int = 0,
) -> RoadGraph:
    """A signal-controlled arterial grid of ``rows x cols`` junctions.

    Every neighbouring junction pair is linked by a two-way street (two
    directed segments), giving ``2 * (rows*(cols-1) + cols*(rows-1))``
    segments.  Zones tile the junction lattice as a ``zone_rows x
    zone_cols`` grid; a segment belongs to its tail junction's zone.
    The target is the segment nearest the city centre.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid_city needs at least 2x2 junctions")
    if zone_rows < 1 or zone_cols < 1:
        raise ValueError("zone grid must be at least 1x1")
    rng = np.random.default_rng(seed)

    junctions: list[Junction] = []
    for r in range(rows):
        for c in range(cols):
            degree = sum((r > 0, r < rows - 1, c > 0, c < cols - 1))
            kind = {2: "ramp", 3: "merge", 4: "signal"}[degree]
            junctions.append(
                Junction(junction_id=r * cols + c, kind=kind, x=c * spacing_km, y=r * spacing_km)
            )

    def zone_of_junction(r: int, c: int) -> int:
        return (r * zone_rows // rows) * zone_cols + (c * zone_cols // cols)

    names: list[str] = []
    lengths: list[float] = []
    free_flows: list[float] = []
    capacities: list[float] = []
    tails: list[int] = []
    heads: list[int] = []
    zone_of: list[int] = []

    def add_two_way(ra: int, ca: int, rb: int, cb: int) -> None:
        a, b = ra * cols + ca, rb * cols + cb
        length = float(spacing_km * rng.uniform(0.85, 1.15))
        free_flow = float(rng.uniform(52.0, 68.0))
        capacity = float(rng.uniform(1500.0, 2100.0))
        for tail, head in ((a, b), (b, a)):
            tr, tc = divmod(tail, cols)
            names.append(f"grid-{tail:03d}-{head:03d}")
            lengths.append(length)
            free_flows.append(free_flow)
            capacities.append(capacity)
            tails.append(tail)
            heads.append(head)
            zone_of.append(zone_of_junction(tr, tc))

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                add_two_way(r, c, r, c + 1)
            if r + 1 < rows:
                add_two_way(r, c, r + 1, c)

    centre = np.array([(cols - 1) * spacing_km / 2.0, (rows - 1) * spacing_km / 2.0])
    midpoints = np.array(
        [
            (
                (junctions[t].x + junctions[h].x) / 2.0,
                (junctions[t].y + junctions[h].y) / 2.0,
            )
            for t, h in zip(tails, heads)
        ]
    )
    target_raw = int(np.argmin(np.linalg.norm(midpoints - centre, axis=1)))

    return _assemble(
        names,
        lengths,
        free_flows,
        capacities,
        tails,
        heads,
        junctions,
        zone_of,
        num_zones=zone_rows * zone_cols,
        target_raw=target_raw,
    )


def ring_and_spokes(
    num_spokes: int = 6,
    *,
    ring_radius_km: float = 3.0,
    outer_radius_km: float = 6.0,
    seed: int = 0,
) -> RoadGraph:
    """An orbital expressway with radial feeders: hub, ring, outer spurs.

    Junctions: one hub (the CBD), ``num_spokes`` ring interchanges, and
    ``num_spokes`` outer terminals.  Two-way links: hub↔ring spokes
    (on/off-ramp arterials), consecutive ring arcs (fast orbital), and
    ring↔outer spurs (feeder roads) — ``6 * num_spokes`` segments.
    Zone 0 is the hub; ring/outer sector ``k`` forms zone ``k + 1``.
    """
    if num_spokes < 3:
        raise ValueError("ring_and_spokes needs at least 3 spokes")
    rng = np.random.default_rng(seed)

    junctions = [Junction(junction_id=0, kind="signal", x=0.0, y=0.0)]
    for k in range(num_spokes):
        angle = 2.0 * np.pi * k / num_spokes
        junctions.append(
            Junction(
                junction_id=1 + k,
                kind="merge",
                x=float(ring_radius_km * np.cos(angle)),
                y=float(ring_radius_km * np.sin(angle)),
            )
        )
    for k in range(num_spokes):
        angle = 2.0 * np.pi * k / num_spokes
        junctions.append(
            Junction(
                junction_id=1 + num_spokes + k,
                kind="ramp",
                x=float(outer_radius_km * np.cos(angle)),
                y=float(outer_radius_km * np.sin(angle)),
            )
        )

    names: list[str] = []
    lengths: list[float] = []
    free_flows: list[float] = []
    capacities: list[float] = []
    tails: list[int] = []
    heads: list[int] = []
    zone_of: list[int] = []

    def sector_zone(junction_id: int) -> int:
        if junction_id == 0:
            return 0
        return 1 + (junction_id - 1) % num_spokes

    def add_two_way(a: int, b: int, length: float, ff_lo: float, ff_hi: float, cap_lo: float, cap_hi: float, label: str) -> None:
        length = float(length * rng.uniform(0.9, 1.1))
        free_flow = float(rng.uniform(ff_lo, ff_hi))
        capacity = float(rng.uniform(cap_lo, cap_hi))
        for tail, head in ((a, b), (b, a)):
            names.append(f"{label}-{tail:02d}-{head:02d}")
            lengths.append(length)
            free_flows.append(free_flow)
            capacities.append(capacity)
            tails.append(tail)
            heads.append(head)
            zone_of.append(sector_zone(tail))

    arc = 2.0 * ring_radius_km * np.sin(np.pi / num_spokes)
    for k in range(num_spokes):
        add_two_way(1 + k, 1 + (k + 1) % num_spokes, arc, 95.0, 105.0, 3600.0, 4400.0, "ring")
    for k in range(num_spokes):
        add_two_way(0, 1 + k, ring_radius_km, 62.0, 78.0, 2200.0, 2800.0, "spoke")
    for k in range(num_spokes):
        add_two_way(
            1 + k, 1 + num_spokes + k, outer_radius_km - ring_radius_km, 50.0, 66.0, 1400.0, 1900.0, "spur"
        )

    # Target: the first ring arc (the busy orbital near sector 0).
    return _assemble(
        names,
        lengths,
        free_flows,
        capacities,
        tails,
        heads,
        junctions,
        zone_of,
        num_zones=num_spokes + 1,
        target_raw=0,
    )


def from_corridor(corridor: Corridor) -> RoadGraph:
    """Embed a corridor as a degenerate path graph.

    Junction ``i`` sits at the cumulative length of the first ``i``
    segments; segment ``i`` runs junction ``i -> i + 1``.  The BFS order
    of a path from segment 0 is the identity, so ids, adjacency and the
    ``±m`` window semantics coincide exactly with the corridor's index
    arithmetic.  The returned graph carries ``corridor`` so
    :class:`repro.network.waves.NetworkSimulator` can delegate to the
    corridor engine (the bitwise-identity invariant pinned by tests).
    """
    n = len(corridor)
    junctions = []
    x = 0.0
    for i in range(n + 1):
        kind = "source" if i == 0 else ("sink" if i == n else "through")
        junctions.append(Junction(junction_id=i, kind=kind, x=x, y=0.0))
        if i < n:
            x += corridor.segments[i].length_km
    return _assemble(
        names=[s.name for s in corridor.segments],
        lengths=[s.length_km for s in corridor.segments],
        free_flows=[s.free_flow_kmh for s in corridor.segments],
        capacities=[s.capacity_vph for s in corridor.segments],
        tails=list(range(n)),
        heads=list(range(1, n + 1)),
        junctions=junctions,
        zone_of=[0] * n,
        num_zones=1,
        target_raw=corridor.target_index,
        corridor=corridor,
    )
