"""Network-level KPIs over a simulated speed field.

The corridor experiments score *forecasts* (MAE, abrupt-change recall);
a scenario engine needs to score the *traffic state itself* so that a
baseline run and a scenario run can be compared in operational terms.
This module computes the standard network measures:

* **VKT / VHT** — vehicle-kilometres and vehicle-hours travelled,
  reconstructed by inverting the congestion law back to a demand
  fraction and scaling by segment capacity (the engine's flow proxy);
* **mean speed by regime** — free-flow (``v/v_free ≥ 0.8``),
  congested (``≤ 0.5``) and transitional shares;
* **bottleneck ranking** — segments by total vehicle-hours of delay
  versus free flow;
* **spillback counts** — onsets where congestion crosses the queue
  threshold the wave engine spills at.

Everything is a pure function of a :class:`TrafficSeries` plus the
graph, so KPIs apply identically to baseline and scenario output, and
:func:`compare_kpis` reports the deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traffic.types import SimulationConfig, TrafficSeries
from .graph import RoadGraph
from .waves import SPILL_ONSET

__all__ = ["NetworkKpis", "invert_congestion_demand", "compute_kpis", "compare_kpis"]

_FREE_RATIO = 0.8
_CONGESTED_RATIO = 0.5


def invert_congestion_demand(config: SimulationConfig, speed_ratio: np.ndarray) -> np.ndarray:
    """Recover the demand fraction from an observed ``v / v_free`` ratio.

    Inverts :func:`repro.traffic.simulator.congestion_speed_factor`:
    ``f = 1 / (1 + (d/knee)^gamma * 0.9)`` ⇒
    ``d = knee * ((1/f - 1) / 0.9)^(1/gamma)``.  Ratios are clipped away
    from 0 and 1 so the inversion stays finite; the result is the
    engine's flow proxy (fraction of capacity) for KPI purposes.
    """
    ratio = np.clip(speed_ratio, 1e-3, 0.999)
    return config.congestion_knee * ((1.0 / ratio - 1.0) / 0.9) ** (1.0 / config.congestion_gamma)


@dataclass(frozen=True)
class NetworkKpis:
    """Aggregate network KPIs for one simulated run."""

    vkt: float  # vehicle-kilometres travelled
    vht: float  # vehicle-hours travelled
    mean_speed_kmh: float
    free_flow_share: float
    congested_share: float
    mean_speed_free_kmh: float
    mean_speed_congested_kmh: float
    total_delay_vh: float  # vehicle-hours lost vs free flow
    spillback_onsets: int
    bottlenecks: tuple[tuple[int, float], ...]  # (segment_id, delay_vh) desc

    def render(self) -> str:
        lines = [
            f"VKT                {self.vkt:,.0f} veh-km",
            f"VHT                {self.vht:,.0f} veh-h",
            f"mean speed         {self.mean_speed_kmh:.1f} km/h",
            f"free-flow share    {self.free_flow_share:.1%} @ {self.mean_speed_free_kmh:.1f} km/h",
            f"congested share    {self.congested_share:.1%} @ {self.mean_speed_congested_kmh:.1f} km/h",
            f"total delay        {self.total_delay_vh:,.0f} veh-h",
            f"spillback onsets   {self.spillback_onsets}",
        ]
        if self.bottlenecks:
            ranked = ", ".join(f"#{seg} ({delay:,.0f} veh-h)" for seg, delay in self.bottlenecks)
            lines.append(f"top bottlenecks    {ranked}")
        return "\n".join(lines)


def compute_kpis(
    graph: RoadGraph,
    series: TrafficSeries,
    config: SimulationConfig | None = None,
    *,
    top_k: int = 5,
) -> NetworkKpis:
    """Compute the KPI bundle for one run over ``graph``."""
    config = config if config is not None else SimulationConfig()
    speeds = series.speeds
    if speeds.shape[0] != len(graph):
        raise ValueError(
            f"series has {speeds.shape[0]} segments but graph has {len(graph)}"
        )
    free_flow = np.array([s.free_flow_kmh for s in graph.segments])[:, None]
    lengths = np.array([s.length_km for s in graph.segments])[:, None]
    capacity = np.array([s.capacity_vph for s in graph.segments])[:, None]
    interval_hours = series.interval_minutes / 60.0

    ratio = speeds / free_flow
    demand = invert_congestion_demand(config, ratio)
    flow_vph = demand * capacity  # vehicles per hour on each segment

    vkt_field = flow_vph * lengths * interval_hours  # veh-km per cell
    vht_field = vkt_field / np.maximum(speeds, 1e-6)  # veh-h per cell
    delay_field = vkt_field * (1.0 / np.maximum(speeds, 1e-6) - 1.0 / free_flow)
    delay_per_segment = delay_field.sum(axis=1)

    free_mask = ratio >= _FREE_RATIO
    congested_mask = ratio <= _CONGESTED_RATIO

    # Spillback onsets: upward crossings of the wave engine's queue
    # threshold, counted per segment-transition.
    congestion = 1.0 - ratio
    above = congestion > SPILL_ONSET
    onsets = int(np.sum(above[:, 1:] & ~above[:, :-1]) + np.sum(above[:, 0]))

    order = np.argsort(delay_per_segment)[::-1][:top_k]
    bottlenecks = tuple(
        (int(seg), float(delay_per_segment[seg])) for seg in order if delay_per_segment[seg] > 0
    )

    return NetworkKpis(
        vkt=float(vkt_field.sum()),
        vht=float(vht_field.sum()),
        mean_speed_kmh=float(speeds.mean()),
        free_flow_share=float(free_mask.mean()),
        congested_share=float(congested_mask.mean()),
        mean_speed_free_kmh=float(speeds[free_mask].mean()) if free_mask.any() else 0.0,
        mean_speed_congested_kmh=float(speeds[congested_mask].mean())
        if congested_mask.any()
        else 0.0,
        total_delay_vh=float(delay_field.sum()),
        spillback_onsets=onsets,
        bottlenecks=bottlenecks,
    )


def compare_kpis(baseline: NetworkKpis, scenario: NetworkKpis) -> dict[str, float]:
    """Scenario-minus-baseline deltas for the scalar KPIs.

    Because scenario compilation is deterministic and both runs share
    every random draw at the same seed, these deltas isolate the
    scenario's causal effect.
    """
    return {
        "vkt_delta": scenario.vkt - baseline.vkt,
        "vht_delta": scenario.vht - baseline.vht,
        "mean_speed_delta_kmh": scenario.mean_speed_kmh - baseline.mean_speed_kmh,
        "congested_share_delta": scenario.congested_share - baseline.congested_share,
        "total_delay_delta_vh": scenario.total_delay_vh - baseline.total_delay_vh,
        "spillback_onsets_delta": float(scenario.spillback_onsets - baseline.spillback_onsets),
    }
