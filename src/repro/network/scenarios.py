"""Declarative network scenarios compiled to per-tick modifier schedules.

A scenario is *data* — a named tuple of elements — and compilation turns
it into dense ``(segments, ticks)`` modifier arrays the wave engine
multiplies in.  Three element kinds cover the ISSUE's cases:

* :class:`IncidentCascade` — a seed incident whose shockwave triggers
  secondary incidents on upstream-adjacent segments at increasing
  delays, damped and split across incoming branches;
* :class:`EventPulse` — a stadium-style demand pulse at one zone, with
  a softer echo on the zone's 1-hop approach segments;
* :class:`WeatherFront` — a rain band sweeping the graph along a
  direction vector as a moving Gaussian mask.

Compilation is **purely deterministic** — no rng anywhere — which is
the property the baseline-vs-scenario comparison rests on: the engine
draws the *same* random demand noise, incidents and measurement noise
for both runs at the same seed, so every difference in the output is
attributable to the scenario schedule alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .graph import RoadGraph

__all__ = [
    "IncidentCascade",
    "EventPulse",
    "WeatherFront",
    "Scenario",
    "ModifierSchedule",
    "compile_scenario",
]


@dataclass(frozen=True)
class IncidentCascade:
    """A seed incident plus delayed secondary incidents spreading upstream.

    Wave 0 hits ``segment`` at ``start_step`` with multiplicative
    ``severity``; wave ``d`` (1..``cascade_depth``) hits the upstream
    segments ``d`` hops away at ``start_step + d * cascade_delay_steps``
    with the severity damped by ``cascade_decay**d`` and split evenly
    across incoming branches — the graph generalisation of the
    corridor's linear shockwave.
    """

    segment: int
    start_step: int
    severity: float = 0.45
    duration_steps: int = 12
    recovery_steps: int = 9
    cascade_depth: int = 2
    cascade_delay_steps: int = 3
    cascade_decay: float = 0.6

    def __post_init__(self):
        if not 0.0 < self.severity < 1.0:
            raise ValueError("severity must be in (0, 1)")
        if self.duration_steps < 1 or self.recovery_steps < 1:
            raise ValueError("duration and recovery must be positive")
        if self.cascade_depth < 0 or self.cascade_delay_steps < 0:
            raise ValueError("cascade depth/delay must be non-negative")
        if not 0.0 < self.cascade_decay <= 1.0:
            raise ValueError("cascade_decay must be in (0, 1]")


@dataclass(frozen=True)
class EventPulse:
    """A stadium-event demand pulse at one zone.

    Adds ``demand_boost`` (a capacity fraction, like the corridor's rain
    boost) to every segment of ``zone`` over the pulse window, ramping
    in and out over a quarter of the duration; 1-hop approach segments
    outside the zone get half the boost (arrivals queue on the way in).
    """

    zone: int
    start_step: int
    duration_steps: int
    demand_boost: float = 0.35

    def __post_init__(self):
        if self.duration_steps < 1:
            raise ValueError("duration must be positive")
        if not 0.0 < self.demand_boost <= 1.0:
            raise ValueError("demand_boost must be in (0, 1]")


@dataclass(frozen=True)
class WeatherFront:
    """A rain band sweeping across the graph along ``direction``.

    The band is a Gaussian of spatial scale ``width_km`` around a moving
    front line; it enters from one side at ``start_step`` and exits the
    other side ``duration_steps`` later.  Speeds drop by up to
    ``speed_drop`` (relative) under the core, and the swept intensity
    feeds the series' global precipitation channel weighted by network
    coverage.
    """

    start_step: int
    duration_steps: int
    direction: tuple[float, float] = (1.0, 0.0)
    width_km: float = 3.0
    intensity_mm: float = 0.8
    speed_drop: float = 0.22

    def __post_init__(self):
        if self.duration_steps < 2:
            raise ValueError("a front needs at least 2 steps to sweep")
        if abs(self.direction[0]) + abs(self.direction[1]) <= 0:
            raise ValueError("direction must be a non-zero vector")
        if self.width_km <= 0:
            raise ValueError("width_km must be positive")
        if not 0.0 <= self.speed_drop < 1.0:
            raise ValueError("speed_drop must be in [0, 1)")


@dataclass(frozen=True)
class Scenario:
    """A named bundle of scenario elements."""

    name: str
    elements: tuple[IncidentCascade | EventPulse | WeatherFront, ...]

    def __post_init__(self):
        if not self.name:
            raise ValueError("scenario needs a name")


@dataclass
class ModifierSchedule:
    """Dense per-tick modifiers a compiled scenario applies to the engine.

    ``speed_factor`` multiplies speeds (≤ 1), ``demand_boost`` adds
    capacity fractions to demand, ``event_flags`` marks directly hit
    segments (what an ITS event log would record), and
    ``precipitation_extra`` adds to the global precipitation channel.
    """

    speed_factor: np.ndarray  # (S, T), multiplicative, in (0, 1]
    demand_boost: np.ndarray  # (S, T), additive capacity fraction
    event_flags: np.ndarray  # (S, T), 0/1
    precipitation_extra: np.ndarray = field(default_factory=lambda: np.zeros(0))  # (T,)

    @staticmethod
    def identity(num_segments: int, total_steps: int) -> "ModifierSchedule":
        return ModifierSchedule(
            speed_factor=np.ones((num_segments, total_steps)),
            demand_boost=np.zeros((num_segments, total_steps)),
            event_flags=np.zeros((num_segments, total_steps)),
            precipitation_extra=np.zeros(total_steps),
        )


def _incident_profile(severity: float, duration_steps: int, recovery_steps: int) -> np.ndarray:
    """Severity for the active phase, then a linear recovery ramp to 1."""
    profile = np.ones(duration_steps + recovery_steps)
    profile[:duration_steps] = severity
    profile[duration_steps:] = np.linspace(severity, 1.0, recovery_steps + 1)[1:]
    return profile


def _apply_cascade(
    schedule: ModifierSchedule, graph: RoadGraph, cascade: IncidentCascade, total_steps: int
) -> None:
    if not 0 <= cascade.segment < len(graph):
        raise ValueError(f"cascade segment {cascade.segment} outside graph")
    # Wave strengths: depth 0 full, depth d damped and split per branch.
    waves: list[dict[int, float]] = [{cascade.segment: 1.0}]
    reached = {cascade.segment}
    for _ in range(cascade.cascade_depth):
        frontier: dict[int, float] = {}
        for segment, strength in sorted(waves[-1].items()):
            ups = graph.upstream_of(segment)
            if not ups:
                continue
            share = strength * cascade.cascade_decay / len(ups)
            for up in ups:
                if up in reached:
                    continue
                frontier[up] = max(frontier.get(up, 0.0), share)
        if not frontier:
            break
        reached |= set(frontier)
        waves.append(frontier)

    for depth, wave in enumerate(waves):
        start = cascade.start_step + depth * cascade.cascade_delay_steps
        if start >= total_steps:
            continue
        profile = _incident_profile(
            cascade.severity, cascade.duration_steps, cascade.recovery_steps
        )
        stop = min(start + len(profile), total_steps)
        window = profile[: stop - start]
        for segment, strength in sorted(wave.items()):
            damped = 1.0 - strength * (1.0 - window)
            schedule.speed_factor[segment, start:stop] = np.minimum(
                schedule.speed_factor[segment, start:stop], damped
            )
            active_stop = min(start + cascade.duration_steps, total_steps)
            schedule.event_flags[segment, start:active_stop] = 1.0


def _apply_pulse(
    schedule: ModifierSchedule, graph: RoadGraph, pulse: EventPulse, total_steps: int
) -> None:
    if not 0 <= pulse.zone < graph.num_zones:
        raise ValueError(f"pulse zone {pulse.zone} outside graph zones")
    start = pulse.start_step
    stop = min(start + pulse.duration_steps, total_steps)
    if start >= total_steps or stop <= start:
        return
    ramp = max(1, pulse.duration_steps // 4)
    envelope = np.ones(pulse.duration_steps)
    envelope[:ramp] = np.linspace(0.0, 1.0, ramp + 1)[1:]
    envelope[pulse.duration_steps - ramp :] = np.linspace(1.0, 0.0, ramp + 1)[:-1]
    envelope = envelope[: stop - start]

    members = [s for s in range(len(graph)) if graph.zone_of[s] == pulse.zone]
    approach: set[int] = set()
    for segment in members:
        approach.update(graph.neighbours(segment))
    approach -= set(members)
    for segment in members:
        schedule.demand_boost[segment, start:stop] += pulse.demand_boost * envelope
    for segment in sorted(approach):
        schedule.demand_boost[segment, start:stop] += 0.5 * pulse.demand_boost * envelope


def _apply_front(
    schedule: ModifierSchedule, graph: RoadGraph, front: WeatherFront, total_steps: int
) -> None:
    start = front.start_step
    stop = min(start + front.duration_steps, total_steps)
    if start >= total_steps or stop <= start:
        return
    direction = np.asarray(front.direction, dtype=np.float64)
    direction = direction / np.linalg.norm(direction)
    projection = graph.segment_positions() @ direction  # (S,)
    lo = projection.min() - 2.0 * front.width_km
    hi = projection.max() + 2.0 * front.width_km
    ticks = np.arange(start, stop)
    progress = (ticks - start) / (front.duration_steps - 1)
    centre = lo + (hi - lo) * progress  # (W,)
    local = np.exp(-0.5 * ((projection[:, None] - centre[None, :]) / front.width_km) ** 2)
    schedule.speed_factor[:, start:stop] = np.minimum(
        schedule.speed_factor[:, start:stop], 1.0 - front.speed_drop * local
    )
    schedule.precipitation_extra[start:stop] += front.intensity_mm * local.mean(axis=0)


def compile_scenario(
    scenario: Scenario, graph: RoadGraph, total_steps: int
) -> ModifierSchedule:
    """Compile a scenario into its dense per-tick modifier schedule."""
    if total_steps < 1:
        raise ValueError("total_steps must be positive")
    schedule = ModifierSchedule.identity(len(graph), total_steps)
    for element in scenario.elements:
        if isinstance(element, IncidentCascade):
            _apply_cascade(schedule, graph, element, total_steps)
        elif isinstance(element, EventPulse):
            _apply_pulse(schedule, graph, element, total_steps)
        elif isinstance(element, WeatherFront):
            _apply_front(schedule, graph, element, total_steps)
        else:
            raise TypeError(f"unknown scenario element {type(element).__name__}")
    return schedule
