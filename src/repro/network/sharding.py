"""Graph-aware shard boundaries for the forecast fleet.

:class:`repro.fleet.router.ShardMap` partitions segment ids into
contiguous ranges.  Because :class:`RoadGraph` ids are **BFS-ordered by
construction**, a contiguous id range already is a graph-local block —
so graph partitioning reduces to choosing the *cut positions*.  This
module picks them: starting from the balanced ``(i * n) // k`` cuts, it
slides each cut inside a small window to the position that severs the
fewest adjacency edges, keeping shards topologically coherent without
giving up load balance.

The result is a plain tuple of ints handed to the fleet as
``shard_starts`` — the fleet layer never imports ``repro.network``
(plain data crosses the boundary, not types), and shard count 1 or a
degenerate window reproduces the fleet's default balanced partition
exactly.
"""

from __future__ import annotations

from .graph import RoadGraph

__all__ = ["partition_starts", "crossing_edges"]


def crossing_edges(graph: RoadGraph, starts: tuple[int, ...]) -> int:
    """Count undirected adjacency edges severed by a contiguous partition."""
    n = len(graph)
    bounds = list(starts) + [n]

    def shard_of(segment: int) -> int:
        for k in range(len(starts)):
            if bounds[k] <= segment < bounds[k + 1]:
                return k
        raise ValueError(f"segment {segment} outside partition")

    crossings = 0
    for seg in range(n):
        home = shard_of(seg)
        for other in graph.neighbours(seg):
            if other > seg and shard_of(other) != home:
                crossings += 1
    return crossings


def partition_starts(
    graph: RoadGraph, num_shards: int, *, window: int | None = None
) -> tuple[int, ...]:
    """Choose shard start positions that respect graph locality.

    Each cut starts at the balanced position ``(i * n) // k`` and is
    moved within ``±window`` (default ``max(1, n // (8 * k))``) to the
    placement severing the fewest adjacency edges; ties keep the
    balanced position (so ``window=0`` reproduces the fleet default).
    Cuts are adjusted left to right and kept strictly increasing.
    """
    n = len(graph)
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    if num_shards > n:
        raise ValueError(f"cannot split {n} segments into {num_shards} shards")
    if window is None:
        window = max(1, n // (8 * num_shards))

    # Edge degree at each cut position: edges (a, b) with a < cut <= b
    # are severed by a cut at that position.  Precompute severed-edge
    # counts per position in one pass.
    severed = [0] * (n + 1)
    for seg in range(n):
        for other in graph.neighbours(seg):
            if other > seg:
                # A cut at position p severs (seg, other) iff seg < p <= other.
                for p in range(seg + 1, min(other, n) + 1):
                    severed[p] += 1

    starts = [0]
    for i in range(1, num_shards):
        balanced = (i * n) // num_shards
        lo = max(starts[-1] + 1, balanced - window)
        hi = min(n - (num_shards - i), balanced + window)
        best = balanced
        best_cost = severed[balanced] if lo <= balanced <= hi else None
        for p in range(lo, hi + 1):
            if best_cost is None or severed[p] < best_cost:
                best, best_cost = p, severed[p]
        starts.append(best)
    return tuple(starts)
