"""Scenario-stress evaluation: per-phase forecast degradation.

"Does the model see the cascade coming?"  A stress run replays the same
windows through a model under a scenario-modified speed field and
compares forecast error against the baseline run, **per scenario
phase**: the quiet lead-in before any element fires, the incident
cascade (active + recovery + staggered secondary waves), the demand
pulse and the weather front.  A model that anticipates the cascade from
its neighbours' speed rows degrades little in the ``cascade`` phase; a
model that only extrapolates the target's own history degrades hard.

Numpy-only by design: :mod:`repro.network` sits below the metrics layer
in the import DAG, so the error formulas (MAE / RMSE / MAPE, matching
:mod:`repro.metrics` definitions) are inlined here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scenarios import EventPulse, IncidentCascade, Scenario, WeatherFront

__all__ = ["StressPhase", "scenario_phases", "phase_error_table", "degradation_table"]


@dataclass(frozen=True)
class StressPhase:
    """A named half-open step interval ``[start_step, end_step)``."""

    name: str
    start_step: int
    end_step: int

    def __post_init__(self):
        if self.end_step <= self.start_step:
            raise ValueError(f"phase {self.name!r} is empty")

    def covers(self, steps: np.ndarray) -> np.ndarray:
        """Boolean mask over absolute step indices."""
        return (steps >= self.start_step) & (steps < self.end_step)


def _element_phase(element, total_steps: int) -> StressPhase | None:
    if isinstance(element, IncidentCascade):
        # Last secondary wave starts depth * delay after the seed and
        # runs the full active + recovery profile.
        end = (
            element.start_step
            + element.cascade_depth * element.cascade_delay_steps
            + element.duration_steps
            + element.recovery_steps
        )
        name = "cascade"
    elif isinstance(element, EventPulse):
        end = element.start_step + element.duration_steps
        name = "pulse"
    elif isinstance(element, WeatherFront):
        end = element.start_step + element.duration_steps
        name = "front"
    else:
        raise TypeError(f"unknown scenario element {type(element).__name__}")
    start = min(element.start_step, total_steps)
    end = min(end, total_steps)
    if end <= start:
        return None
    return StressPhase(name=name, start_step=start, end_step=end)


def scenario_phases(scenario: Scenario, total_steps: int) -> list[StressPhase]:
    """The analytic phase windows of a scenario, plus the quiet lead-in.

    One phase per element (``cascade`` / ``pulse`` / ``front``), clipped
    to ``total_steps``; a ``pre`` phase covers the steps before the
    earliest element.  Phases may overlap — a step under both the pulse
    and the front counts in both rows of the table, which is what you
    want when attributing degradation to causes.
    """
    phases = [p for p in (_element_phase(e, total_steps) for e in scenario.elements) if p]
    if not phases:
        return [StressPhase("pre", 0, total_steps)]
    first = min(p.start_step for p in phases)
    out = []
    if first > 0:
        out.append(StressPhase("pre", 0, first))
    out.extend(sorted(phases, key=lambda p: (p.start_step, p.name)))
    return out


def _errors(predictions_kmh: np.ndarray, targets_kmh: np.ndarray) -> dict[str, float]:
    diff = predictions_kmh - targets_kmh
    mae = float(np.mean(np.abs(diff)))
    rmse = float(np.sqrt(np.mean(diff**2)))
    nonzero = np.abs(targets_kmh) > 1e-9
    mape = (
        float(np.mean(np.abs(diff[nonzero] / targets_kmh[nonzero])) * 100.0)
        if nonzero.any()
        else float("nan")
    )
    return {"mae": mae, "rmse": rmse, "mape": mape}


def phase_error_table(
    phases: list[StressPhase],
    target_steps: np.ndarray,
    predictions_kmh: np.ndarray,
    targets_kmh: np.ndarray,
) -> dict[str, dict[str, float]]:
    """Per-phase forecast errors, keyed by phase name.

    ``target_steps`` are the absolute step indices of each prediction's
    target (``WindowFeatures.target_steps``); a window belongs to every
    phase containing its *target* step — the question is whether the
    forecast of that step was good, not where the inputs came from.
    Empty phases report ``samples == 0`` and NaN errors.
    """
    target_steps = np.asarray(target_steps)
    table: dict[str, dict[str, float]] = {}
    for phase in phases:
        mask = phase.covers(target_steps)
        row: dict[str, float] = {"samples": int(mask.sum())}
        if row["samples"] == 0:
            row.update({"mae": float("nan"), "rmse": float("nan"), "mape": float("nan")})
        else:
            row.update(_errors(predictions_kmh[mask], targets_kmh[mask]))
        table[phase.name] = row
    return table


def degradation_table(
    baseline: dict[str, dict[str, float]],
    stressed: dict[str, dict[str, float]],
) -> dict[str, float]:
    """Per-phase MAE degradation: ``stressed / baseline`` ratio.

    The headline stress metric: 1.0 means the scenario did not hurt the
    forecast in that phase at all; NaN where either side has no samples.
    """
    out: dict[str, float] = {}
    for name, stressed_row in stressed.items():
        base_row = baseline.get(name)
        if base_row is None or base_row["samples"] == 0 or stressed_row["samples"] == 0:
            out[name] = float("nan")
        elif base_row["mae"] <= 1e-12:
            out[name] = float("inf") if stressed_row["mae"] > 1e-12 else 1.0
        else:
            out[name] = float(stressed_row["mae"] / base_row["mae"])
    return out
