"""The network speed-field engine: corridor physics on a road graph.

:class:`NetworkSimulator` generalises
:class:`repro.traffic.simulator.TrafficSimulator` from a path to a
:class:`~repro.network.graph.RoadGraph`.  It reuses the corridor's laws
verbatim — the module-level :func:`~repro.traffic.simulator.demand_profile`
and :func:`~repro.traffic.simulator.congestion_speed_factor`, the
weather model, the incident sampler — and replaces every place the
corridor used ``segment - 1`` index arithmetic with graph adjacency:

* incident shockwaves spread **upstream through junctions**, damped by
  ``upstream_propagation_decay`` per hop and split across incoming
  branches (a merge divides the queue; a path reproduces the corridor's
  ``decay**offset`` exactly);
* flash congestion spills onto *all* upstream branches instead of
  ``seg - 1``;
* a per-tick **queue spillback** pass lets congestion accumulated on a
  segment propagate backwards across junctions over time (the
  LWR-flavoured behaviour a static mask cannot express);
* spatial smoothing averages over graph neighbours.

**The corridor invariant:** a graph built by
:func:`~repro.network.graph.from_corridor` carries its corridor, and
``run()`` delegates such graphs (with no scenario and no demand
weights) to ``TrafficSimulator`` itself — corridor output is bitwise
identical by construction, and a test pins it.

Output is an ordinary :class:`~repro.traffic.types.TrafficSeries` (the
graph wrapped via :meth:`RoadGraph.as_corridor`), so the feature
pipeline, trainers, serving and fleet consume network scenarios
unchanged.
"""

from __future__ import annotations

import numpy as np

from ..traffic.calendar import day_type_flags, is_weekend, timeline
from ..traffic.incidents import Incident, sample_incidents
from ..traffic.simulator import TrafficSimulator, congestion_speed_factor, demand_profile
from ..traffic.types import SimulationConfig, TrafficSeries
from ..traffic.weather import WeatherModel
from .graph import RoadGraph
from .scenarios import ModifierSchedule, Scenario, compile_scenario

__all__ = ["NetworkSimulator", "simulate_network"]

# Queue spillback constants (module-level so tests can pin them).
SPILL_RHO = 0.55  # per-tick queue persistence (memory of past congestion)
SPILL_GAIN = 0.35  # how fast congestion above the onset feeds the queue
SPILL_ONSET = 0.5  # congestion level (1 - v/v_free) where queues start
QUEUE_MAX = 0.45  # cap on the queue state and on the speed reduction

_INCIDENT_REACH = 2  # hops a shockwave travels upstream (matches corridor)


def _graph_incident_masks(
    graph: RoadGraph,
    incidents: list[Incident],
    total_steps: int,
    upstream_decay: float,
    delay_steps: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Graph generalisation of :func:`repro.traffic.incidents.incident_masks`.

    The shockwave walks ``upstream_of`` instead of ``segment - 1``: at
    each hop the damping multiplies by ``upstream_decay`` and divides by
    the number of incoming branches (a merge splits the queue).  On a
    path graph every hop has exactly one upstream segment, so the
    damping reduces to the corridor's ``decay**offset``.
    """
    num_segments = len(graph)
    factor = np.ones((num_segments, total_steps))
    flags = np.zeros((num_segments, total_steps))

    for incident in incidents:
        profile_len = incident.duration_steps + incident.recovery_steps
        profile = np.ones(profile_len)
        profile[: incident.duration_steps] = incident.severity
        profile[incident.duration_steps :] = np.linspace(
            incident.severity, 1.0, incident.recovery_steps + 1
        )[1:]

        wave: dict[int, float] = {incident.segment: 1.0}
        reached = {incident.segment}
        for depth in range(_INCIDENT_REACH + 1):
            start = incident.start_step + depth * delay_steps
            if start < total_steps:
                stop = min(start + profile_len, total_steps)
                window = profile[: stop - start]
                for segment, damping in sorted(wave.items()):
                    hit = 1.0 - damping * (1.0 - window)
                    factor[segment, start:stop] = np.minimum(factor[segment, start:stop], hit)
            if depth == _INCIDENT_REACH:
                break
            frontier: dict[int, float] = {}
            for segment, damping in sorted(wave.items()):
                ups = graph.upstream_of(segment)
                if not ups:
                    continue
                share = damping * upstream_decay / len(ups)
                for up in ups:
                    if up in reached:
                        continue
                    frontier[up] = max(frontier.get(up, 0.0), share)
            if not frontier:
                break
            reached |= set(frontier)
            wave = frontier

        active_stop = min(incident.end_step, total_steps)
        if incident.start_step < total_steps:
            flags[incident.segment, incident.start_step : active_stop] = 1.0

    return factor, flags


class NetworkSimulator:
    """Generates a :class:`TrafficSeries` over a :class:`RoadGraph`."""

    def __init__(
        self,
        graph: RoadGraph,
        config: SimulationConfig | None = None,
        *,
        demand_weights: np.ndarray | None = None,
        scenario: Scenario | None = None,
    ):
        self.graph = graph
        self.config = config if config is not None else SimulationConfig()
        if demand_weights is not None:
            demand_weights = np.asarray(demand_weights, dtype=np.float64)
            if demand_weights.shape != (len(graph),):
                raise ValueError(
                    f"demand_weights must be ({len(graph)},), got {demand_weights.shape}"
                )
            if (demand_weights <= 0).any():
                raise ValueError("demand_weights must be positive")
        self.demand_weights = demand_weights
        self.scenario = scenario

    # ------------------------------------------------------------------
    def _flash_congestion(
        self, demand: np.ndarray, total: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Corridor flash congestion with graph-aware upstream spill.

        Draw order matches :meth:`TrafficSimulator._flash_congestion`
        exactly (poisson count, dense-step choice, per-flash target/
        duration/severity); only the spill target changes from
        ``seg - 1`` to every upstream branch, each receiving the damping
        divided by the branch count.
        """
        cfg = self.config
        num_segments = len(self.graph)
        factor = np.ones((num_segments, total))
        count = rng.poisson(cfg.flash_rate_per_day * cfg.num_days)
        dense_steps = np.flatnonzero(demand >= cfg.flash_demand_threshold)
        if dense_steps.size == 0 or count == 0:
            return factor
        starts = rng.choice(dense_steps, size=count)
        for start in starts:
            if rng.random() < cfg.flash_target_bias:
                seg = self.graph.target_index
            else:
                seg = int(rng.integers(0, num_segments))
            duration = int(
                rng.integers(cfg.flash_duration_steps_low, cfg.flash_duration_steps_high + 1)
            )
            severity = float(rng.uniform(cfg.flash_severity_low, cfg.flash_severity_high))
            stop = min(start + duration, total)
            factor[seg, start:stop] = np.minimum(factor[seg, start:stop], severity)
            ups = self.graph.upstream_of(seg)
            if ups and start + 1 < total:
                neighbour_stop = min(stop + 1, total)
                damped = 1.0 - 0.45 * (1.0 - severity) / len(ups)
                for up in ups:
                    factor[up, start + 1 : neighbour_stop] = np.minimum(
                        factor[up, start + 1 : neighbour_stop], damped
                    )
        return factor

    def _queue_spillback(self, speeds: np.ndarray, free_flow: np.ndarray) -> np.ndarray:
        """Per-tick queue state spilling backwards across junctions.

        Each segment accumulates a queue ``q`` (AR(1) with persistence
        ``SPILL_RHO``) from congestion above ``SPILL_ONSET``; upstream
        segments lose speed in proportion to the queues of the segments
        they feed, split across incoming branches.  Deterministic — no
        rng — so baseline and scenario runs diverge only through the
        speeds themselves.
        """
        num_segments = len(self.graph)
        edge_up: list[int] = []
        edge_down: list[int] = []
        edge_weight: list[float] = []
        for down in range(num_segments):
            ups = self.graph.upstream_of(down)
            for up in ups:
                edge_up.append(up)
                edge_down.append(down)
                edge_weight.append(1.0 / len(ups))
        if not edge_up:
            return speeds
        up_idx = np.asarray(edge_up)
        down_idx = np.asarray(edge_down)
        weight = np.asarray(edge_weight)

        queue = np.zeros(num_segments)
        for t in range(speeds.shape[1]):
            congestion = 1.0 - speeds[:, t] / free_flow
            queue = np.clip(
                SPILL_RHO * queue + SPILL_GAIN * np.maximum(congestion - SPILL_ONSET, 0.0),
                0.0,
                QUEUE_MAX,
            )
            spill = np.zeros(num_segments)
            np.add.at(spill, up_idx, queue[down_idx] * weight)
            speeds[:, t] *= np.clip(1.0 - spill, 1.0 - QUEUE_MAX, 1.0)
        return speeds

    def _spatial_smoothing(self, speeds: np.ndarray) -> np.ndarray:
        """The corridor's 0.82/0.18 neighbour pull over graph adjacency."""
        num_segments = len(self.graph)
        pair_self: list[int] = []
        pair_other: list[int] = []
        counts = np.zeros(num_segments)
        for seg in range(num_segments):
            neighbours = self.graph.neighbours(seg)
            counts[seg] = len(neighbours)
            for other in neighbours:
                pair_self.append(seg)
                pair_other.append(other)
        neighbour_sum = np.zeros_like(speeds)
        if pair_self:
            np.add.at(neighbour_sum, np.asarray(pair_self), speeds[np.asarray(pair_other)])
        has = counts > 0
        neighbour_mean = speeds.copy()  # isolated segments pull toward themselves
        neighbour_mean[has] = neighbour_sum[has] / counts[has, None]
        return 0.82 * speeds + 0.18 * neighbour_mean

    # ------------------------------------------------------------------
    def run(self) -> TrafficSeries:
        """Generate the network speed field and auxiliary channels.

        A :func:`from_corridor` graph with no scenario and no demand
        weights delegates to the corridor engine itself, so corridor
        output is bitwise identical (the pinned invariant).
        """
        if (
            self.graph.corridor is not None
            and self.scenario is None
            and self.demand_weights is None
        ):
            return TrafficSimulator(self.config, self.graph.corridor).run()

        cfg = self.config
        graph = self.graph
        rng = np.random.default_rng(cfg.seed + 1)
        stamps = timeline(cfg.start_date, cfg.num_days, cfg.interval_minutes)
        total = len(stamps)
        num_segments = len(graph)

        schedule: ModifierSchedule | None = None
        if self.scenario is not None:
            schedule = compile_scenario(self.scenario, graph, total)

        # Calendar channels (identical to the corridor engine).
        hours = np.array([s.hour for s in stamps], dtype=np.float64)
        hour_fraction = np.array([s.hour + s.minute / 60.0 for s in stamps])
        day_types = np.empty((total, 4))
        weekday_mask = np.empty(total, dtype=bool)
        holiday_mask = np.empty(total, dtype=bool)
        steps_per_day = cfg.steps_per_day
        for day_index in range(cfg.num_days):
            date = stamps[day_index * steps_per_day].date()
            flags = day_type_flags(date, cfg.holidays)
            sl = slice(day_index * steps_per_day, (day_index + 1) * steps_per_day)
            day_types[sl] = flags.as_array()
            weekday_mask[sl] = date.weekday() < 5 and not flags.holiday
            holiday_mask[sl] = flags.holiday or is_weekend(date)

        # Weather (one model for the whole city).
        weather = WeatherModel(interval_minutes=cfg.interval_minutes)
        temperature, precipitation = weather.generate(stamps, rng)

        # Shared diurnal demand, per day type.
        demand = np.empty(total)
        for day_index in range(cfg.num_days):
            sl = slice(day_index * steps_per_day, (day_index + 1) * steps_per_day)
            weekday = bool(weekday_mask[sl][0])
            holiday = bool(holiday_mask[sl][0]) and not is_weekend(
                stamps[day_index * steps_per_day].date()
            )
            demand[sl] = demand_profile(cfg, hour_fraction[sl], weekday=weekday, holiday=holiday)

        rain_intensity = np.clip(precipitation / 1.0, 0.0, 1.0)
        demand = demand + cfg.rain_demand_boost * rain_intensity

        # AR(1) city-wide demand fluctuation.
        noise = np.empty(total)
        level = 0.0
        for i in range(total):
            level = cfg.demand_noise_rho * level + rng.normal(0.0, cfg.demand_noise_std)
            noise[i] = level
        demand = np.clip(demand + noise, 0.02, 1.2)

        # Per-segment demand variation (local access patterns).
        segment_bias = rng.normal(0.0, 0.03, size=num_segments)

        # Incidents, propagated through the junction graph.
        incidents = sample_incidents(cfg, num_segments, rng, graph.target_index)
        incident_factor, event_flags = _graph_incident_masks(
            graph,
            incidents,
            total,
            upstream_decay=cfg.upstream_propagation_decay,
            delay_steps=cfg.propagation_delay_steps,
        )

        rain_factor = 1.0 - (1.0 - cfg.rain_speed_factor) * rain_intensity
        flash_factor = self._flash_congestion(demand, total, rng)

        # Assemble the pre-noise speed field through the shared laws.
        free_flow = np.array([s.free_flow_kmh for s in graph.segments])
        weights = (
            self.demand_weights if self.demand_weights is not None else np.ones(num_segments)
        )
        seg_demand = demand[None, :] * weights[:, None] + segment_bias[:, None]
        if schedule is not None:
            seg_demand = seg_demand + schedule.demand_boost
        seg_demand = np.clip(seg_demand, 0.02, 1.2)
        speeds = (
            free_flow[:, None]
            * congestion_speed_factor(cfg, seg_demand)
            * rain_factor[None, :]
            * incident_factor
            * flash_factor
        )
        if schedule is not None:
            speeds = speeds * schedule.speed_factor

        # Queue spillback, then neighbour smoothing.
        speeds = self._queue_spillback(speeds, free_flow)
        speeds = self._spatial_smoothing(speeds)

        # AR(1) measurement noise, one innovation stream per segment.
        # A single (S, T) draw consumes the stream in the same order as
        # S sequential length-T draws (C-order fill), and the recursion
        # is vectorised across segments.
        innovations = rng.normal(0.0, cfg.speed_noise_std, size=(num_segments, total))
        level_vec = np.zeros(num_segments)
        for i in range(total):
            level_vec = cfg.speed_noise_rho * level_vec + innovations[:, i]
            speeds[:, i] += level_vec

        # Temporal kernel smoothing (corridor's [0.08, 0.84, 0.08]).
        padded = np.pad(speeds, ((0, 0), (1, 1)), mode="edge")
        speeds = 0.08 * padded[:, :-2] + 0.84 * padded[:, 1:-1] + 0.08 * padded[:, 2:]

        speeds = np.clip(speeds, cfg.min_speed_kmh, cfg.max_speed_kmh)

        events = event_flags
        if schedule is not None:
            events = np.maximum(event_flags, schedule.event_flags)
            precipitation = precipitation + schedule.precipitation_extra

        return TrafficSeries(
            corridor=graph.as_corridor(),
            speeds=speeds,
            temperature=temperature,
            precipitation=precipitation,
            events=events,
            hours=hours,
            day_types=day_types,
            timestamps=stamps,
            interval_minutes=cfg.interval_minutes,
        )


def simulate_network(
    graph: RoadGraph,
    config: SimulationConfig | None = None,
    *,
    demand_weights: np.ndarray | None = None,
    scenario: Scenario | None = None,
) -> TrafficSeries:
    """One-call convenience wrapper: build a network simulator and run it."""
    return NetworkSimulator(
        graph, config, demand_weights=demand_weights, scenario=scenario
    ).run()
