"""``repro.nn`` — a from-scratch deep-learning substrate on numpy.

The APOTS paper assumes a mainstream deep-learning framework; none is
available offline, so this subpackage implements the pieces the paper's
models need: a reverse-mode autograd Tensor, dense / convolutional /
recurrent layers, optimisers, losses, initialisation, serialisation and
finite-difference gradient checking.
"""

from . import init, ops
from .gradcheck import check_gradients, numerical_gradient
from .layers import (
    ELU,
    GRU,
    LSTM,
    GRUCell,
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    LayerNorm,
    LeakyReLU,
    Linear,
    LSTMCell,
    MaxPool2d,
    ModuleList,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .losses import BCELoss, BCEWithLogitsLoss, HuberLoss, L1Loss, MSELoss
from .module import Module, Parameter, load_state, save_state
from .optim import SGD, Adam, ExponentialLR, Optimizer, RMSprop, StepLR, clip_grad_norm
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "init",
    "ops",
    "check_gradients",
    "numerical_gradient",
    "ELU",
    "GRU",
    "GRUCell",
    "LSTM",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "LayerNorm",
    "LeakyReLU",
    "Linear",
    "LSTMCell",
    "MaxPool2d",
    "ModuleList",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "BCELoss",
    "BCEWithLogitsLoss",
    "HuberLoss",
    "L1Loss",
    "MSELoss",
    "Module",
    "Parameter",
    "load_state",
    "save_state",
    "SGD",
    "Adam",
    "ExponentialLR",
    "Optimizer",
    "RMSprop",
    "StepLR",
    "clip_grad_norm",
    "Tensor",
    "as_tensor",
    "is_grad_enabled",
    "no_grad",
]
