"""Compiled tape replay for the autograd hot path.

Training loops on the numpy substrate spend most of their wall time not
in BLAS but in Python: every step rebuilds the same computation graph —
thousands of ``Tensor._make`` closures — and allocates a fresh output
array per op.  This module removes that overhead for shape-stable loops.

A :class:`CompiledFunction` wraps a pure tensor function ``fn(*inputs)``.
The first call with a given input-shape signature *records*: the function
runs eagerly while a trace hook captures every graph node (output tensor
plus the op's ``meta`` replay state).  From the record a
:class:`CompiledTape` is built — a flat program of replay rules that
re-execute the same numpy kernels into the *recorded* buffers (``out=``
/ ``copyto``), so a replayed forward allocates nothing and builds no
graph.  Backward replays the recorded closures over a cached topological
schedule, which makes it bit-identical to eager by construction: the
closures read the very buffers the forward refreshed.

Safety model — trust is earned, never assumed:

* call 1 (per shape key): record.  The caller gets an ordinary eager run.
* subsequent calls: *validate* — replay and eager run side by side, all
  outputs (and, when ``backward`` is invoked, all parameter and input
  gradients) compared **bitwise** (``tobytes``).  Any mismatch or replay
  exception permanently rejects the tape and the function stays eager.
* a verified backward pass (or two clean forward passes for
  ``forward_only`` functions) promotes the tape to trusted; from then on
  calls are pure replay.

Fallback rules (always to correct eager execution):

* unknown op, or a construct the tape cannot replay (e.g. ``max()`` over
  all elements, whose backward closes over an immutable scalar) — the
  tape build raises :class:`TapeUnsupported` and the key is rejected;
* untraced values baked into the graph (e.g. the shift constant in
  :func:`repro.nn.ops.softmax`, or data-dependent Python control flow
  inside ``fn``) — caught by bitwise validation;
* a new input-shape signature — a fresh tape is recorded, up to
  ``max_tapes`` keys; beyond that, new shapes run plain eager;
* ``no_grad()`` active, or another CompiledFunction currently recording
  — plain eager.

Buffer lifetime: a run's output tensors alias the tape's preallocated
buffers, so they are only valid until the next call of the same
CompiledFunction with the same shape key.  Read or copy what you need
before calling again.  Parameter tensors are shared with the live
modules; in-place optimiser updates (``param.data -= ...``) keep the
recorded references current.

``fn`` must be straight-line tensor code: no side effects, no optimiser
calls, and any Python-level branching on tensor *values* is frozen at
record time (divergence is caught by validation only if it changes the
outputs).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from . import tensor as _tensor_module
from .fused_rnn import _lstm_forward_kernel
from .ops import _avg_pool_forward, _conv2d_forward, _max_pool_forward
from .tensor import Tensor, _set_trace_hook, _unbroadcast, is_grad_enabled, no_grad

__all__ = ["CompiledFunction", "CompiledTape", "CompiledRun", "TapeUnsupported"]

#: Clean validation passes required before a forward-only tape is trusted.
_FORWARD_TRUST_PASSES = 2


class TapeUnsupported(RuntimeError):
    """Raised at tape build when a recorded op has no replay rule."""


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact equality including NaN payloads and signed zeros."""
    return a.shape == b.shape and a.tobytes() == b.tobytes()


def _prepare_seed(out: Tensor, seed) -> np.ndarray:
    """Normalise a backward seed exactly like :meth:`Tensor.backward`."""
    data = out.data
    if seed is None:
        if data.size != 1:
            raise RuntimeError("grad must be supplied for non-scalar backward()")
        return np.ones_like(data, dtype=np.float64)
    seed = np.asarray(seed, dtype=np.float64)
    if seed.ndim == 0:
        return np.broadcast_to(seed, data.shape).copy()
    if seed.shape != data.shape:
        raise ValueError(
            f"seed gradient shape {seed.shape} does not match tensor "
            f"shape {data.shape}; only scalar (0-d) seeds are broadcast"
        )
    return seed


# ---------------------------------------------------------------------------
# Replay rules
#
# Each rule factory receives the recorded node (output tensor, parents and
# meta) and returns a zero-argument callable that recomputes the op into
# the recorded output buffer.  Rules must be *bitwise* reproductions of
# the eager forward, and must refresh in place every derived array the
# eager backward closure captured (masks, scales, caches) — that is what
# lets backward reuse the recorded closures verbatim.
# ---------------------------------------------------------------------------

_RULES: dict[str, Callable] = {}


def _rule(name: str):
    def register(factory):
        _RULES[name] = factory
        return factory

    return register


def _binary_ufunc(ufunc):
    def factory(out, parents, meta):
        a, b, o = parents[0].data, parents[1].data, out.data

        def run():
            ufunc(a, b, out=o)

        return run

    return factory


_RULES["add"] = _binary_ufunc(np.add)
_RULES["sub"] = _binary_ufunc(np.subtract)
_RULES["mul"] = _binary_ufunc(np.multiply)
_RULES["div"] = _binary_ufunc(np.divide)
_RULES["matmul"] = _binary_ufunc(np.matmul)


def _unary_ufunc(ufunc):
    def factory(out, parents, meta):
        a, o = parents[0].data, out.data

        def run():
            ufunc(a, out=o)

        return run

    return factory


_RULES["neg"] = _unary_ufunc(np.negative)
_RULES["exp"] = _unary_ufunc(np.exp)
_RULES["log"] = _unary_ufunc(np.log)
_RULES["sqrt"] = _unary_ufunc(np.sqrt)
_RULES["tanh"] = _unary_ufunc(np.tanh)


@_rule("pow")
def _rule_pow(out, parents, meta):
    a, o = parents[0].data, out.data
    exponent = meta["exponent"]

    def run():
        np.power(a, exponent, out=o)

    return run


@_rule("sigmoid")
def _rule_sigmoid(out, parents, meta):
    a, o = parents[0].data, out.data

    def run():
        # Same stable form as Tensor.sigmoid, for bit-identical values.
        positive = a >= 0
        exp_neg_abs = np.exp(-np.abs(a))
        np.copyto(
            o,
            np.where(positive, 1.0 / (1.0 + exp_neg_abs), exp_neg_abs / (1.0 + exp_neg_abs)),
        )

    return run


@_rule("relu")
def _rule_relu(out, parents, meta):
    a, o = parents[0].data, out.data
    mask = meta["mask"]  # bool; captured by the backward closure

    def run():
        np.greater(a, 0, out=mask)
        np.multiply(a, mask, out=o)

    return run


@_rule("leaky_relu")
def _rule_leaky_relu(out, parents, meta):
    a, o = parents[0].data, out.data
    scale = meta["scale"]  # captured by the backward closure
    slope = meta["slope"]

    def run():
        scale.fill(slope)
        np.copyto(scale, 1.0, where=a > 0)
        np.multiply(a, scale, out=o)

    return run


@_rule("abs")
def _rule_abs(out, parents, meta):
    a, o = parents[0].data, out.data
    sign = meta["sign"]  # captured by the backward closure

    def run():
        sign.fill(1.0)
        np.copyto(sign, -1.0, where=a < 0)
        np.abs(a, out=o)

    return run


@_rule("clip")
def _rule_clip(out, parents, meta):
    a, o = parents[0].data, out.data
    mask = meta["mask"]  # bool; captured by the backward closure
    low, high = meta["low"], meta["high"]

    def run():
        np.logical_and(a >= low, a <= high, out=mask)
        np.clip(a, low, high, out=o)

    return run


@_rule("sum")
def _rule_sum(out, parents, meta):
    a, o = parents[0].data, out.data
    axis, keepdims = meta["axis"], meta["keepdims"]

    def run():
        np.sum(a, axis=axis, keepdims=keepdims, out=o)

    return run


@_rule("mean")
def _rule_mean(out, parents, meta):
    a, o = parents[0].data, out.data
    axis, keepdims = meta["axis"], meta["keepdims"]

    def run():
        np.mean(a, axis=axis, keepdims=keepdims, out=o)

    return run


@_rule("max")
def _rule_max(out, parents, meta):
    if meta["axis"] is None:
        # The eager backward closes over a scalar out value (immutable),
        # which a replay cannot refresh.
        raise TapeUnsupported("max() over all elements is not replayable")
    a, o = parents[0].data, out.data
    axis, keepdims = meta["axis"], meta["keepdims"]

    def run():
        np.amax(a, axis=axis, keepdims=keepdims, out=o)

    return run


@_rule("concat")
def _rule_concat(out, parents, meta):
    arrays = [p.data for p in parents]
    o = out.data
    axis = meta["axis"]

    def run():
        np.concatenate(arrays, axis=axis, out=o)

    return run


@_rule("stack")
def _rule_stack(out, parents, meta):
    arrays = [p.data for p in parents]
    o = out.data
    axis = meta["axis"]

    def run():
        np.stack(arrays, axis=axis, out=o)

    return run


@_rule("pad2d")
def _rule_pad2d(out, parents, meta):
    a, o = parents[0].data, out.data
    pads = meta["pads"]
    interior = tuple(
        slice(p[0], o.shape[i] - p[1] if p[1] else None) for i, p in enumerate(pads)
    )

    def run():
        # The zero borders were written at record time and never touched.
        o[interior] = a

    return run


@_rule("where")
def _rule_where(out, parents, meta):
    a, b, o = parents[0].data, parents[1].data, out.data
    cond = meta["cond"]  # static; a varying condition fails validation

    def run():
        np.copyto(o, np.where(cond, a, b))

    return run


@_rule("maximum")
def _rule_maximum(out, parents, meta):
    a, b, o = parents[0].data, parents[1].data, out.data
    mask = meta["mask"]  # captured by the backward closure

    def run():
        np.greater_equal(a, b, out=mask)
        np.maximum(a, b, out=o)

    return run


@_rule("conv2d")
def _rule_conv2d(out, parents, meta):
    x = parents[0].data
    weight = parents[1].data
    bias = parents[2].data if len(parents) == 3 else None
    o = out.data
    cols_flat = meta["cols_flat"]  # captured by the backward closure
    stride = meta["stride"]

    def run():
        new_out, new_cols, _, _ = _conv2d_forward(x, weight, bias, stride)
        np.copyto(cols_flat, new_cols)
        np.copyto(o, new_out)

    return run


@_rule("max_pool2d")
def _rule_max_pool2d(out, parents, meta):
    x, o = parents[0].data, out.data
    kernel, stride = meta["kernel"], meta["stride"]
    arg = meta["arg"]  # captured by the backward closure

    def run():
        new_out, new_arg, _, _ = _max_pool_forward(x, kernel, stride)
        np.copyto(arg, new_arg)
        np.copyto(o, new_out)

    return run


@_rule("avg_pool2d")
def _rule_avg_pool2d(out, parents, meta):
    x, o = parents[0].data, out.data
    kernel, stride = meta["kernel"], meta["stride"]

    def run():
        np.copyto(o, _avg_pool_forward(x, kernel, stride))

    return run


@_rule("lstm_fused")
def _rule_lstm_fused(out, parents, meta):
    x, w_ih, w_hh, b = (p.data for p in parents)
    o = out.data
    gates_x = meta["gates_x"]
    caches = meta["caches"]  # arrays captured by the BPTT closure
    h0, c0 = meta["h0"], meta["c0"]  # record-time initial state values

    def run():
        _lstm_forward_kernel(x, w_ih, w_hh, b, h0, c0, gates_x, o, caches)

    return run


# View ops: when the output buffer shares memory with the parent, the
# replayed parent update propagates automatically and the node needs no
# program step.  A copying instance falls back to an explicit refresh.
_VIEW_OPS = {"reshape", "transpose", "getitem", "squeeze", "unsqueeze"}


def _view_rule(out, parents, meta, op):
    a, o = parents[0].data, out.data
    if np.may_share_memory(o, a):
        return None  # true view; nothing to do on replay
    if op == "getitem":
        index = meta["index"]

        def run():
            np.copyto(o, a[index])

        return run
    if op == "transpose":
        axes = meta["axes"]

        def run():
            np.copyto(o, a.transpose(axes))

        return run

    # reshape / squeeze / unsqueeze preserve element order.
    def run():
        np.copyto(o, a.reshape(o.shape))

    return run


# ---------------------------------------------------------------------------
# Fusion
# ---------------------------------------------------------------------------

#: Ops eligible for chain fusion.  A chain is a producer→consumer run of
#: program steps (``next.parents[0] is current.out``); fusing collapses
#: the per-step program dispatch into a single entry running the same
#: kernels back to back — this is how a Linear→activation pair or the
#: matmul→(+bias)→gate chain around ``lstm_fused`` executes as one unit.
_FUSIBLE = {
    "matmul",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "relu",
    "leaky_relu",
    "tanh",
    "sigmoid",
    "exp",
    "lstm_fused",
}


class _FusedChain:
    """A maximal producer→consumer run of replay steps as one call."""

    __slots__ = ("steps", "ops")

    def __init__(self, steps: list[Callable], ops: list[str]):
        self.steps = steps
        self.ops = ops

    def __call__(self):
        for step in self.steps:
            step()


def _fuse(entries: list[tuple[str, Tensor, tuple, Callable]]) -> tuple[list[Callable], int]:
    """Collapse fusible chains; returns (program, chains_fused)."""
    program: list[Callable] = []
    fused = 0
    i = 0
    while i < len(entries):
        op, node, _, step = entries[i]
        j = i + 1
        chain = [step]
        ops = [op]
        prev = node
        while (
            j < len(entries)
            and entries[j][0] in _FUSIBLE
            and ops[-1] in _FUSIBLE
            and entries[j][2]
            and entries[j][2][0] is prev
        ):
            chain.append(entries[j][3])
            ops.append(entries[j][0])
            prev = entries[j][1]
            j += 1
        if len(chain) > 1:
            program.append(_FusedChain(chain, ops))
            fused += 1
        else:
            program.append(step)
        i = j
    return program, fused


# ---------------------------------------------------------------------------
# Backward replay rules
# ---------------------------------------------------------------------------
#
# The backward schedule is as static as the forward program: same node
# order, same edges, same arithmetic.  Instead of re-invoking the
# recorded closures (which allocate a fresh contribution array per op),
# each node gets a step that writes its parents' gradient contributions
# directly into preallocated per-node gradient buffers.  Accumulation
# replicates Tensor.backward exactly: the first contribution to a node
# is a plain write, later ones add in place (``old + new`` and
# ``old += new`` are the same float operation), so a trusted backward
# replay stays bitwise-equal to eager.  Ops without a buffered rule
# (the chunky kernels: lstm_fused, conv2d, pools, pad2d, max) fall back
# to their recorded closure with the generic deliver path — identical
# to what Tensor.backward does, just over the cached schedule.


#: Sentinel for "recognised op, but every delivery was pruned away".
_NOOP = object()


def _fast_backward_step(op, node, parents, meta, g, gbufs, has, pindex, delivered, pruned):
    """A low-allocation backward step for ``node``, or None for generic.

    ``delivered`` selects the accumulation strategy.  ``None`` builds
    runtime-checked actions: each delivery consults the ``has`` flags to
    decide write-vs-add, exactly like ``Tensor.backward``'s grads dict.
    A set builds a *static* schedule: the write/add pattern of a tape is
    determined purely by graph structure (the same edges deliver in the
    same order every replay), so it can be resolved at build time — the
    set tracks which buffer positions have already received their first
    contribution as the schedule is laid out, and each action is frozen
    as either a first-write or an in-place add, with no per-call checks.

    ``pruned`` positions (dead gradient sinks under ``input_grads_only``)
    receive no deliveries; a step whose every delivery is pruned returns
    :data:`_NOOP` so the schedule drops it entirely.
    """
    o = node.data
    actions: list[Callable] = []

    def edge(k):
        p = parents[k]
        pj = pindex[id(p)]
        return pj, gbufs[pj], p.data.shape

    def add_view(k, view):
        """Deliver a contribution produced as an array (usually a view of g)."""
        pj, pbuf, pshape = edge(k)
        if pj in pruned:
            return

        if delivered is None:

            def act():
                src = view()
                if src.shape != pshape:
                    src = _unbroadcast(src, pshape)
                if has[pj]:
                    np.add(pbuf, src, out=pbuf)
                else:
                    np.copyto(pbuf, src)
                    has[pj] = True

        elif pj in delivered:

            def act():
                src = view()
                if src.shape != pshape:
                    src = _unbroadcast(src, pshape)
                np.add(pbuf, src, out=pbuf)

        else:
            delivered.add(pj)

            def act():
                src = view()
                if src.shape != pshape:
                    src = _unbroadcast(src, pshape)
                np.copyto(pbuf, src)

        actions.append(act)

    def add_compute(k, compute):
        """Deliver a contribution computed straight into the target buffer.

        Only valid when the contribution already has the parent's shape.
        """
        pj, pbuf, _ = edge(k)
        if pj in pruned:
            return

        if delivered is None:
            tmp = np.empty(pbuf.shape, dtype=np.float64)

            def act():
                if has[pj]:
                    compute(tmp)
                    np.add(pbuf, tmp, out=pbuf)
                else:
                    compute(pbuf)
                    has[pj] = True

        elif pj in delivered:
            tmp = np.empty(pbuf.shape, dtype=np.float64)

            def act():
                compute(tmp)
                np.add(pbuf, tmp, out=pbuf)

        else:
            delivered.add(pj)

            def act():
                compute(pbuf)

        actions.append(act)

    def add_grad_view(k):
        """Deliver ``g`` itself, reducing prepended broadcast axes in place.

        ``_unbroadcast`` for a parent whose shape is a non-stretched
        suffix of ``g.shape`` is exactly ``g.sum(axis=prepended)``, i.e.
        ``np.add.reduce`` over those axes — which can go straight into
        the target buffer instead of allocating the reduction.
        """
        pj, pbuf, pshape = edge(k)
        gshape = g.shape
        if pshape == gshape:
            add_view(k, lambda: g)
            return
        extra = len(gshape) - len(pshape)
        stretched = any(
            n == 1 and gshape[extra + i] != 1 for i, n in enumerate(pshape)
        )
        if extra > 0 and not stretched:
            axes = tuple(range(extra)) if extra > 1 else 0
            add_compute(k, lambda out: np.add.reduce(g, axis=axes, out=out))
        else:
            add_view(k, lambda: g)

    def grad_edges():
        return [(k, p) for k, p in enumerate(parents) if p.requires_grad]

    same = lambda k: parents[k].data.shape == o.shape  # noqa: E731

    if op == "add":
        for k, _ in grad_edges():
            add_grad_view(k)
    elif op == "sub":
        for k, _ in grad_edges():
            if k == 0:
                add_grad_view(0)
            elif same(1):
                add_compute(1, lambda out: np.negative(g, out=out))
            else:
                add_view(1, lambda: -g)
    elif op == "mul":
        a, b = parents[0].data, parents[1].data
        for k, _ in grad_edges():
            other = b if k == 0 else a
            if same(k):
                add_compute(k, lambda out, other=other: np.multiply(g, other, out=out))
            else:
                add_view(k, lambda other=other: g * other)
    elif op == "div":
        a, b = parents[0].data, parents[1].data
        for k, _ in grad_edges():
            if k == 0:
                if same(0):
                    add_compute(0, lambda out: np.divide(g, b, out=out))
                else:
                    add_view(0, lambda: g / b)
            elif same(1):
                tmp_bb = np.empty(o.shape, dtype=np.float64)

                def c1(out, tmp_bb=tmp_bb):
                    # -grad * a / (b * b), in eager evaluation order
                    np.negative(g, out=out)
                    np.multiply(out, a, out=out)
                    np.multiply(b, b, out=tmp_bb)
                    np.divide(out, tmp_bb, out=out)

                add_compute(1, c1)
            else:
                add_view(1, lambda: -g * a / (b * b))
    elif op == "neg":
        add_compute(0, lambda out: np.negative(g, out=out))
    elif op == "pow":
        a = parents[0].data
        exponent = meta["exponent"]
        tmp_p = np.empty(o.shape, dtype=np.float64)

        def c_pow(out):
            # grad * exponent * a**(exponent-1), eager order
            np.power(a, exponent - 1, out=tmp_p)
            np.multiply(g, exponent, out=out)
            np.multiply(out, tmp_p, out=out)

        add_compute(0, c_pow)
    elif op == "exp":
        add_compute(0, lambda out: np.multiply(g, o, out=out))
    elif op == "log":
        a = parents[0].data
        add_compute(0, lambda out: np.divide(g, a, out=out))
    elif op == "sqrt":

        def c_sqrt(out):
            np.multiply(g, 0.5, out=out)
            np.divide(out, o, out=out)

        add_compute(0, c_sqrt)
    elif op == "tanh":
        tmp_t = np.empty(o.shape, dtype=np.float64)

        def c_tanh(out):
            np.multiply(o, o, out=tmp_t)
            np.subtract(1.0, tmp_t, out=tmp_t)
            np.multiply(g, tmp_t, out=out)

        add_compute(0, c_tanh)
    elif op == "sigmoid":
        tmp_s = np.empty(o.shape, dtype=np.float64)

        def c_sig(out):
            np.subtract(1.0, o, out=tmp_s)
            np.multiply(g, o, out=out)
            np.multiply(out, tmp_s, out=out)

        add_compute(0, c_sig)
    elif op in ("relu", "leaky_relu", "abs", "clip"):
        factor = meta["mask" if op in ("relu", "clip") else ("scale" if op == "leaky_relu" else "sign")]
        add_compute(0, lambda out: np.multiply(g, factor, out=out))
    elif op in ("sum", "mean"):
        axis, keepdims = meta["axis"], meta["keepdims"]
        shape = parents[0].data.shape
        if op == "mean":
            if axis is None:
                count = parents[0].data.size
            else:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                count = int(np.prod([shape[a] for a in axes]))
            tmp_m = np.empty(g.shape, dtype=np.float64)

            def c_red(out):
                np.divide(g, count, out=tmp_m)
                src = tmp_m if (axis is None or keepdims) else np.expand_dims(tmp_m, axis)
                np.copyto(out, src)

        else:

            def c_red(out):
                src = g if (axis is None or keepdims) else np.expand_dims(g, axis)
                np.copyto(out, src)

        add_compute(0, c_red)
    elif op == "matmul":
        a, b = parents[0].data, parents[1].data
        if a.ndim < 2 or b.ndim < 2:
            return None  # eager has dedicated 1-D branches; keep the closure
        a_t = np.swapaxes(a, -1, -2)
        b_t = np.swapaxes(b, -1, -2)
        for k, _ in grad_edges():
            if k == 0:
                if np.matmul(np.empty(g.shape), b_t).shape == a.shape:
                    add_compute(0, lambda out: np.matmul(g, b_t, out=out))
                else:
                    add_view(0, lambda: g @ b_t)
            else:
                if np.matmul(a_t, np.empty(g.shape)).shape == b.shape:
                    add_compute(1, lambda out: np.matmul(a_t, g, out=out))
                else:
                    add_view(1, lambda: a_t @ g)
    elif op in ("reshape", "squeeze", "unsqueeze"):
        original = parents[0].data.shape
        add_view(0, lambda: g.reshape(original))
    elif op == "transpose":
        inverse = np.argsort(meta["axes"])
        add_view(0, lambda: g.transpose(inverse))
    elif op == "getitem":
        index = meta["index"]
        pj, pbuf, _ = edge(0)

        if pj in pruned:
            pass
        elif delivered is None:
            tmp_i = np.empty(pbuf.shape, dtype=np.float64)

            def act_getitem():
                if has[pj]:
                    tmp_i.fill(0.0)
                    np.add.at(tmp_i, index, g)
                    np.add(pbuf, tmp_i, out=pbuf)
                else:
                    pbuf.fill(0.0)
                    np.add.at(pbuf, index, g)
                    has[pj] = True

        elif pj in delivered:
            tmp_i = np.empty(pbuf.shape, dtype=np.float64)

            def act_getitem():
                tmp_i.fill(0.0)
                np.add.at(tmp_i, index, g)
                np.add(pbuf, tmp_i, out=pbuf)

        else:
            delivered.add(pj)

            def act_getitem():
                pbuf.fill(0.0)
                np.add.at(pbuf, index, g)

        if pj not in pruned:
            actions.append(act_getitem)
    elif op == "concat":
        axis = meta["axis"]
        sizes = [p.data.shape[axis] for p in parents]
        starts = np.concatenate([[0], np.cumsum(sizes)])
        for k, _ in grad_edges():
            slicer = (slice(None),) * (axis % g.ndim) + (
                slice(int(starts[k]), int(starts[k + 1])),
            )
            add_view(k, lambda slicer=slicer: g[slicer])
    elif op == "stack":
        axis = meta["axis"]
        for k, _ in grad_edges():
            slicer = (slice(None),) * (axis % g.ndim) + (k,)
            add_view(k, lambda slicer=slicer: g[slicer])
    elif op in ("where", "maximum"):
        selector = meta["cond" if op == "where" else "mask"]
        inverse_sel = np.empty(selector.shape, dtype=bool)
        for k, _ in grad_edges():
            if k == 0:
                if same(0):
                    add_compute(0, lambda out: np.multiply(g, selector, out=out))
                else:
                    add_view(0, lambda: g * selector)
            elif same(1):

                def c_other(out):
                    np.logical_not(selector, out=inverse_sel)
                    np.multiply(g, inverse_sel, out=out)

                add_compute(1, c_other)
            else:
                add_view(1, lambda: g * ~selector)
    else:
        return None

    if not actions:
        return _NOOP  # recognised op, every delivery pruned
    if len(actions) == 1:
        return actions[0]

    def step():
        for act in actions:
            act()

    return step


def _generic_backward_step(node, g, gbufs, has, pindex, pruned):
    """Recorded-closure fallback, bitwise-identical to Tensor.backward."""
    backward = node._backward
    parents = node._parents
    targets = []
    for p in parents:
        if p.requires_grad:
            pj = pindex[id(p)]
            if pj in pruned:
                targets.append(None)
            else:
                targets.append((pj, gbufs[pj], p.data.shape))
        else:
            targets.append(None)

    def step():
        contributions = backward(g)
        for target, contribution in zip(targets, contributions):
            if target is None or contribution is None:
                continue
            pj, pbuf, pshape = target
            contribution = _unbroadcast(
                np.asarray(contribution, dtype=np.float64), pshape
            )
            if has[pj]:
                np.add(pbuf, contribution, out=pbuf)
            else:
                np.copyto(pbuf, contribution)
                has[pj] = True

    return step


# ---------------------------------------------------------------------------
# The tape
# ---------------------------------------------------------------------------


class CompiledTape:
    """A recorded graph replayable into its own preallocated buffers.

    Built from one traced execution; :meth:`forward` refreshes the input
    leaf buffers and re-runs every op kernel in recording order (which is
    a valid topological order — parents are created before children).
    :meth:`backward` replays the recorded closures over the cached
    schedule of ``outputs[0]``, replicating :meth:`Tensor.backward`
    semantics exactly — including gradient accumulation across repeated
    ``backward()`` calls on the same forward.
    """

    def __init__(
        self,
        inputs: Sequence[Tensor],
        outputs: Sequence[Tensor],
        records: Sequence[tuple[Tensor, tuple, str, dict | None]],
        forward_only: bool = False,
        input_grads_only: bool = False,
    ):
        self.inputs = list(inputs)
        self.outputs = tuple(outputs)
        self.forward_only = forward_only
        self.input_grads_only = bool(input_grads_only) and not forward_only
        self._input_buffers = [t.data for t in self.inputs]
        self._grad_inputs = [t for t in self.inputs if t.requires_grad]

        entries: list[tuple[str, Tensor, tuple, Callable]] = []
        for node, parents, op, meta in records:
            meta = meta or {}
            if op in _VIEW_OPS:
                step = _view_rule(node, parents, meta, op)
                if step is None:
                    continue
            else:
                factory = _RULES.get(op)
                if factory is None:
                    raise TapeUnsupported(f"op {op!r} has no replay rule")
                step = factory(node, parents, meta)
            entries.append((op, node, parents, step))
        self._program, self.chains_fused = _fuse(entries)
        self.num_steps = len(entries)

        if not forward_only:
            if not self.outputs or not self.outputs[0].requires_grad:
                raise TapeUnsupported("primary output records no gradient tape")
            self._order = self.outputs[0]._topological_order()
            self._pindex = {id(t): i for i, t in enumerate(self._order)}
            self._build_backward(records)

    def _build_backward(self, records) -> None:
        """Preallocate gradient buffers and compile the backward schedule.

        Tries a *static* schedule first: when every node has a fast rule,
        the write/add pattern is resolved at build time and replay runs
        the steps unconditionally (valid because every fast rule delivers
        to all of its requires-grad parents, so each buffer provably
        receives a gradient).  A tape with any recorded-closure fallback
        (whose deliveries may be data-dependent) keeps runtime ``has``
        gating, exactly mirroring ``Tensor.backward``'s grads dict.

        Under ``input_grads_only`` every gradient *leaf* that is not one
        of the tape's inputs (i.e. the model parameters) is marked
        pruned: leaves are pure sinks, so dropping their deliveries —
        typically the weight-gradient GEMMs — cannot change any interior
        gradient, and in particular leaves the input gradients bitwise
        intact.  Pruned replays do not refresh ``param.grad``; attack
        loops never read it, and training steps call ``zero_grad()``
        before their own (unpruned) backward.
        """
        order, pindex = self._order, self._pindex
        ops = {id(node): (op, meta or {}) for node, _, op, meta in records}
        if self.input_grads_only:
            keep = {id(t) for t in self._grad_inputs}
            self._pruned = {
                pos
                for pos, node in enumerate(order)
                if node.requires_grad
                and node._backward is None
                and id(node) not in keep
            }
        else:
            self._pruned = set()
        self._gbufs = [
            np.empty(node.data.shape, dtype=np.float64)
            if node.requires_grad and pos not in self._pruned
            else None
            for pos, node in enumerate(order)
        ]
        self._bhas = [False] * len(order)
        program = self._compile_schedule(ops, delivered={0})
        self._bstatic = program is not None
        if program is None:
            program = self._compile_schedule(ops, delivered=None)
        self._bprogram = program

    def _compile_schedule(self, ops, delivered):
        """Lay out backward steps; None if a static layout is impossible."""
        order, pindex = self._order, self._pindex
        pruned = self._pruned
        program: list[tuple[int, Callable]] = []
        for pos, node in enumerate(order):
            if not node.requires_grad or pos in pruned:
                continue
            if delivered is not None and pos not in delivered:
                return None  # a buffer the simulation cannot prove filled
            g = self._gbufs[pos]
            if node._backward is None:
                program.append((pos, lambda node=node, g=g: node._accumulate(g)))
                continue
            op, meta = ops.get(id(node), (None, {}))
            step = _fast_backward_step(
                op, node, node._parents, meta, g, self._gbufs, self._bhas,
                pindex, delivered, pruned,
            )
            if step is _NOOP:
                continue
            if step is None:
                if delivered is not None:
                    return None  # recorded-closure op: needs runtime gating
                step = _generic_backward_step(
                    node, g, self._gbufs, self._bhas, pindex, pruned
                )
            program.append((pos, step))
        return program

    def forward(self, arrays: Sequence[np.ndarray]) -> tuple[Tensor, ...]:
        """Refresh input buffers and replay the program in place."""
        if len(arrays) != len(self._input_buffers):
            raise ValueError(f"expected {len(self._input_buffers)} inputs, got {len(arrays)}")
        for buffer, array in zip(self._input_buffers, arrays):
            np.copyto(buffer, array)
        # Input leaves start each *run* fresh, exactly like newly-built
        # eager leaves.  (Parameter grads are deliberately left alone —
        # eager training steps own their zero_grad() calls.)
        for leaf in self._grad_inputs:
            leaf.grad = None
        for step in self._program:
            step()
        return self.outputs

    def backward(self, seed: np.ndarray) -> None:
        """Replay backward from ``outputs[0]`` with a prepared seed.

        Mirrors :meth:`Tensor.backward` over the precompiled schedule:
        same node order, same edge arithmetic, same accumulation — but
        gradients flow through preallocated per-node buffers instead of
        freshly allocated contribution arrays (see the backward-rule
        section above for the bitwise argument).
        """
        np.copyto(self._gbufs[0], seed)  # order[0] is outputs[0]
        if self._bstatic:
            for _position, step in self._bprogram:
                step()
            return
        has = self._bhas
        for i in range(len(has)):
            has[i] = False
        has[0] = True
        for position, step in self._bprogram:
            if has[position]:
                step()

    def grad_leaves(self) -> list[Tensor]:
        """Leaves that accumulate gradients (parameters and grad inputs)."""
        if self.forward_only:
            return list(self._grad_inputs)
        return [
            t
            for pos, t in enumerate(self._order)
            if t._backward is None and t.requires_grad and pos not in self._pruned
        ]


# ---------------------------------------------------------------------------
# The compiled function
# ---------------------------------------------------------------------------

_VALIDATING, _TRUSTED, _REJECTED = "validating", "trusted", "rejected"


class _Entry:
    __slots__ = ("tape", "state", "forward_passes", "reason")

    def __init__(self, tape: CompiledTape | None):
        self.tape = tape
        self.state = _VALIDATING if tape is not None else _REJECTED
        self.forward_passes = 0
        self.reason: str | None = None


class CompiledRun:
    """One execution of a CompiledFunction.

    ``outputs`` are Tensors; on a replay they alias the tape's buffers
    and stay valid only until the function's next call with the same
    shape key.  ``mode`` is one of ``eager`` / ``record`` / ``validate``
    / ``replay``.
    """

    __slots__ = ("outputs", "mode", "_backward_impl", "_input_grad_impl")

    def __init__(self, outputs, mode, backward_impl, input_grad_impl):
        self.outputs = outputs
        self.mode = mode
        self._backward_impl = backward_impl
        self._input_grad_impl = input_grad_impl

    def backward(self, seed=None) -> None:
        """Backpropagate from ``outputs[0]`` (optionally seeded)."""
        if self._backward_impl is None:
            raise RuntimeError("this CompiledFunction is forward-only")
        self._backward_impl(seed)

    def input_grad(self, index: int) -> np.ndarray | None:
        """Gradient accumulated on input ``index`` (after backward)."""
        return self._input_grad_impl(index)


class CompiledFunction:
    """Record/validate/replay wrapper around a pure tensor function.

    Parameters
    ----------
    fn:
        Pure function mapping input Tensors to a Tensor or tuple of
        Tensors.  Must be straight-line tensor code (see module doc).
    grad_indices:
        Positions of inputs that should be ``requires_grad`` leaves.
    name:
        Label used in diagnostics.
    forward_only:
        When True the function is value-only: ``backward`` is
        unavailable, recording still traces through parameters, and two
        clean forward validations promote the tape.
    input_grads_only:
        When True, compiled replays prune gradient deliveries to leaves
        other than the declared ``grad_indices`` inputs — parameter
        gradients (the weight-grad GEMMs) are skipped entirely.  Input
        gradients are bitwise unchanged (leaves are pure sinks), but
        trusted replays no longer refresh ``param.grad``; only use this
        for attack-style loops that read input gradients exclusively.
        Eager and validation runs still populate every gradient.
    max_tapes:
        Maximum distinct shape signatures to compile; further shapes run
        eagerly (no eviction — steady-state loops have few shapes).
    """

    def __init__(
        self,
        fn: Callable[..., Tensor | tuple[Tensor, ...]],
        grad_indices: Sequence[int] = (),
        name: str = "compiled_fn",
        forward_only: bool = False,
        input_grads_only: bool = False,
        max_tapes: int = 8,
    ):
        self.fn = fn
        self.grad_indices = frozenset(grad_indices)
        self.name = name
        self.forward_only = forward_only
        self.input_grads_only = input_grads_only
        self.max_tapes = max_tapes
        self._entries: dict[tuple, _Entry] = {}
        self.stats = {"record": 0, "validate": 0, "replay": 0, "eager": 0, "rejected": 0}

    # -- public -------------------------------------------------------
    def __call__(self, *arrays: np.ndarray) -> CompiledRun:
        arrays = tuple(np.asarray(a) for a in arrays)
        if not is_grad_enabled() or _tensor_module._TRACE_HOOK is not None:
            # no_grad, or another CompiledFunction is recording through
            # us — replaying under a foreign trace would corrupt its tape.
            return self._eager_run(arrays)
        key = tuple(a.shape for a in arrays)
        entry = self._entries.get(key)
        if entry is None:
            if len(self._entries) >= self.max_tapes:
                return self._eager_run(arrays)
            return self._record(key, arrays)
        if entry.state == _REJECTED:
            return self._eager_run(arrays)
        if entry.state == _TRUSTED:
            return self._replay_run(entry, arrays)
        if self.forward_only and entry.forward_passes >= _FORWARD_TRUST_PASSES:
            entry.state = _TRUSTED
            return self._replay_run(entry, arrays)
        return self._validate_run(entry, arrays)

    def states(self) -> dict[tuple, str]:
        """Shape key → tape state, for tests and diagnostics."""
        return {key: entry.state for key, entry in self._entries.items()}

    # -- execution paths ----------------------------------------------
    def _make_inputs(self, arrays, copy: bool) -> list[Tensor]:
        inputs = []
        for index, array in enumerate(arrays):
            data = np.array(array, dtype=np.float64, copy=True) if copy else array
            inputs.append(Tensor(data, requires_grad=index in self.grad_indices))
        return inputs

    def _call_fn(self, inputs) -> tuple[Tensor, ...]:
        outputs = self.fn(*inputs)
        return outputs if isinstance(outputs, tuple) else (outputs,)

    def _eager_run(self, arrays) -> CompiledRun:
        self.stats["eager"] += 1
        inputs = self._make_inputs(arrays, copy=False)
        if self.forward_only:
            with no_grad():
                outputs = self._call_fn(inputs)
            return CompiledRun(outputs, "eager", None, lambda i: None)
        outputs = self._call_fn(inputs)

        def backward(seed):
            outputs[0].backward(seed)

        return CompiledRun(outputs, "eager", backward, lambda i: inputs[i].grad)

    def _record(self, key, arrays) -> CompiledRun:
        self.stats["record"] += 1
        # Record on private copies: replay refreshes these buffers via
        # copyto, which must never write through to caller arrays.
        inputs = self._make_inputs(arrays, copy=True)
        records: list[tuple[Tensor, tuple, str, dict | None]] = []
        _set_trace_hook(lambda out, parents, op, meta: records.append((out, parents, op, meta)))
        try:
            outputs = self._call_fn(inputs)
        finally:
            _set_trace_hook(None)
        try:
            tape = CompiledTape(
                inputs, outputs, records, self.forward_only, self.input_grads_only
            )
            self._entries[key] = _Entry(tape)
        except TapeUnsupported as exc:
            entry = _Entry(None)
            entry.reason = str(exc)
            self._entries[key] = entry
            self.stats["rejected"] += 1
        # Either way this execution was a plain eager run of fn; hand it
        # to the caller with ordinary eager backward semantics.
        if self.forward_only:
            return CompiledRun(outputs, "record", None, lambda i: None)

        def backward(seed):
            outputs[0].backward(seed)

        return CompiledRun(outputs, "record", backward, lambda i: inputs[i].grad)

    def _replay_run(self, entry: _Entry, arrays) -> CompiledRun:
        self.stats["replay"] += 1
        tape = entry.tape
        outputs = tape.forward(arrays)
        if self.forward_only:
            return CompiledRun(outputs, "replay", None, lambda i: None)

        def backward(seed):
            tape.backward(_prepare_seed(outputs[0], seed))

        return CompiledRun(outputs, "replay", backward, lambda i: tape.inputs[i].grad)

    def _reject(self, entry: _Entry, reason: str) -> None:
        entry.state = _REJECTED
        entry.tape = None
        entry.reason = reason
        self.stats["rejected"] += 1

    def _validate_run(self, entry: _Entry, arrays) -> CompiledRun:
        """Replay and eager side by side; any divergence rejects the tape."""
        self.stats["validate"] += 1
        tape = entry.tape
        try:
            tape_outputs = tape.forward(arrays)
        except Exception as exc:  # noqa: BLE001 - any replay fault → eager
            self._reject(entry, f"replay forward raised: {exc!r}")
            return self._eager_run(arrays)

        # Snapshot replay outputs before the eager pass (shared-parameter
        # models make both graphs read the same live buffers).
        replay_values = [np.array(out.data, copy=True) for out in tape_outputs]

        eager_inputs = self._make_inputs(arrays, copy=False)
        if self.forward_only:
            with no_grad():
                eager_outputs = self._call_fn(eager_inputs)
        else:
            eager_outputs = self._call_fn(eager_inputs)

        for replayed, eager in zip(replay_values, eager_outputs):
            if not _bitwise_equal(replayed, eager.data):
                self._reject(entry, "forward replay diverged from eager")
                if self.forward_only:
                    return CompiledRun(eager_outputs, "eager", None, lambda i: None)
                return CompiledRun(
                    eager_outputs,
                    "eager",
                    lambda seed: eager_outputs[0].backward(seed),
                    lambda i: eager_inputs[i].grad,
                )
        entry.forward_passes += 1

        if self.forward_only:
            return CompiledRun(eager_outputs, "validate", None, lambda i: None)

        cf = self

        def backward(seed):
            prepared = _prepare_seed(eager_outputs[0], seed)
            # Parameters are shared between the tape and the eager
            # reference graph; tape input leaves are private to the tape.
            shared = [
                leaf
                for leaf in tape.grad_leaves()
                if all(leaf is not t for t in tape.inputs)
            ]
            saved = [(leaf, None if leaf.grad is None else leaf.grad.copy()) for leaf in shared]
            tape_ok = True
            try:
                tape.backward(prepared)
                replay_grads = [
                    None if leaf.grad is None else leaf.grad.copy() for leaf in shared
                ]
                replay_input_grads = [
                    None if t.grad is None else t.grad.copy() for t in tape.inputs
                ]
            except Exception as exc:  # noqa: BLE001
                cf._reject(entry, f"replay backward raised: {exc!r}")
                tape_ok = False
            # Roll the shared leaves back, then run the authoritative
            # eager backward; its gradients are what the caller keeps.
            for leaf, grad in saved:
                leaf.grad = grad
            eager_outputs[0].backward(prepared)
            if not tape_ok:
                return
            for leaf, replayed in zip(shared, replay_grads):
                eager_grad = leaf.grad
                if replayed is None and eager_grad is None:
                    continue
                if (
                    replayed is None
                    or eager_grad is None
                    or not _bitwise_equal(replayed, eager_grad)
                ):
                    cf._reject(entry, "backward replay diverged from eager")
                    return
            # Input-leaf gradients live on different objects per graph.
            for index in sorted(cf.grad_indices):
                replayed = replay_input_grads[index]
                eager_grad = eager_inputs[index].grad
                if replayed is None and eager_grad is None:
                    continue
                if (
                    replayed is None
                    or eager_grad is None
                    or not _bitwise_equal(replayed, eager_grad)
                ):
                    cf._reject(entry, "input gradient replay diverged from eager")
                    return
            entry.state = _TRUSTED

        return CompiledRun(
            eager_outputs, "validate", backward, lambda i: eager_inputs[i].grad
        )
