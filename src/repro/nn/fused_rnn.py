"""Fused single-layer LSTM: one autograd node for a whole sequence pass.

The composable :class:`~repro.nn.layers.recurrent.LSTMCell` builds ~30
graph nodes per timestep; at alpha = 12 steps and 2 layers a single
training step touches ~1500 Python closures, which dominates wall time
on small models.  This module implements the same math as one primitive
with a hand-written backward-through-time, cutting the per-step node
count to one per layer.

Semantics: gradients flow through the returned *output sequence* only.
The final (h, c) values are returned as plain arrays for state
threading; callers needing gradients through the final hidden state
should slice ``outputs[:, -1, :]`` (identical values).
"""

from __future__ import annotations

import numpy as np
from scipy.special import expit as _sigmoid

from .tensor import Tensor

__all__ = ["lstm_layer_forward"]


def lstm_layer_forward(
    x: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
    h0: np.ndarray | None = None,
    c0: np.ndarray | None = None,
) -> tuple[Tensor, np.ndarray, np.ndarray]:
    """Run one LSTM layer over a (B, T, I) sequence in a single graph node.

    Parameters
    ----------
    x:
        Input sequence tensor, shape (batch, time, input_size).
    weight_ih, weight_hh, bias:
        Gate parameters with the LSTMCell layout: (4H, I), (4H, H), (4H,)
        in [input, forget, cell, output] order.
    h0, c0:
        Optional initial state arrays, shape (batch, H); zeros if omitted.

    Returns
    -------
    outputs:
        Tensor of hidden states, shape (batch, time, H), differentiable
        w.r.t. ``x`` and the three parameters.
    h_final, c_final:
        Final state as plain arrays (no gradient path; see module doc).
    """
    x_data = x.data
    if x_data.ndim != 3:
        raise ValueError(f"expected (batch, time, features) input, got shape {x_data.shape}")
    batch, steps, _ = x_data.shape
    hidden = weight_hh.data.shape[1]
    if weight_ih.data.shape[0] != 4 * hidden or bias.data.shape[0] != 4 * hidden:
        raise ValueError("gate parameter shapes are inconsistent")

    w_ih = weight_ih.data
    w_hh = weight_hh.data
    b = bias.data

    h = np.zeros((batch, hidden)) if h0 is None else np.asarray(h0, dtype=np.float64)
    c = np.zeros((batch, hidden)) if c0 is None else np.asarray(c0, dtype=np.float64)

    # Input contribution for every step at once: (B, T, 4H).
    gates_x = x_data @ w_ih.T + b

    outputs = np.empty((batch, steps, hidden))
    # Caches for backward.
    i_cache = np.empty((batch, steps, hidden))
    f_cache = np.empty((batch, steps, hidden))
    g_cache = np.empty((batch, steps, hidden))
    o_cache = np.empty((batch, steps, hidden))
    c_prev_cache = np.empty((batch, steps, hidden))
    tanh_c_cache = np.empty((batch, steps, hidden))
    h_prev_cache = np.empty((batch, steps, hidden))

    for t in range(steps):
        gates = gates_x[:, t, :] + h @ w_hh.T
        i_gate = _sigmoid(gates[:, 0 * hidden : 1 * hidden])
        f_gate = _sigmoid(gates[:, 1 * hidden : 2 * hidden])
        g_gate = np.tanh(gates[:, 2 * hidden : 3 * hidden])
        o_gate = _sigmoid(gates[:, 3 * hidden : 4 * hidden])
        c_prev_cache[:, t] = c
        h_prev_cache[:, t] = h
        c = f_gate * c + i_gate * g_gate
        tanh_c = np.tanh(c)
        h = o_gate * tanh_c
        outputs[:, t] = h
        i_cache[:, t] = i_gate
        f_cache[:, t] = f_gate
        g_cache[:, t] = g_gate
        o_cache[:, t] = o_gate
        tanh_c_cache[:, t] = tanh_c

    h_final, c_final = h.copy(), c.copy()

    def backward(grad_out: np.ndarray):
        """BPTT over the cached gate activations."""
        grad_x = np.zeros_like(x_data, dtype=np.float64)
        grad_w_ih = np.zeros_like(w_ih, dtype=np.float64)
        grad_w_hh = np.zeros_like(w_hh, dtype=np.float64)
        grad_b = np.zeros_like(b, dtype=np.float64)
        dh_next = np.zeros((batch, hidden))
        dc_next = np.zeros((batch, hidden))
        dgates = np.empty((batch, 4 * hidden))

        for t in range(steps - 1, -1, -1):
            i_gate = i_cache[:, t]
            f_gate = f_cache[:, t]
            g_gate = g_cache[:, t]
            o_gate = o_cache[:, t]
            tanh_c = tanh_c_cache[:, t]

            dh = grad_out[:, t] + dh_next
            do = dh * tanh_c
            dc = dc_next + dh * o_gate * (1.0 - tanh_c * tanh_c)
            di = dc * g_gate
            df = dc * c_prev_cache[:, t]
            dg = dc * i_gate
            dc_next = dc * f_gate

            dgates[:, 0 * hidden : 1 * hidden] = di * i_gate * (1.0 - i_gate)
            dgates[:, 1 * hidden : 2 * hidden] = df * f_gate * (1.0 - f_gate)
            dgates[:, 2 * hidden : 3 * hidden] = dg * (1.0 - g_gate * g_gate)
            dgates[:, 3 * hidden : 4 * hidden] = do * o_gate * (1.0 - o_gate)

            grad_x[:, t] = dgates @ w_ih
            dh_next = dgates @ w_hh
            grad_w_ih += dgates.T @ x_data[:, t]
            grad_w_hh += dgates.T @ h_prev_cache[:, t]
            grad_b += dgates.sum(axis=0)

        return grad_x, grad_w_ih, grad_w_hh, grad_b

    out = Tensor._make(outputs, (x, weight_ih, weight_hh, bias), backward, "lstm_fused")
    return out, h_final, c_final
