"""Fused single-layer LSTM: one autograd node for a whole sequence pass.

The composable :class:`~repro.nn.layers.recurrent.LSTMCell` builds ~30
graph nodes per timestep; at alpha = 12 steps and 2 layers a single
training step touches ~1500 Python closures, which dominates wall time
on small models.  This module implements the same math as one primitive
with a hand-written backward-through-time, cutting the per-step node
count to one per layer.  The whole gate chain (two matmuls, three
sigmoids, two tanhs and the cell update) lives in one kernel — this is
the "fused LSTM-gate chain" the compiled replay path reuses verbatim.

Semantics: gradients flow through the returned *output sequence* only.
The final (h, c) values are returned as plain arrays for state
threading; callers needing gradients through the final hidden state
should slice ``outputs[:, -1, :]`` (identical values).

Initial-state contract: ``h0`` / ``c0`` are **values**, not graph
nodes.  They may be plain arrays or non-grad Tensors; passing a
``requires_grad`` Tensor raises, because this primitive returns no
gradient for them — accepting one would silently truncate BPTT at the
window boundary when chaining windows through a carried hidden state.
Use the unfused ``LSTM(fused=False)`` path when the initial state must
be differentiable.
"""

from __future__ import annotations

import numpy as np
from scipy.special import expit as _sigmoid

from .tensor import Tensor

__all__ = ["lstm_layer_forward"]


def _as_state_array(state: "np.ndarray | Tensor | None", batch: int, hidden: int, name: str) -> np.ndarray:
    """Validate an initial-state argument and return it as a float64 array."""
    if state is None:
        return np.zeros((batch, hidden), dtype=np.float64)
    if isinstance(state, Tensor):
        if state.requires_grad:
            raise ValueError(
                f"lstm_layer_forward received a requires_grad Tensor as {name}: "
                "the fused LSTM backward returns gradients only for "
                "(x, weight_ih, weight_hh, bias), so a differentiable initial "
                "state would be silently truncated out of BPTT. Pass plain "
                "values (array or non-grad Tensor), or use LSTM(fused=False) "
                "to keep a gradient path through the carried state."
            )
        state = state.data
    return np.asarray(state, dtype=np.float64)


def _lstm_forward_kernel(
    x_data: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    b: np.ndarray,
    h: np.ndarray,
    c: np.ndarray,
    gates_x: np.ndarray,
    outputs: np.ndarray,
    caches: dict[str, np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Run the gate chain, filling ``outputs`` / ``caches`` in place.

    Shared by the eager op (fresh buffers) and the compiled replay path
    (record-time buffers) so both produce bit-identical activations.
    ``h`` / ``c`` are read, never written.  Returns the final state.
    """
    steps = x_data.shape[1]
    hidden = w_hh.shape[1]
    # Input contribution for every step at once: (B, T, 4H).
    np.matmul(x_data, w_ih.T, out=gates_x)
    gates_x += b
    i_cache = caches["i"]
    f_cache = caches["f"]
    g_cache = caches["g"]
    o_cache = caches["o"]
    c_prev_cache = caches["c_prev"]
    tanh_c_cache = caches["tanh_c"]
    h_prev_cache = caches["h_prev"]

    for t in range(steps):
        gates = gates_x[:, t, :] + h @ w_hh.T
        i_gate = _sigmoid(gates[:, 0 * hidden : 1 * hidden])
        f_gate = _sigmoid(gates[:, 1 * hidden : 2 * hidden])
        g_gate = np.tanh(gates[:, 2 * hidden : 3 * hidden])
        o_gate = _sigmoid(gates[:, 3 * hidden : 4 * hidden])
        c_prev_cache[:, t] = c
        h_prev_cache[:, t] = h
        c = f_gate * c + i_gate * g_gate
        tanh_c = np.tanh(c)
        h = o_gate * tanh_c
        outputs[:, t] = h
        i_cache[:, t] = i_gate
        f_cache[:, t] = f_gate
        g_cache[:, t] = g_gate
        o_cache[:, t] = o_gate
        tanh_c_cache[:, t] = tanh_c

    return h.copy(), c.copy()


def lstm_layer_forward(
    x: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
    h0: "np.ndarray | Tensor | None" = None,
    c0: "np.ndarray | Tensor | None" = None,
) -> tuple[Tensor, np.ndarray, np.ndarray]:
    """Run one LSTM layer over a (B, T, I) sequence in a single graph node.

    Parameters
    ----------
    x:
        Input sequence tensor, shape (batch, time, input_size).
    weight_ih, weight_hh, bias:
        Gate parameters with the LSTMCell layout: (4H, I), (4H, H), (4H,)
        in [input, forget, cell, output] order.
    h0, c0:
        Optional initial state *values*, shape (batch, H); zeros if
        omitted.  Arrays or non-grad Tensors only — a ``requires_grad``
        Tensor raises (see the module docstring for the contract).

    Returns
    -------
    outputs:
        Tensor of hidden states, shape (batch, time, H), differentiable
        w.r.t. ``x`` and the three parameters.
    h_final, c_final:
        Final state as plain arrays (no gradient path; see module doc).
    """
    x_data = x.data
    if x_data.ndim != 3:
        raise ValueError(f"expected (batch, time, features) input, got shape {x_data.shape}")
    batch, steps, _ = x_data.shape
    hidden = weight_hh.data.shape[1]
    if weight_ih.data.shape[0] != 4 * hidden or bias.data.shape[0] != 4 * hidden:
        raise ValueError("gate parameter shapes are inconsistent")

    w_ih = weight_ih.data
    w_hh = weight_hh.data
    b = bias.data

    h = _as_state_array(h0, batch, hidden, "h0")
    c = _as_state_array(c0, batch, hidden, "c0")

    gates_x = np.empty((batch, steps, 4 * hidden), dtype=np.float64)
    outputs = np.empty((batch, steps, hidden), dtype=np.float64)
    # Caches for backward (refreshed in place on compiled replay).
    caches = {
        name: np.empty((batch, steps, hidden), dtype=np.float64)
        for name in ("i", "f", "g", "o", "c_prev", "tanh_c", "h_prev")
    }

    h_final, c_final = _lstm_forward_kernel(
        x_data, w_ih, w_hh, b, h, c, gates_x, outputs, caches
    )
    i_cache = caches["i"]
    f_cache = caches["f"]
    g_cache = caches["g"]
    o_cache = caches["o"]
    c_prev_cache = caches["c_prev"]
    tanh_c_cache = caches["tanh_c"]
    h_prev_cache = caches["h_prev"]

    def backward(grad_out: np.ndarray):
        """BPTT over the cached gate activations."""
        grad_x = np.zeros_like(x_data, dtype=np.float64)
        grad_w_ih = np.zeros_like(w_ih, dtype=np.float64)
        grad_w_hh = np.zeros_like(w_hh, dtype=np.float64)
        grad_b = np.zeros_like(b, dtype=np.float64)
        dh_next = np.zeros((batch, hidden), dtype=np.float64)
        dc_next = np.zeros((batch, hidden), dtype=np.float64)
        dgates = np.empty((batch, 4 * hidden), dtype=np.float64)

        for t in range(steps - 1, -1, -1):
            i_gate = i_cache[:, t]
            f_gate = f_cache[:, t]
            g_gate = g_cache[:, t]
            o_gate = o_cache[:, t]
            tanh_c = tanh_c_cache[:, t]

            dh = grad_out[:, t] + dh_next
            do = dh * tanh_c
            dc = dc_next + dh * o_gate * (1.0 - tanh_c * tanh_c)
            di = dc * g_gate
            df = dc * c_prev_cache[:, t]
            dg = dc * i_gate
            dc_next = dc * f_gate

            dgates[:, 0 * hidden : 1 * hidden] = di * i_gate * (1.0 - i_gate)
            dgates[:, 1 * hidden : 2 * hidden] = df * f_gate * (1.0 - f_gate)
            dgates[:, 2 * hidden : 3 * hidden] = dg * (1.0 - g_gate * g_gate)
            dgates[:, 3 * hidden : 4 * hidden] = do * o_gate * (1.0 - o_gate)

            grad_x[:, t] = dgates @ w_ih
            dh_next = dgates @ w_hh
            grad_w_ih += dgates.T @ x_data[:, t]
            grad_w_hh += dgates.T @ h_prev_cache[:, t]
            grad_b += dgates.sum(axis=0)

        return grad_x, grad_w_ih, grad_w_hh, grad_b

    out = Tensor._make(
        outputs,
        (x, weight_ih, weight_hh, bias),
        backward,
        "lstm_fused",
        {"gates_x": gates_x, "caches": caches, "h0": h.copy(), "c0": c.copy()},
    )
    return out, h_final, c_final
