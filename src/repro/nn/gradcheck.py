"""Finite-difference gradient verification.

Used throughout the test suite to certify that every layer's analytic
gradient matches a central-difference estimate.  This is the safety net
that lets a from-scratch autograd engine be trusted for the paper's
experiments.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    func: Callable[[], Tensor],
    tensor: Tensor,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``func()`` w.r.t. ``tensor``.

    ``func`` must return a scalar Tensor and must read ``tensor.data``
    afresh on each call (closures over Tensors satisfy this).
    """
    grad = np.zeros_like(tensor.data, dtype=np.float64)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(func().data)
        flat[i] = original - eps
        minus = float(func().data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    func: Callable[[], Tensor],
    tensors: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-4,
) -> None:
    """Assert analytic gradients of ``func`` match finite differences.

    Raises ``AssertionError`` naming the offending tensor index.
    """
    for tensor in tensors:
        tensor.zero_grad()
    output = func()
    output.backward()
    for index, tensor in enumerate(tensors):
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, tensor, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch for tensor #{index}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
