"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so every
experiment in the repository is reproducible from a single seed.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "kaiming_normal",
    "uniform",
    "zeros",
    "orthogonal",
]


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense or convolutional weights."""
    if len(shape) < 2:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initialisation."""
    fan_in, fan_out = _fan(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot & Bengio (2010) normal initialisation."""
    fan_in, fan_out = _fan(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He et al. (2015) uniform initialisation for ReLU networks."""
    fan_in, _ = _fan(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He et al. (2015) normal initialisation for ReLU networks."""
    fan_in, _ = _fan(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, bound: float) -> np.ndarray:
    """Uniform initialisation in [-bound, bound]."""
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)


def orthogonal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialisation (Saxe et al., 2014) — good for RNNs."""
    if len(shape) < 2:
        raise ValueError("orthogonal init requires at least a 2-D shape")
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))  # make the decomposition unique
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols].reshape(shape)
