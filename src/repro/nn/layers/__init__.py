"""Neural network layers for the from-scratch substrate."""

from .activation import ELU, LeakyReLU, ReLU, Sigmoid, Tanh
from .container import ModuleList, Sequential
from .conv import AvgPool2d, Conv2d, Flatten, MaxPool2d
from .dropout import Dropout
from .gru import GRU, GRUCell
from .linear import Linear
from .normalization import BatchNorm1d, BatchNorm2d, LayerNorm
from .recurrent import LSTM, LSTMCell

__all__ = [
    "ELU",
    "LeakyReLU",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "ModuleList",
    "Sequential",
    "AvgPool2d",
    "Conv2d",
    "Flatten",
    "MaxPool2d",
    "Dropout",
    "GRU",
    "GRUCell",
    "Linear",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "LSTM",
    "LSTMCell",
]
