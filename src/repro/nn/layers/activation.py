"""Activation layers (stateless Module wrappers over Tensor methods)."""

from __future__ import annotations

from ..module import Module
from ..tensor import Tensor

__all__ = ["ReLU", "Tanh", "Sigmoid", "LeakyReLU", "ELU"]


class ReLU(Module):
    """Rectified linear unit: ``max(x, 0)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic activation ``1 / (1 + exp(-x))``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class ELU(Module):
    """Exponential linear unit: x for x>0, alpha*(exp(x)-1) otherwise."""

    def __init__(self, alpha: float = 1.0):
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        from ..ops import where

        return where(x.data > 0, x, (x.exp() - 1.0) * self.alpha)
