"""Module containers: Sequential and ModuleList."""

from __future__ import annotations

from typing import Iterable, Iterator

from ..module import Module
from ..tensor import Tensor

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Run child modules in order, feeding each one the previous output."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: list[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            self.register_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        self.register_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, x: Tensor) -> Tensor:
        for module in self:
            x = module(x)
        return x


class ModuleList(Module):
    """A list of modules whose parameters are registered for training."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._order: list[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        self.register_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, *args, **kwargs):
        raise NotImplementedError("ModuleList is a container; call its children directly")
