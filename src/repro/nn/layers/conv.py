"""Convolution and pooling layers built on the im2col primitives."""

from __future__ import annotations

import numpy as np

from .. import init, ops
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Conv2d", "MaxPool2d", "AvgPool2d", "Flatten"]


def _pair(value: int | tuple[int, int]) -> tuple[int, int]:
    return (value, value) if isinstance(value, int) else tuple(value)


class Conv2d(Module):
    """2-D convolution (cross-correlation) layer.

    Parameters follow the familiar convention: weight of shape
    (out_channels, in_channels, kh, kw), optional bias of shape
    (out_channels,).  Initialised with Kaiming uniform (ReLU networks).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        shape = (out_channels, in_channels) + self.kernel_size
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return ops.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def output_shape(self, height: int, width: int) -> tuple[int, int]:
        """Spatial output size for a given input size."""
        kh, kw = self.kernel_size
        sh, sw = self.stride
        ph, pw = self.padding
        return (height + 2 * ph - kh) // sh + 1, (width + 2 * pw - kw) // sw + 1

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size: int | tuple[int, int], stride: int | tuple[int, int] | None = None):
        super().__init__()
        self.kernel_size = _pair(kernel_size)
        self.stride = self.kernel_size if stride is None else _pair(stride)

    def forward(self, x: Tensor) -> Tensor:
        return ops.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(self, kernel_size: int | tuple[int, int], stride: int | tuple[int, int] | None = None):
        super().__init__()
        self.kernel_size = _pair(kernel_size)
        self.stride = self.kernel_size if stride is None else _pair(stride)

    def forward(self, x: Tensor) -> Tensor:
        return ops.avg_pool2d(x, self.kernel_size, self.stride)


class Flatten(Module):
    """Flatten all axes after the batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)
