"""Inverted dropout regularisation."""

from __future__ import annotations

import numpy as np

from ..module import Module
from ..tensor import Tensor

__all__ = ["Dropout"]


class Dropout(Module):
    """Randomly zero a fraction ``p`` of activations during training.

    Uses *inverted* dropout (surviving activations scaled by 1/(1-p)) so
    evaluation is a plain identity.  The mask is drawn from the provided
    generator for reproducibility.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)
