"""GRU layers (Cho et al., 2014) — the lighter recurrent alternative.

Several traffic-prediction works the paper cites use GRUs instead of
LSTMs; providing both lets downstream users swap the recurrent body
without leaving the substrate.  Gate layout: ``weight_ih``/``weight_hh``
hold [reset, update, new] blocks of size ``hidden`` each.
"""

from __future__ import annotations

import math

import numpy as np

from .. import init, ops
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """One GRU step: h' = (1 - z) * n + z * h."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        bound = 1.0 / math.sqrt(hidden_size)
        self.weight_ih = Parameter(init.uniform((3 * hidden_size, input_size), rng, bound))
        self.weight_hh = Parameter(init.uniform((3 * hidden_size, hidden_size), rng, bound))
        self.bias_ih = Parameter(np.zeros(3 * hidden_size))
        self.bias_hh = Parameter(np.zeros(3 * hidden_size))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        """Advance one step for a (batch, input_size) input."""
        hs = self.hidden_size
        gates_x = x @ self.weight_ih.T + self.bias_ih
        gates_h = hidden @ self.weight_hh.T + self.bias_hh
        reset = (gates_x[:, 0:hs] + gates_h[:, 0:hs]).sigmoid()
        update = (gates_x[:, hs : 2 * hs] + gates_h[:, hs : 2 * hs]).sigmoid()
        new = (gates_x[:, 2 * hs : 3 * hs] + reset * gates_h[:, 2 * hs : 3 * hs]).tanh()
        return (1.0 - update) * new + update * hidden

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class GRU(Module):
    """Multi-layer GRU over a (batch, time, features) sequence."""

    def __init__(
        self,
        input_size: int,
        hidden_sizes: int | list[int],
        num_layers: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        if isinstance(hidden_sizes, int):
            hidden_sizes = [hidden_sizes] * (num_layers or 1)
        elif num_layers is not None and len(hidden_sizes) != num_layers:
            raise ValueError("len(hidden_sizes) must equal num_layers")
        self.input_size = input_size
        self.hidden_sizes = list(hidden_sizes)
        sizes = [input_size] + self.hidden_sizes
        from .container import ModuleList

        self.cells = ModuleList(
            GRUCell(sizes[i], sizes[i + 1], rng=rng) for i in range(len(self.hidden_sizes))
        )

    def forward(
        self, x: Tensor, state: list[Tensor] | None = None
    ) -> tuple[Tensor, list[Tensor]]:
        """Return (outputs (B, T, H_last), final hidden per layer)."""
        if x.ndim != 3:
            raise ValueError(f"GRU expects (batch, time, features), got {x.shape}")
        batch, steps, _ = x.shape
        if state is None:
            state = [cell.initial_state(batch) for cell in self.cells]
        else:
            state = list(state)
        outputs: list[Tensor] = []
        for t in range(steps):
            layer_input = x[:, t, :]
            for layer, cell in enumerate(self.cells):
                state[layer] = cell(layer_input, state[layer])
                layer_input = state[layer]
            outputs.append(layer_input)
        return ops.stack(outputs, axis=1), state
