"""Fully-connected (dense) layer."""

from __future__ import annotations

import numpy as np

from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input / output dimensionality.
    bias:
        Whether to learn an additive bias.
    rng:
        Generator used for weight initialisation (Xavier uniform).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"
