"""Normalisation layers: BatchNorm1d / BatchNorm2d / LayerNorm."""

from __future__ import annotations

import numpy as np

from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["BatchNorm1d", "BatchNorm2d", "LayerNorm"]


class _BatchNormBase(Module):
    """Shared machinery: learnable affine + running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def _normalise(self, x: Tensor, axes: tuple[int, ...], shape: tuple[int, ...]) -> Tensor:
        if self.training:
            mean = x.data.mean(axis=axes)
            var = x.data.var(axis=axes)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
            # Differentiable statistics for the backward pass.
            mean_t = x.mean(axis=axes, keepdims=True)
            centred = x - mean_t
            var_t = (centred * centred).mean(axis=axes, keepdims=True)
            inv_std = (var_t + self.eps) ** -0.5
            normalised = centred * inv_std
        else:
            mean = self.running_mean.reshape(shape)
            std = np.sqrt(self.running_var.reshape(shape) + self.eps)
            normalised = (x - Tensor(mean)) * Tensor(1.0 / std)
        return normalised * self.weight.reshape(shape) + self.bias.reshape(shape)


class BatchNorm1d(_BatchNormBase):
    """Batch normalisation over a (N, C) or (N, C, L) input."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 2:
            return self._normalise(x, (0,), (1, self.num_features))
        if x.ndim == 3:
            return self._normalise(x, (0, 2), (1, self.num_features, 1))
        raise ValueError(f"BatchNorm1d expects 2-D or 3-D input, got {x.ndim}-D")


class BatchNorm2d(_BatchNormBase):
    """Batch normalisation over a (N, C, H, W) input."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects 4-D input, got {x.ndim}-D")
        return self._normalise(x, (0, 2, 3), (1, self.num_features, 1, 1))


class LayerNorm(Module):
    """Layer normalisation over the trailing ``normalized_shape`` axes."""

    def __init__(self, normalized_shape: int | tuple[int, ...], eps: float = 1e-5):
        super().__init__()
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(normalized_shape)
        self.eps = eps
        self.weight = Parameter(np.ones(self.normalized_shape))
        self.bias = Parameter(np.zeros(self.normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        axes = tuple(range(x.ndim - len(self.normalized_shape), x.ndim))
        mean = x.mean(axis=axes, keepdims=True)
        centred = x - mean
        var = (centred * centred).mean(axis=axes, keepdims=True)
        normalised = centred * (var + self.eps) ** -0.5
        return normalised * self.weight + self.bias
