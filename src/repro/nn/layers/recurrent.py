"""Recurrent layers: LSTMCell and multi-layer LSTM.

The LSTM follows Hochreiter & Schmidhuber (1997) with the standard
forget/input/cell/output gate parameterisation.  Gates are computed in a
single fused affine map per step for speed; the sequence loop unrolls the
autograd graph over time (truncated BPTT is unnecessary at the paper's
sequence length of alpha = 12).
"""

from __future__ import annotations

import math

import numpy as np

from .. import init, ops
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM step.

    Weight layout: ``weight_ih`` (4*hidden, input), ``weight_hh``
    (4*hidden, hidden); gate order is [input, forget, cell, output].
    The forget-gate bias is initialised to 1 (Jozefowicz et al., 2015).
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        bound = 1.0 / math.sqrt(hidden_size)
        self.weight_ih = Parameter(init.uniform((4 * hidden_size, input_size), rng, bound))
        self.weight_hh = Parameter(init.uniform((4 * hidden_size, hidden_size), rng, bound))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate bias
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        """Advance one step.

        Parameters
        ----------
        x:
            Input of shape (batch, input_size).
        state:
            Tuple (h, c) each of shape (batch, hidden_size).
        """
        h_prev, c_prev = state
        gates = x @ self.weight_ih.T + h_prev @ self.weight_hh.T + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs : 1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs : 2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs : 3 * hs].tanh()
        o_gate = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_next = f_gate * c_prev + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next

    def initial_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        """Zero (h, c) state for a batch."""
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Multi-layer LSTM over a (batch, time, features) sequence.

    Returns the full top-layer output sequence and the final (h, c) of
    every layer, mirroring the usual framework contract.

    Two execution paths share the same parameters:

    * ``fused=True`` (default) runs each layer through the single-node
      :func:`repro.nn.fused_rnn.lstm_layer_forward` — far fewer Python
      closures, same math.  The returned per-layer state carries values
      but no gradient path (slice ``outputs[:, -1, :]`` when the final
      hidden state must be differentiable).
    * ``fused=False`` unrolls :class:`LSTMCell` step by step, keeping a
      full gradient path through the returned state.
    """

    def __init__(
        self,
        input_size: int,
        hidden_sizes: int | list[int],
        num_layers: int | None = None,
        fused: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        if isinstance(hidden_sizes, int):
            hidden_sizes = [hidden_sizes] * (num_layers or 1)
        elif num_layers is not None and len(hidden_sizes) != num_layers:
            raise ValueError("len(hidden_sizes) must equal num_layers")
        self.input_size = input_size
        self.hidden_sizes = list(hidden_sizes)
        self.fused = fused
        sizes = [input_size] + self.hidden_sizes
        from .container import ModuleList

        self.cells = ModuleList(
            LSTMCell(sizes[i], sizes[i + 1], rng=rng) for i in range(len(self.hidden_sizes))
        )

    def forward(
        self, x: Tensor, state: list[tuple[Tensor, Tensor]] | None = None
    ) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        """Run the stack over a full sequence.

        Parameters
        ----------
        x:
            Input of shape (batch, time, input_size).
        state:
            Optional initial per-layer (h, c); zeros if omitted.

        Returns
        -------
        outputs:
            Top-layer hidden states, shape (batch, time, hidden_sizes[-1]).
        state:
            Final (h, c) per layer.
        """
        if x.ndim != 3:
            raise ValueError(f"LSTM expects (batch, time, features), got {x.shape}")
        batch, steps, _ = x.shape
        if state is None:
            state = [cell.initial_state(batch) for cell in self.cells]
        else:
            state = list(state)

        if self.fused:
            return self._forward_fused(x, state)

        outputs: list[Tensor] = []
        for t in range(steps):
            layer_input = x[:, t, :]
            for layer, cell in enumerate(self.cells):
                h, c = cell(layer_input, state[layer])
                state[layer] = (h, c)
                layer_input = h
            outputs.append(layer_input)
        return ops.stack(outputs, axis=1), state

    def _forward_fused(
        self, x: Tensor, state: list[tuple[Tensor, Tensor]]
    ) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        """Layer-by-layer fused pass (see class docstring for semantics).

        Initial state is passed through as Tensors so the fused primitive
        can enforce its value-only contract: a ``requires_grad`` state
        raises instead of being silently cut out of BPTT (use
        ``fused=False`` for a differentiable carried state).
        """
        from ..fused_rnn import lstm_layer_forward

        layer_input = x
        new_state: list[tuple[Tensor, Tensor]] = []
        for layer, cell in enumerate(self.cells):
            h0, c0 = state[layer]
            layer_input, h_final, c_final = lstm_layer_forward(
                layer_input, cell.weight_ih, cell.weight_hh, cell.bias, h0, c0
            )
            new_state.append((Tensor(h_final), Tensor(c_final)))
        return layer_input, new_state
