"""Loss functions used by APOTS and its baselines.

The paper's objectives need exactly two ingredients: per-speed MSE for the
predictor and log-probability (binary cross-entropy style) terms for the
adversarial game.  ``BCEWithLogitsLoss`` is provided as the numerically
safe route for discriminator training.
"""

from __future__ import annotations

import numpy as np

from .module import Module
from .tensor import Tensor, as_tensor

__all__ = ["MSELoss", "L1Loss", "BCELoss", "BCEWithLogitsLoss", "HuberLoss"]

_EPS = 1e-12


class _Loss(Module):
    """Base class handling the mean/sum/none reduction convention."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction

    def _reduce(self, value: Tensor) -> Tensor:
        if self.reduction == "mean":
            return value.mean()
        if self.reduction == "sum":
            return value.sum()
        return value


class MSELoss(_Loss):
    """Mean squared error: mean((prediction - target)^2)."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        target = as_tensor(target)
        diff = prediction - target.detach()
        return self._reduce(diff * diff)


class L1Loss(_Loss):
    """Mean absolute error."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        target = as_tensor(target)
        return self._reduce((prediction - target.detach()).abs())


class HuberLoss(_Loss):
    """Huber loss: quadratic near zero, linear beyond ``delta``."""

    def __init__(self, delta: float = 1.0, reduction: str = "mean"):
        super().__init__(reduction)
        self.delta = delta

    def forward(self, prediction: Tensor, target) -> Tensor:
        from .ops import where

        target = as_tensor(target)
        diff = prediction - target.detach()
        abs_diff = diff.abs()
        quadratic = diff * diff * 0.5
        linear = abs_diff * self.delta - 0.5 * self.delta**2
        return self._reduce(where(abs_diff.data <= self.delta, quadratic, linear))


class BCELoss(_Loss):
    """Binary cross-entropy on probabilities in (0, 1).

    Inputs are clipped away from {0, 1} before the log for stability;
    prefer :class:`BCEWithLogitsLoss` when you have raw scores.
    """

    def forward(self, probability: Tensor, target) -> Tensor:
        target = as_tensor(target).detach()
        p = probability.clip(_EPS, 1.0 - _EPS)
        loss = -(target * p.log() + (1.0 - target) * (1.0 - p).log())
        return self._reduce(loss)


class BCEWithLogitsLoss(_Loss):
    """Numerically-stable BCE on raw logits.

    Uses the identity
    ``bce(x, y) = max(x, 0) - x*y + log(1 + exp(-|x|))``.
    """

    def forward(self, logits: Tensor, target) -> Tensor:
        from .ops import maximum

        target = as_tensor(target).detach()
        zero = Tensor(np.zeros_like(logits.data))
        loss = maximum(logits, zero) - logits * target + (1.0 + (-logits.abs()).exp()).log()
        return self._reduce(loss)
