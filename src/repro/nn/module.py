"""Module / Parameter abstractions and state-dict serialisation.

Mirrors the familiar torch.nn.Module contract at the scale this project
needs: automatic parameter registration via ``__setattr__``, recursive
``parameters()`` / ``named_parameters()``, train/eval mode propagation,
and ``state_dict`` round-tripping to ``.npz`` files.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "save_state", "load_state"]


class Parameter(Tensor):
    """A Tensor flagged as trainable (always requires grad)."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        self.requires_grad = True  # immune to no_grad() at construction


class Module:
    """Base class for all neural network components."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name`` (for dynamic children)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters of this module and children."""
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield (dotted-name, parameter) pairs recursively."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Mode and gradients
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Set this module and all children to training mode."""
        for module in self.modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        """Set this module and all children to evaluation mode."""
        for module in self.modules():
            object.__setattr__(module, "training", False)
        return self

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, values in state.items():
            param = own[name]
            values = np.asarray(values, dtype=param.data.dtype)
            if values.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {values.shape} vs {param.data.shape}")
            param.data[...] = values


def save_state(module: Module, path: str | Path) -> None:
    """Serialise a module's state dict to a ``.npz`` file."""
    np.savez(Path(path), **module.state_dict())


def load_state(module: Module, path: str | Path) -> None:
    """Load a state dict previously written by :func:`save_state`."""
    with np.load(Path(path)) as archive:
        module.load_state_dict({k: archive[k] for k in archive.files})
