"""Structural and convolutional differentiable operations.

These are free functions over :class:`repro.nn.tensor.Tensor` that do not
fit naturally as methods: concatenation/stacking, padding, im2col-based 2-D
convolution and pooling, and a few composite helpers (softmax, where).

The convolution forward/backward pair is implemented as a single primitive
(rather than composed from indexing ops) because the im2col/col2im
formulation is orders of magnitude faster in numpy.

Forward computations with derived state (convolution patch matrices,
pooling argmaxes) are factored into ``_*_forward`` helpers shared with
:mod:`repro.nn.compile`, so a compiled replay recomputes bit-identical
values and refreshes the arrays the backward closures captured.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "concat",
    "stack",
    "pad2d",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "where",
    "maximum",
    "softmax",
    "log_softmax",
    "im2col",
    "col2im",
]


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.data.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad):
        return tuple(np.split(grad, boundaries, axis=axis))

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tensors, backward, "concat", {"axis": axis})


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(p.squeeze(axis) for p in pieces)

    data = np.stack([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tensors, backward, "stack", {"axis": axis})


def pad2d(x: Tensor, padding: int | tuple[int, int]) -> Tensor:
    """Zero-pad the last two axes of a (N, C, H, W) tensor."""
    ph, pw = (padding, padding) if isinstance(padding, int) else padding
    if ph == 0 and pw == 0:
        return x
    pads = [(0, 0)] * (x.ndim - 2) + [(ph, ph), (pw, pw)]

    def backward(grad):
        slicer = tuple(
            slice(p[0], grad.shape[i] - p[1] if p[1] else None) for i, p in enumerate(pads)
        )
        return (grad[slicer],)

    return Tensor._make(np.pad(x.data, pads), (x,), backward, "pad2d", {"pads": pads})


# ---------------------------------------------------------------------------
# im2col / col2im machinery
# ---------------------------------------------------------------------------
def im2col(
    x: np.ndarray, kernel: tuple[int, int], stride: tuple[int, int]
) -> tuple[np.ndarray, int, int]:
    """Unfold (N, C, H, W) into (N, C*kh*kw, out_h*out_w) patches."""
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    shape = (n, c, kh, kw, out_h, out_w)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3],
        x.strides[2] * sh,
        x.strides[3] * sw,
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: tuple[int, int],
) -> np.ndarray:
    """Fold patch gradients back into an image gradient (inverse of im2col)."""
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    grad_x = np.zeros(x_shape, dtype=cols.dtype)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        for j in range(kw):
            grad_x[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += cols[:, :, i, j]
    return grad_x


def _conv2d_forward(
    x_data: np.ndarray,
    w_data: np.ndarray,
    bias_data: np.ndarray | None,
    stride: tuple[int, int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple[int, int, int, int]]:
    """The conv2d forward math, shared by the eager op and replay.

    Returns ``(out, cols_flat, w_mat, (k_dim, length, out_h, out_w))``.
    """
    n = x_data.shape[0]
    c_out, _, kh, kw = w_data.shape
    cols, out_h, out_w = im2col(x_data, (kh, kw), stride)  # (N, C*kh*kw, L)
    k_dim = cols.shape[1]
    length = cols.shape[2]
    w_mat = w_data.reshape(c_out, -1)  # (C_out, C*kh*kw)
    # (N*L, K) @ (K, C_out) keeps everything in BLAS.
    cols_flat = cols.transpose(0, 2, 1).reshape(n * length, k_dim)
    out = (cols_flat @ w_mat.T).reshape(n, length, c_out).transpose(0, 2, 1)
    out = np.ascontiguousarray(out).reshape(n, c_out, out_h, out_w)
    if bias_data is not None:
        out = out + bias_data.reshape(1, c_out, 1, 1)
    return out, cols_flat, w_mat, (k_dim, length, out_h, out_w)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int | tuple[int, int] = 1,
    padding: int | tuple[int, int] = 0,
) -> Tensor:
    """2-D cross-correlation over a (N, C_in, H, W) input.

    ``weight`` has shape (C_out, C_in, kh, kw), ``bias`` shape (C_out,).
    """
    stride = (stride, stride) if isinstance(stride, int) else tuple(stride)
    if padding != 0 and padding != (0, 0):
        x = pad2d(x, padding)

    x_data = x.data
    w_data = weight.data
    n, c_in, h, w = x_data.shape
    c_out, c_in_w, kh, kw = w_data.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")

    out, cols_flat, w_mat, (k_dim, length, _, _) = _conv2d_forward(
        x_data, w_data, None if bias is None else bias.data, stride
    )

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad_flat = grad.reshape(n, c_out, length)  # (N, C_out, L)
        grad_2d = np.ascontiguousarray(grad_flat.transpose(0, 2, 1)).reshape(n * length, c_out)
        grad_w = (grad_2d.T @ cols_flat).reshape(w_data.shape)
        grad_cols = (grad_2d @ w_mat).reshape(n, length, k_dim).transpose(0, 2, 1)
        grad_x = col2im(np.ascontiguousarray(grad_cols), x_data.shape, (kh, kw), stride)
        if bias is None:
            return grad_x, grad_w
        grad_b = grad_2d.sum(axis=0)
        return grad_x, grad_w, grad_b

    return Tensor._make(out, parents, backward, "conv2d", {"cols_flat": cols_flat, "stride": stride})


def _max_pool_forward(
    x_data: np.ndarray, kernel: tuple[int, int], stride: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Max-pool forward math; returns ``(out, argmax, out_h, out_w)``."""
    n, c = x_data.shape[:2]
    cols, out_h, out_w = im2col(x_data, kernel, stride)
    cols = cols.reshape(n, c, kernel[0] * kernel[1], out_h * out_w)
    arg = cols.argmax(axis=2)  # (N, C, L)
    out = np.take_along_axis(cols, arg[:, :, None, :], axis=2).squeeze(2)
    return out.reshape(n, c, out_h, out_w), arg, out_h, out_w


def max_pool2d(x: Tensor, kernel: int | tuple[int, int], stride: int | tuple[int, int] | None = None) -> Tensor:
    """Max pooling over the last two axes of (N, C, H, W)."""
    kernel = (kernel, kernel) if isinstance(kernel, int) else tuple(kernel)
    stride = kernel if stride is None else ((stride, stride) if isinstance(stride, int) else tuple(stride))
    x_data = x.data
    n, c, h, w = x_data.shape
    out, arg, out_h, out_w = _max_pool_forward(x_data, kernel, stride)

    def backward(grad):
        grad_flat = grad.reshape(n, c, -1)
        grad_cols = np.zeros((n, c, kernel[0] * kernel[1], out_h * out_w), dtype=np.float64)
        np.put_along_axis(grad_cols, arg[:, :, None, :], grad_flat[:, :, None, :], axis=2)
        grad_cols = grad_cols.reshape(n, c * kernel[0] * kernel[1], out_h * out_w)
        return (col2im(grad_cols, x_data.shape, kernel, stride),)

    return Tensor._make(out, (x,), backward, "max_pool2d", {"kernel": kernel, "stride": stride, "arg": arg})


def _avg_pool_forward(
    x_data: np.ndarray, kernel: tuple[int, int], stride: tuple[int, int]
) -> np.ndarray:
    """Average-pool forward math (no derived state)."""
    n, c = x_data.shape[:2]
    cols, out_h, out_w = im2col(x_data, kernel, stride)
    cols = cols.reshape(n, c, kernel[0] * kernel[1], out_h * out_w)
    return cols.mean(axis=2).reshape(n, c, out_h, out_w)


def avg_pool2d(x: Tensor, kernel: int | tuple[int, int], stride: int | tuple[int, int] | None = None) -> Tensor:
    """Average pooling over the last two axes of (N, C, H, W)."""
    kernel = (kernel, kernel) if isinstance(kernel, int) else tuple(kernel)
    stride = kernel if stride is None else ((stride, stride) if isinstance(stride, int) else tuple(stride))
    x_data = x.data
    n, c, h, w = x_data.shape
    area = kernel[0] * kernel[1]
    out = _avg_pool_forward(x_data, kernel, stride)
    out_h, out_w = out.shape[2], out.shape[3]

    def backward(grad):
        grad_flat = grad.reshape(n, c, 1, -1) / area
        grad_cols = np.broadcast_to(grad_flat, (n, c, area, out_h * out_w))
        grad_cols = grad_cols.reshape(n, c * area, out_h * out_w)
        return (col2im(np.ascontiguousarray(grad_cols), x_data.shape, kernel, stride),)

    return Tensor._make(out, (x,), backward, "avg_pool2d", {"kernel": kernel, "stride": stride})


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select: ``condition`` is a plain boolean array."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)

    def backward(grad):
        return grad * cond, grad * ~cond

    return Tensor._make(np.where(cond, a.data, b.data), (a, b), backward, "where", {"cond": cond})


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum; ties route gradient to the first argument."""
    a, b = as_tensor(a), as_tensor(b)
    mask = a.data >= b.data

    def backward(grad):
        return grad * mask, grad * ~mask

    return Tensor._make(np.maximum(a.data, b.data), (a, b), backward, "maximum", {"mask": mask})


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``.

    Composite (not a primitive): the shift constant is a fresh untraced
    Tensor derived from the input *values*, so graphs through softmax
    are not replayable by :mod:`repro.nn.compile` — its validation pass
    detects the stale constant and falls back to eager execution.
    """
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed stably (see softmax on replayability)."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()
