"""Optimisers and learning-rate schedulers.

Implements the optimisers the paper's models need (Adam is used for all
APOTS trainings; SGD and RMSprop are provided for baseline parity) plus
global-norm gradient clipping and two simple LR schedules.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from .module import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "RMSprop",
    "clip_grad_norm",
    "StepLR",
    "ExponentialLR",
]


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton, 2012)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.alpha = alpha
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, sq in zip(self.params, self._sq):
            if param.grad is None:
                continue
            sq *= self.alpha
            sq += (1.0 - self.alpha) * param.grad * param.grad
            param.data -= self.lr * param.grad / (np.sqrt(sq) + self.eps)


def clip_grad_norm(
    params: Sequence[Parameter], max_norm: float, *, drop_nonfinite: bool = True
) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).

    A NaN/Inf gradient makes the norm non-finite, and ``norm >
    max_norm`` is False for NaN — naive clipping would wave poisoned
    gradients straight through into the optimiser's running moments.
    With ``drop_nonfinite`` (the default) a non-finite norm instead
    clears every gradient to ``None`` so the following ``step()`` is a
    no-op, and the non-finite norm is still returned so callers (the
    :mod:`repro.obs` monitors) can surface the incident.
    """
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.sum(param.grad * param.grad))
    norm = math.sqrt(total) if math.isfinite(total) else total
    if not math.isfinite(norm):
        if drop_nonfinite:
            for param in params:
                param.grad = None
        return norm
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


class StepLR:
    """Multiply the optimiser LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch += 1
        self.optimizer.lr = self._base_lr * self.gamma ** (self._epoch // self.step_size)


class ExponentialLR:
    """Multiply the optimiser LR by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float):
        self.optimizer = optimizer
        self.gamma = gamma

    def step(self) -> None:
        self.optimizer.lr *= self.gamma
