"""Optimisers and learning-rate schedulers.

Implements the optimisers the paper's models need (Adam is used for all
APOTS trainings; SGD and RMSprop are provided for baseline parity) plus
global-norm gradient clipping and two simple LR schedules.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from .module import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "RMSprop",
    "clip_grad_norm",
    "StepLR",
    "ExponentialLR",
]


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float, *, drop_nonfinite: bool = True) -> float:
        """:func:`clip_grad_norm` over this optimiser's parameters.

        Reuses per-parameter scratch arrays so the squared-norm pass
        allocates nothing — same arithmetic, hot-loop friendly.
        """
        scratch = getattr(self, "_clip_scratch", None)
        if scratch is None:
            scratch = [np.empty_like(p.data) for p in self.params]
            self._clip_scratch = scratch
        return clip_grad_norm(
            self.params, max_norm, drop_nonfinite=drop_nonfinite, scratch=scratch
        )


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        # All per-parameter state lives as views into flat arrays: when
        # every parameter carries a gradient (the normal training step)
        # the whole moment update runs as a handful of ufunc calls over
        # the flat storage instead of ~10 dispatches per parameter.
        # Elementwise ops never mix elements, so flat and per-view
        # updates are the same float arithmetic bit for bit.
        sizes = [p.data.size for p in self.params]
        bounds = np.concatenate([[0], np.cumsum(sizes)]).astype(int)
        total = int(bounds[-1])
        self._flat_m = np.zeros(total, dtype=np.float64)
        self._flat_v = np.zeros(total, dtype=np.float64)
        self._flat_g = np.empty(total, dtype=np.float64)
        self._flat_t1 = np.empty(total, dtype=np.float64)
        self._flat_t2 = np.empty(total, dtype=np.float64)

        def views(flat):
            return [
                flat[int(s):int(e)].reshape(p.data.shape)
                for p, s, e in zip(self.params, bounds[:-1], bounds[1:])
            ]

        self._m = views(self._flat_m)
        self._v = views(self._flat_v)
        self._scratch = list(zip(views(self._flat_t1), views(self._flat_t2)))
        self._grad_views = views(self._flat_g)
        # Seed each parameter's cached gradient buffer with its flat
        # view: backward then accumulates straight into _flat_g and the
        # fast path below needs no gather.  A parameter shared with
        # another optimiser may get re-seeded; the identity check in
        # step() falls back to per-view updates in that case.
        for param, gview in zip(self.params, self._grad_views):
            if param.grad is None:
                param._grad_buf = gview
        self._t = 0

    def step(self) -> None:
        self._t += 1
        beta1, beta2 = self.beta1, self.beta2
        bias1 = 1.0 - beta1**self._t
        bias2 = 1.0 - beta2**self._t
        if not self.weight_decay and all(
            param.grad is gview
            for param, gview in zip(self.params, self._grad_views)
        ):
            grad = self._flat_g
            m, v = self._flat_m, self._flat_v
            t1, t2 = self._flat_t1, self._flat_t2
            self._update(grad, m, v, t1, t2, bias1, bias2)
            for param, update in zip(self.params, self._scratch):
                param.data -= update[0]
            return
        for param, m, v, (t1, t2) in zip(
            self.params, self._m, self._v, self._scratch
        ):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._update(grad, m, v, t1, t2, bias1, bias2)
            param.data -= t1

    def _update(self, grad, m, v, t1, t2, bias1, bias2) -> None:
        """One Adam moment/update pass, allocation-free via ``out=``.

        Each line is the same float arithmetic as the naive expression
        it replaces (multiplication by a scalar is commutative bitwise).
        """
        beta1, beta2 = self.beta1, self.beta2
        m *= beta1
        np.multiply(grad, 1.0 - beta1, out=t1)
        m += t1
        v *= beta2
        np.multiply(grad, 1.0 - beta2, out=t2)  # (1-b2)*grad ...
        np.multiply(t2, grad, out=t2)  # ... * grad, eager's order
        v += t2
        np.divide(m, bias1, out=t1)  # m_hat
        np.divide(v, bias2, out=t2)  # v_hat
        np.sqrt(t2, out=t2)
        t2 += self.eps
        np.multiply(t1, self.lr, out=t1)  # lr * m_hat
        np.divide(t1, t2, out=t1)


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton, 2012)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.alpha = alpha
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, sq in zip(self.params, self._sq):
            if param.grad is None:
                continue
            sq *= self.alpha
            sq += (1.0 - self.alpha) * param.grad * param.grad
            param.data -= self.lr * param.grad / (np.sqrt(sq) + self.eps)


def clip_grad_norm(
    params: Sequence[Parameter],
    max_norm: float,
    *,
    drop_nonfinite: bool = True,
    scratch: Sequence[np.ndarray] | None = None,
) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).

    A NaN/Inf gradient makes the norm non-finite, and ``norm >
    max_norm`` is False for NaN — naive clipping would wave poisoned
    gradients straight through into the optimiser's running moments.
    With ``drop_nonfinite`` (the default) a non-finite norm instead
    clears every gradient to ``None`` so the following ``step()`` is a
    no-op, and the non-finite norm is still returned so callers (the
    :mod:`repro.obs` monitors) can surface the incident.

    ``scratch`` (one array per parameter, same shapes) makes the
    squared-norm pass allocation-free; entries with a stale shape fall
    back to the allocating expression.  The arithmetic is identical.
    """
    total = 0.0
    for i, param in enumerate(params):
        grad = param.grad
        if grad is None:
            continue
        if scratch is not None and scratch[i].shape == grad.shape:
            np.multiply(grad, grad, out=scratch[i])
            total += float(np.sum(scratch[i]))
        else:
            total += float(np.sum(grad * grad))
    norm = math.sqrt(total) if math.isfinite(total) else total
    if not math.isfinite(norm):
        if drop_nonfinite:
            for param in params:
                param.grad = None
        return norm
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


class StepLR:
    """Multiply the optimiser LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch += 1
        self.optimizer.lr = self._base_lr * self.gamma ** (self._epoch // self.step_size)


class ExponentialLR:
    """Multiply the optimiser LR by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float):
        self.optimizer = optimizer
        self.gamma = gamma

    def step(self) -> None:
        self.optimizer.lr *= self.gamma
