"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro.nn`` deep-learning substrate.
The paper's models were built on a mainstream framework; none is available
offline, so we implement the minimum viable engine ourselves: a ``Tensor``
wrapping a ``numpy.ndarray``, a dynamically-built computation graph, and
reverse-mode backpropagation over a topological ordering of that graph.

Only float64 arrays flow through the graph — ``Tensor`` promotes every
other dtype on construction and :meth:`Tensor._make` rejects non-float64
op results, so the preallocated replay buffers of :mod:`repro.nn.compile`
can never bake in a mixed-precision graph.  Gradients are plain numpy
arrays stored on leaf (and, on request, interior) tensors.

Example
-------
>>> from repro.nn import Tensor
>>> x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad
array([2., 4., 6.])
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

_GRAD_ENABLED = True

#: Callable invoked for every op result while recording, or None.
#: Installed by :mod:`repro.nn.compile`; receives ``(out, parents, op,
#: meta)`` where ``meta`` is the op's static/derived replay state.
#: Parents and op are passed explicitly because *value* nodes (no
#: grad-requiring parent) carry no tape yet still need replaying — e.g.
#: concatenating a detached sequence with a condition input.
_TRACE_HOOK: Callable[..., None] | None = None


def _set_trace_hook(hook: Callable[..., None] | None) -> None:
    """Install (or clear, with None) the graph-recording hook."""
    global _TRACE_HOOK
    _TRACE_HOOK = hook


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (like torch.no_grad)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting may both prepend axes and stretch length-1 axes; the
    gradient of a broadcast is the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched length-1 axes.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


def as_tensor(value, dtype=np.float64) -> "Tensor":
    """Coerce ``value`` (Tensor, array, scalar, nested list) to a Tensor."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype))


class Tensor:
    """A numpy array with an autograd tape.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Every dtype other than
        float64 (ints, bools, float32, ...) is promoted to float64: the
        substrate pins a single dtype policy so gradients are
        well-defined and replay buffers are homogeneous.  float64 input
        is wrapped without a copy (``detach()`` relies on the shared
        buffer).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = (
        "data", "grad", "requires_grad", "_backward", "_parents", "_op", "_grad_buf"
    )

    def __init__(self, data, requires_grad: bool = False):
        array = np.asarray(data)
        if array.dtype != np.float64:
            array = array.astype(np.float64)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self._grad_buf: np.ndarray | None = None
        # Inside no_grad() the flag is silently dropped: the leaf will
        # never record a tape, and backward() would leave .grad = None.
        # Callers that require input gradients must check
        # is_grad_enabled() up front (repro.attacks.gradients does) —
        # by the time the None grad surfaces, the cause is off the stack.
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._op: str = ""

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_note})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._raise_item()

    @staticmethod
    def _raise_item():
        raise ValueError("item() only works on single-element tensors")

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @classmethod
    def _make(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str = "",
        meta: dict | None = None,
    ) -> "Tensor":
        """Create a graph node; drops the tape when grad is disabled.

        ``meta`` carries the op's replay state for :mod:`repro.nn.compile`:
        static arguments (axes, bounds) plus any *derived* arrays the
        backward closure captured (masks, scales) so a replay can refresh
        them in place.  It is ignored on the eager path.

        Every op must produce float64 — the one dtype the substrate
        allows through the graph (leaf construction promotes, so a
        violation here means an op implementation dropped precision).
        """
        array = np.asarray(data)
        if array.dtype != np.float64:
            raise TypeError(
                f"op {op or '<anonymous>'!r} produced dtype {array.dtype}; "
                "repro.nn pins a single float64 policy for all graph nodes"
            )
        out = cls(array)
        if _GRAD_ENABLED:
            if any(p.requires_grad for p in parents):
                out.requires_grad = True
                out._parents = tuple(parents)
                out._backward = backward
                out._op = op
            if _TRACE_HOOK is not None:
                _TRACE_HOOK(out, tuple(parents), op, meta)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first use).

        The buffer is cached across ``zero_grad()`` cycles: a training
        step allocates each leaf's gradient array once, then every later
        backward refills it in place.  ``grad + 0.0`` is the same float
        arithmetic as ``zeros + grad`` (addition is commutative bitwise,
        including signed zeros and NaN payloads), done in one pass.
        """
        if self.grad is None:
            buf = self._grad_buf
            if buf is None or buf.shape != self.data.shape:
                buf = np.empty(self.data.shape, dtype=np.float64)
                self._grad_buf = buf
            if np.shape(grad) == buf.shape:
                np.add(grad, 0.0, out=buf)
            else:
                buf.fill(0.0)
                buf += grad
            self.grad = buf
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults
            to 1 for scalar tensors (the common loss case).  A supplied
            seed must match ``self.shape`` exactly; only 0-d scalars are
            broadcast.  (Silently broadcasting would accept a transposed
            or mis-shaped seed and propagate wrong gradients.)
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar backward()")
            grad = np.ones_like(self.data, dtype=np.float64)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.ndim == 0:
                grad = np.broadcast_to(grad, self.data.shape).copy()
            elif grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} does not match tensor "
                    f"shape {self.data.shape}; only scalar (0-d) seeds are broadcast"
                )

        order = self._topological_order()
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            # Interior node: route gradient to parents via the op closure.
            node._backward_dispatch(node_grad, grads)

    def _backward_dispatch(self, node_grad: np.ndarray, grads: dict[int, np.ndarray]) -> None:
        """Invoke the op backward closure, collecting parent grads."""
        contributions = self._backward(node_grad)
        for parent, contribution in zip(self._parents, contributions):
            if contribution is None or not parent.requires_grad:
                continue
            contribution = _unbroadcast(np.asarray(contribution, dtype=np.float64), parent.shape)
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + contribution
            else:
                grads[key] = contribution

    def _topological_order(self) -> list["Tensor"]:
        """Return graph nodes reachable from self, outputs-first."""
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad):
            return grad, grad

        return Tensor._make(self.data + other.data, (self, other), backward, "add")

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad):
            return grad, -grad

        return Tensor._make(self.data - other.data, (self, other), backward, "sub")

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data

        def backward(grad):
            return grad * b, grad * a

        return Tensor._make(a * b, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data

        def backward(grad):
            return grad / b, -grad * a / (b * b)

        return Tensor._make(a / b, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        a = self.data

        def backward(grad):
            return (grad * exponent * np.power(a, exponent - 1),)

        return Tensor._make(np.power(a, exponent), (self,), backward, "pow", {"exponent": exponent})

    # ------------------------------------------------------------------
    # Matrix ops
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        out = a @ b

        def backward(grad):
            if a.ndim == 1 and b.ndim == 1:  # inner product
                return grad * b, grad * a
            if a.ndim == 1:  # (k,) @ (k, n)
                return grad @ b.T, np.outer(a, grad)
            if b.ndim == 1:  # (m, k) @ (k,)
                return np.outer(grad, b), a.T @ grad
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            return grad_a, grad_b

        return Tensor._make(out, (self, other), backward, "matmul")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            return (grad * out_data,)

        return Tensor._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        a = self.data

        def backward(grad):
            return (grad / a,)

        return Tensor._make(np.log(a), (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad):
            return (grad * 0.5 / out_data,)

        return Tensor._make(out_data, (self,), backward, "sqrt")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - out_data * out_data),)

        return Tensor._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic: exp of a non-positive argument only.
        a = self.data
        positive = a >= 0
        exp_neg_abs = np.exp(-np.abs(a))
        out_data = np.where(positive, 1.0 / (1.0 + exp_neg_abs), exp_neg_abs / (1.0 + exp_neg_abs))

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        return Tensor._make(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(self.data * mask, (self,), backward, "relu", {"mask": mask})

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)

        def backward(grad):
            return (grad * scale,)

        return Tensor._make(
            self.data * scale,
            (self,),
            backward,
            "leaky_relu",
            {"scale": scale, "slope": negative_slope},
        )

    def abs(self) -> "Tensor":
        # Treat 0 as positive so composite losses (e.g. BCE-with-logits,
        # built from max and abs) stay exact at the origin.
        sign = np.where(self.data >= 0, 1.0, -1.0)

        def backward(grad):
            return (grad * sign,)

        return Tensor._make(np.abs(self.data), (self,), backward, "abs", {"sign": sign})

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through inside the interval."""
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(
            np.clip(self.data, low, high),
            (self,),
            backward,
            "clip",
            {"mask": mask, "low": low, "high": high},
        )

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        shape = self.data.shape

        def backward(grad):
            if axis is None:
                return (np.broadcast_to(grad, shape).copy(),)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, shape).copy(),)

        return Tensor._make(
            self.data.sum(axis=axis, keepdims=keepdims),
            (self,),
            backward,
            "sum",
            {"axis": axis, "keepdims": keepdims},
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        shape = self.data.shape
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([shape[a] for a in axes]))

        def backward(grad):
            if axis is None:
                return (np.broadcast_to(grad / count, shape).copy(),)
            g = grad / count
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, shape).copy(),)

        return Tensor._make(
            self.data.mean(axis=axis, keepdims=keepdims),
            (self,),
            backward,
            "mean",
            {"axis": axis, "keepdims": keepdims},
        )

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        a = self.data

        def backward(grad):
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                o = np.expand_dims(o, axis)
            mask = (a == o).astype(np.float64)
            # Split gradient evenly between ties.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return (g * mask / counts,)

        return Tensor._make(out_data, (self,), backward, "max", {"axis": axis, "keepdims": keepdims})

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad):
            return (grad.reshape(original),)

        return Tensor._make(self.data.reshape(shape), (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor._make(self.data.transpose(axes), (self,), backward, "transpose", {"axes": axes})

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        shape = self.data.shape

        def backward(grad):
            full = np.zeros(shape, dtype=np.float64)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(self.data[index], (self,), backward, "getitem", {"index": index})

    def squeeze(self, axis: int | None = None) -> "Tensor":
        original = self.data.shape

        def backward(grad):
            return (grad.reshape(original),)

        data = self.data.squeeze() if axis is None else self.data.squeeze(axis)
        return Tensor._make(data, (self,), backward, "squeeze")

    def unsqueeze(self, axis: int) -> "Tensor":
        original = self.data.shape

        def backward(grad):
            return (grad.reshape(original),)

        return Tensor._make(np.expand_dims(self.data, axis), (self,), backward, "unsqueeze")

    # ------------------------------------------------------------------
    # Comparison (non-differentiable, returns plain arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other
