"""``repro.obs`` — shared observability for training and serving.

One subsystem instruments both halves of the stack:

* :mod:`telemetry` — counters and bounded-reservoir histograms (moved
  here from ``repro.serving.telemetry``; a re-export shim remains).
* :mod:`recorder` — :class:`RunRecorder` streams structured JSONL
  events next to a run manifest (spec, seed, git describe, wall-clock
  section timings), plus the ambient-recorder context used by the
  experiment harness.
* :mod:`monitors` — GAN-health watchdogs over D(real)/D(fake)
  probabilities, the adversarial-loss share, and gradient norms; they
  raise structured warnings on D-saturation, mode collapse and
  NaN/Inf losses or gradients.
* :mod:`schema` — the event/manifest schema and the validator
  ``tools/ci.sh`` runs against emitted run logs.

Layering: ``repro.obs`` depends on nothing above ``repro.nn`` (it only
uses numpy and the stdlib; enforced by ``tools/check_imports.py``), so
every other layer may instrument itself with it.
"""

from .monitors import (
    GanHealthMonitor,
    GanHealthWarning,
    MonitorConfig,
    TrainingMonitor,
)
from .recorder import RunRecorder, current_recorder, use_recorder
from .schema import EVENT_SCHEMA, validate_event, validate_run_dir
from .telemetry import Counter, Histogram, Telemetry

__all__ = [
    "Counter",
    "Histogram",
    "Telemetry",
    "RunRecorder",
    "current_recorder",
    "use_recorder",
    "GanHealthMonitor",
    "GanHealthWarning",
    "MonitorConfig",
    "TrainingMonitor",
    "EVENT_SCHEMA",
    "validate_event",
    "validate_run_dir",
]
