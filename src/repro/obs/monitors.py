"""Training-health monitors: the failure modes that fail silently.

The APOTS minimax game degrades without crashing: D saturates and P's
adversarial gradient vanishes, P collapses to a near-constant sequence,
or a NaN sneaks into a loss and poisons every running mean downstream.
These monitors watch the per-step signals both trainers already compute
(losses, D(real)/D(fake) probabilities, the adversarial share of P's
loss, pre-clip gradient norms) and raise *structured* warnings: each
incident is recorded as a ``warning`` event on the attached
:class:`~repro.obs.recorder.RunRecorder` and surfaced as a
:class:`GanHealthWarning` via :mod:`warnings` so tests and operators
can assert on it.

Warning codes (thresholds in :class:`MonitorConfig`):

* ``non_finite_loss`` — a loss term went NaN/Inf (immediate).
* ``non_finite_grad_norm`` — the pre-clip gradient norm is NaN/Inf;
  ``nn.clip_grad_norm`` has already dropped the gradients so the
  optimiser step is a no-op (immediate).
* ``d_saturation`` — D(real) ≥ ``d_real_saturation`` and D(fake) ≤
  ``d_fake_saturation`` for ``patience`` consecutive steps: D has won
  and P's adversarial term carries no gradient signal.
* ``adv_loss_vanished`` — the adversarial share of P's total loss
  stayed below ``adv_share_floor`` for ``patience`` steps: the game
  has degenerated into plain supervised training.
* ``mode_collapse`` — the within-batch std of P's generated sequences
  stayed below ``collapse_std_floor`` for ``patience`` steps: P emits
  near-identical sequences regardless of input.
* ``robust_divergence`` — during input-space adversarial training the
  per-batch robust loss exceeded ``robust_divergence_ratio`` times the
  clean loss for ``patience`` steps: the training-time attacker is
  overpowering the model and the mixed batches are mostly noise.

Episode semantics: the patience-based codes fire once per
*episode* — after firing, the condition must clear before the monitor
re-arms — so a saturated run produces one warning, not one per step.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass

from .recorder import RunRecorder

__all__ = ["GanHealthWarning", "MonitorConfig", "TrainingMonitor", "GanHealthMonitor"]


class GanHealthWarning(UserWarning):
    """Structured training-health warning (also recorded as an event)."""


@dataclass(frozen=True)
class MonitorConfig:
    """Thresholds for the GAN-health checks (see module docstring)."""

    d_real_saturation: float = 0.98
    d_fake_saturation: float = 0.02
    adv_share_floor: float = 1e-4
    collapse_std_floor: float = 1e-3
    robust_divergence_ratio: float = 100.0
    patience: int = 20


class TrainingMonitor:
    """Non-finiteness watchdog shared by both trainers.

    ``recorder`` is optional: without one the monitor still raises
    python warnings and counts incidents, it just has nowhere to
    persist the structured events.
    """

    def __init__(
        self,
        recorder: RunRecorder | None = None,
        config: MonitorConfig | None = None,
        *,
        emit_python_warnings: bool = True,
    ):
        self.recorder = recorder
        self.config = config if config is not None else MonitorConfig()
        self.emit_python_warnings = emit_python_warnings
        #: code -> number of incidents raised so far.
        self.counts: dict[str, int] = {}
        self._diverged_steps = 0
        self._divergence_fired = False

    # ------------------------------------------------------------------
    def _episode(self, active: bool, steps: int, fired: bool) -> tuple[int, bool, bool]:
        """Advance one patience counter; returns (steps, fired, fire_now)."""
        if not active:
            return 0, False, False
        steps += 1
        if fired or steps < self.config.patience:
            return steps, fired, False
        return steps, True, True

    def _raise(self, code: str, message: str, **fields) -> str:
        self.counts[code] = self.counts.get(code, 0) + 1
        if self.recorder is not None:
            self.recorder.warning(code, message, **fields)
        if self.emit_python_warnings:
            warnings.warn(f"[{code}] {message}", GanHealthWarning, stacklevel=3)
        return code

    def check_finite(self, step: int, **values: float) -> list[str]:
        """Raise ``non_finite_loss`` / ``non_finite_grad_norm`` incidents.

        ``values`` maps signal names to floats; names ending in
        ``grad_norm`` are classified as gradient norms (whose update
        was already skipped by ``nn.clip_grad_norm``), everything else
        as a loss term.
        """
        raised = []
        for name, value in values.items():
            if math.isfinite(value):
                continue
            if name.endswith("grad_norm"):
                raised.append(
                    self._raise(
                        "non_finite_grad_norm",
                        f"{name}={value} at step {step}; optimiser update skipped",
                        step=step,
                        signal=name,
                        value=float(value),
                    )
                )
            else:
                raised.append(
                    self._raise(
                        "non_finite_loss",
                        f"{name}={value} at step {step}",
                        step=step,
                        signal=name,
                        value=float(value),
                    )
                )
        return raised

    def observe_robust(self, step: int, *, clean_loss: float, robust_loss: float) -> list[str]:
        """Feed one adversarial-augmentation measurement.

        Raises ``robust_divergence`` (episode semantics) when the
        robust loss runs ``config.robust_divergence_ratio`` times above
        the clean loss for ``config.patience`` consecutive steps, plus
        the usual finiteness check on the robust loss.  Available on
        both monitors, since both trainers can train on mixed batches.
        """
        raised = self.check_finite(step, robust_loss=robust_loss)
        diverged = (
            math.isfinite(robust_loss)
            and math.isfinite(clean_loss)
            and robust_loss > self.config.robust_divergence_ratio * max(clean_loss, 1e-12)
        )
        self._diverged_steps, self._divergence_fired, fire = self._episode(
            diverged, self._diverged_steps, self._divergence_fired
        )
        if fire:
            raised.append(
                self._raise(
                    "robust_divergence",
                    f"robust loss {robust_loss:.3e} over "
                    f"{self.config.robust_divergence_ratio:.0f}x the clean loss "
                    f"{clean_loss:.3e} for {self._diverged_steps} consecutive steps: "
                    "the training-time attacker is overpowering the model",
                    step=step,
                    clean_loss=clean_loss,
                    robust_loss=robust_loss,
                    consecutive_steps=self._diverged_steps,
                )
            )
        return raised


class GanHealthMonitor(TrainingMonitor):
    """Adds the adversarial-game checks on top of finiteness."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._saturated_steps = 0
        self._saturation_fired = False
        self._vanished_steps = 0
        self._vanished_fired = False
        self._collapsed_steps = 0
        self._collapse_fired = False

    def observe_discriminator(
        self,
        step: int,
        *,
        loss: float,
        real_prob: float,
        fake_prob: float,
        grad_norm: float,
    ) -> list[str]:
        """Feed one D update; returns the warning codes raised."""
        raised = self.check_finite(step, d_loss=loss, d_grad_norm=grad_norm)
        saturated = (
            real_prob >= self.config.d_real_saturation
            and fake_prob <= self.config.d_fake_saturation
        )
        self._saturated_steps, self._saturation_fired, fire = self._episode(
            saturated, self._saturated_steps, self._saturation_fired
        )
        if fire:
            raised.append(
                self._raise(
                    "d_saturation",
                    f"D(real)={real_prob:.3f} D(fake)={fake_prob:.3f} for "
                    f"{self._saturated_steps} consecutive steps: the adversarial "
                    "term has no gradient signal",
                    step=step,
                    real_prob=real_prob,
                    fake_prob=fake_prob,
                    consecutive_steps=self._saturated_steps,
                )
            )
        return raised

    def observe_predictor(
        self,
        step: int,
        *,
        loss: float,
        mse: float,
        adv: float,
        adv_share: float,
        grad_norm: float,
        fake_std: float,
    ) -> list[str]:
        """Feed one P update; returns the warning codes raised."""
        raised = self.check_finite(
            step, p_loss=loss, mse_loss=mse, adv_loss=adv, p_grad_norm=grad_norm
        )
        vanished = math.isfinite(adv_share) and adv_share < self.config.adv_share_floor
        self._vanished_steps, self._vanished_fired, fire = self._episode(
            vanished, self._vanished_steps, self._vanished_fired
        )
        if fire:
            raised.append(
                self._raise(
                    "adv_loss_vanished",
                    f"adversarial share {adv_share:.2e} of P's loss below "
                    f"{self.config.adv_share_floor:.0e} for {self._vanished_steps} "
                    "consecutive steps: the game degenerated to supervised training",
                    step=step,
                    adv_share=adv_share,
                    consecutive_steps=self._vanished_steps,
                )
            )
        collapsed = math.isfinite(fake_std) and fake_std < self.config.collapse_std_floor
        self._collapsed_steps, self._collapse_fired, fire = self._episode(
            collapsed, self._collapsed_steps, self._collapse_fired
        )
        if fire:
            raised.append(
                self._raise(
                    "mode_collapse",
                    f"generated-sequence std {fake_std:.2e} below "
                    f"{self.config.collapse_std_floor:.0e} for {self._collapsed_steps} "
                    "consecutive steps: P emits near-constant sequences",
                    step=step,
                    fake_std=fake_std,
                    consecutive_steps=self._collapsed_steps,
                )
            )
        return raised
