"""Structured run recording: JSONL event streams plus a run manifest.

A :class:`RunRecorder` owns one run directory containing

* ``manifest.json`` — who/what/when: run id, start and finish wall
  clock, ``git describe`` of the source tree, python/numpy versions,
  caller-supplied fields (experiment name, preset, training spec,
  seed), and — after :meth:`RunRecorder.close` — event/warning counts
  and per-section latency summaries.
* ``events.jsonl`` — one JSON object per line, appended as training
  (or serving) progresses.  Every event carries ``seq`` (monotonic),
  ``ts`` (epoch seconds) and ``kind``; the remaining fields are
  kind-specific and documented in :mod:`repro.obs.schema`.

Recording is strictly opt-in: trainers take ``recorder=None`` and skip
every instrumentation branch when no recorder is attached, so the
default path stays zero-cost (held by ``benchmarks/``).

The *ambient* recorder (:func:`use_recorder` / :func:`current_recorder`)
lets the experiment CLI attach one recorder per experiment without
threading it through every runner signature: trainers fall back to the
ambient recorder when none is passed explicitly.
"""

from __future__ import annotations

import contextvars
import json
import subprocess
import sys
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from .telemetry import Telemetry

__all__ = ["RunRecorder", "current_recorder", "use_recorder"]


def _git_describe() -> str | None:
    """``git describe`` of the source tree, or None outside a checkout."""
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return result.stdout.strip() or None if result.returncode == 0 else None


def _json_default(value):
    """Serialise numpy scalars/arrays that leak into event fields."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


class RunRecorder:
    """Streams per-step/per-epoch events to JSONL under one run dir."""

    def __init__(
        self,
        directory: str | Path,
        *,
        run_id: str | None = None,
        manifest: dict | None = None,
        clock: Callable[[], float] = time.time,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex[:12]
        self._clock = clock
        self.telemetry = Telemetry()
        self.started_at = self._clock()
        self.closed = False
        self._seq = 0
        self._warning_counts: dict[str, int] = {}
        self._manifest: dict = {
            "run_id": self.run_id,
            "started_at": self.started_at,
            "git": _git_describe(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        }
        if manifest:
            self._manifest.update(manifest)
        self.manifest_path = self.directory / "manifest.json"
        self.events_path = self.directory / "events.jsonl"
        self._events_file = self.events_path.open("a", encoding="utf-8")
        self._write_manifest()

    # ------------------------------------------------------------------
    def _write_manifest(self) -> None:
        self.manifest_path.write_text(
            json.dumps(self._manifest, indent=2, default=_json_default, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def annotate(self, **fields) -> None:
        """Merge extra fields into the manifest (rewritten immediately).

        Trainers use this to stamp the run with their spec/seed; when
        several models train under one recorder the last annotation
        wins — per-model detail lives in ``model_fit`` events.
        """
        self._manifest.update(fields)
        self._write_manifest()

    # ------------------------------------------------------------------
    def event(self, kind: str, **fields) -> dict:
        """Append one structured event line; returns the written dict."""
        if self.closed:
            raise RuntimeError("recorder is closed")
        record = {"seq": self._seq, "ts": self._clock(), "kind": kind, **fields}
        self._seq += 1
        self._events_file.write(json.dumps(record, default=_json_default) + "\n")
        self._events_file.flush()
        return record

    def warning(self, code: str, message: str, **fields) -> dict:
        """Record a structured warning event (monitors call this)."""
        self._warning_counts[code] = self._warning_counts.get(code, 0) + 1
        return self.event("warning", code=code, message=message, **fields)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time a scoped section into the ``section.<name>`` histogram."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.telemetry.histogram(f"section.{name}").observe(time.perf_counter() - start)

    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        return self._seq

    @property
    def warning_counts(self) -> dict[str, int]:
        return dict(self._warning_counts)

    def close(self) -> None:
        """Finalise the manifest (durations, counts, section summaries)."""
        if self.closed:
            return
        finished = self._clock()
        self._manifest.update(
            finished_at=finished,
            duration_seconds=finished - self.started_at,
            num_events=self._seq,
            warnings=dict(self._warning_counts),
            sections={
                name.removeprefix("section."): snap
                for name, snap in self.telemetry.snapshot()["histograms"].items()
                if name.startswith("section.")
            },
        )
        self._write_manifest()
        self._events_file.close()
        self.closed = True

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Ambient recorder: lets the CLI attach a recorder per experiment
# without threading it through every runner signature.

_CURRENT: contextvars.ContextVar[RunRecorder | None] = contextvars.ContextVar(
    "repro_obs_recorder", default=None
)


def current_recorder() -> RunRecorder | None:
    """The ambient recorder installed by :func:`use_recorder`, if any."""
    return _CURRENT.get()


@contextmanager
def use_recorder(recorder: RunRecorder) -> Iterator[RunRecorder]:
    """Install ``recorder`` as the ambient recorder for the with-block."""
    token = _CURRENT.set(recorder)
    try:
        yield recorder
    finally:
        _CURRENT.reset(token)
