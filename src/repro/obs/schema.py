"""Event and manifest schema for :mod:`repro.obs` run logs.

Hand-rolled (no jsonschema dependency in this environment): the schema
is a dict from event ``kind`` to the required kind-specific fields and
their types, and the validator walks a run directory checking

* ``manifest.json`` carries the required identity fields, and
* every ``events.jsonl`` line carries the common envelope
  (``seq``/``ts``/``kind``) plus its kind's required fields.

``tools/ci.sh`` runs this (via ``tools/obs_smoke.py``) against a real
2-epoch adversarial training so the schema can never drift from what
the trainers actually emit.

Numbers may legitimately be NaN/Inf (a NaN loss is exactly what the
run log must capture), so numeric fields accept any float/int and the
file is parsed with Python's ``json``, which round-trips them.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["EVENT_SCHEMA", "MANIFEST_REQUIRED", "validate_event", "validate_run_dir"]

_NUM = (int, float)
_STR = (str,)
_INT = (int,)
_BOOL = (bool,)

#: kind -> {field: accepted types}. The envelope (seq/ts/kind) is
#: required for every event and checked separately.
EVENT_SCHEMA: dict[str, dict[str, tuple[type, ...]]] = {
    # Supervised trainer -------------------------------------------------
    "step": {"epoch": _INT, "step": _INT, "loss": _NUM, "grad_norm": _NUM},
    "epoch": {
        "epoch": _INT,
        "train_loss": _NUM,
        "validation_loss": _NUM,
        "grad_norm": _NUM,
    },
    "early_stop": {"epoch": _INT, "patience": _INT},
    # Adversarial trainer ------------------------------------------------
    "d_step": {
        "epoch": _INT,
        "step": _INT,
        "loss": _NUM,
        "real_prob": _NUM,
        "fake_prob": _NUM,
        "grad_norm": _NUM,
    },
    "p_step": {
        "epoch": _INT,
        "step": _INT,
        "loss": _NUM,
        "mse_loss": _NUM,
        "adv_loss": _NUM,
        "adv_share": _NUM,
        "grad_norm": _NUM,
        "fake_std": _NUM,
    },
    "adv_epoch": {
        "epoch": _INT,
        "predictor_loss": _NUM,
        "mse_loss": _NUM,
        "adversarial_loss": _NUM,
        "discriminator_loss": _NUM,
        "discriminator_real_prob": _NUM,
        "discriminator_fake_prob": _NUM,
        "predictor_grad_norm": _NUM,
        "discriminator_grad_norm": _NUM,
    },
    # Harness / monitors -------------------------------------------------
    "model_fit": {"name": _STR},
    "warning": {"code": _STR, "message": _STR},
    # Worker pool (repro.parallel) ---------------------------------------
    # Emitted by the parent process only (workers never hold the
    # recorder), so one map's events interleave but never corrupt.
    "pool_task_start": {"task": _INT, "attempt": _INT, "worker": _INT},
    "pool_task_end": {"task": _INT, "attempt": _INT, "worker": _INT, "duration_s": _NUM},
    "pool_task_retry": {"task": _INT, "attempt": _INT, "reason": _STR},
    # Forecast fleet (repro.fleet) ---------------------------------------
    # Emitted by the fleet parent process only (replicas never hold the
    # recorder).  `fleet_shed` aggregates one shard's sheds per call so
    # the log stays bounded under overload.
    "fleet_shard_lost": {"shard": _INT, "method": _STR, "reason": _STR},
    "fleet_shed": {"shard": _INT, "count": _INT, "queue_depth": _INT, "reason": _STR},
    "fleet_drain": {
        "served": _INT,
        "shed": _INT,
        "max_queue_depth": _INT,
        "duration_s": _NUM,
    },
    "fleet_loadgen_summary": {
        "rate": _NUM,
        "offered": _INT,
        "served": _INT,
        "shed": _INT,
        "shed_rate": _NUM,
        "offered_qps": _NUM,
        "served_qps": _NUM,
        "p50_ms": _NUM,
        "p99_ms": _NUM,
    },
    "fleet_swap": {"shards_swapped": _INT, "fingerprint": _STR},
    # Continual learning (repro.mlops) -----------------------------------
    # Emitted by the drift monitors and the controller in the serving
    # parent process.  `drift_*` events record every evaluation (so the
    # hysteresis trail is reconstructable); `mlops_*` events record the
    # pipeline transitions trigger -> retrain -> shadow -> swap and the
    # post-swap guardband outcome (rollback or acceptance).
    "drift_error": {
        "samples": _INT,
        "regime": _STR,
        "rolling_mae": _NUM,
        "baseline_mae": _NUM,
        "ratio": _NUM,
        "threshold": _NUM,
        "breaches": _INT,
        "triggered": _BOOL,
    },
    "drift_input": {
        "samples": _INT,
        "psi": _NUM,
        "psi_threshold": _NUM,
        "mean_kmh": _NUM,
        "reference_mean_kmh": _NUM,
        "conditioned": _BOOL,
        "breaches": _INT,
        "triggered": _BOOL,
    },
    "mlops_trigger": {"monitor": _STR, "reason": _STR, "step": _INT, "seed": _INT},
    "mlops_retrain_start": {"seed": _INT, "num_windows": _INT, "epochs": _INT},
    "mlops_retrain_end": {"status": _STR, "num_windows": _INT, "duration_s": _NUM},
    "mlops_shadow": {
        "champion_mae": _NUM,
        "challenger_mae": _NUM,
        "rel_improvement": _NUM,
        "num_samples": _INT,
        "promote": _BOOL,
        "reason": _STR,
    },
    "mlops_swap": {
        "fingerprint": _STR,
        "previous_fingerprint": _STR,
        "shards": _INT,
    },
    "mlops_rollback": {
        "fingerprint": _STR,
        "restored_fingerprint": _STR,
        "rolling_mae": _NUM,
        "guard_mae": _NUM,
    },
    # Network scenario engine (repro.network via the network experiment) -
    "network_build": {
        "segments": _INT,
        "junctions": _INT,
        "zones": _INT,
        "bfs_ordered": _BOOL,
    },
    "network_simulate": {
        "scenario": _STR,
        "segments": _INT,
        "steps": _INT,
        "duration_s": _NUM,
    },
    "network_kpis": {
        "scenario": _STR,
        "vkt": _NUM,
        "vht": _NUM,
        "mean_speed_kmh": _NUM,
        "congested_share": _NUM,
        "spillback_onsets": _INT,
    },
    # Graph-neighbourhood training on network streams --------------------
    "network_train": {
        "model": _STR,
        "targets": _INT,
        "windows": _INT,
        "k": _INT,
        "duration_s": _NUM,
        "fingerprint": _STR,
    },
    # Per-phase scenario-stress forecast degradation ----------------------
    "network_stress": {
        "model": _STR,
        "phase": _STR,
        "samples": _INT,
        "baseline_mae": _NUM,
        "stressed_mae": _NUM,
        "degradation": _NUM,
    },
    # Adversarial robustness (repro.attacks) -----------------------------
    "attack_step": {"attack": _STR, "epsilon": _NUM, "step": _INT, "loss": _NUM},
    # Input-space adversarial training (repro.core.adversarial_training) -
    "adv_train_step": {
        "epoch": _INT,
        "step": _INT,
        "epsilon": _NUM,
        "num_perturbed": _INT,
        "num_samples": _INT,
        "clean_loss": _NUM,
        "robust_loss": _NUM,
        "max_abs_delta_kmh": _NUM,
    },
    # Paired before/after sweep delta (adv_train experiment) -------------
    "robustness_delta": {
        "attack": _STR,
        "epsilon": _NUM,
        "attacked_mae_before": _NUM,
        "attacked_mae_after": _NUM,
        "clean_mae_before": _NUM,
        "clean_mae_after": _NUM,
    },
    "robustness_summary": {
        "attack": _STR,
        "epsilon": _NUM,
        "num_samples": _INT,
        "clean_mae": _NUM,
        "attacked_mae": _NUM,
        "clean_rmse": _NUM,
        "attacked_rmse": _NUM,
        "clean_mape": _NUM,
        "attacked_mape": _NUM,
    },
}

#: Fields every manifest.json must carry from the moment it is created.
MANIFEST_REQUIRED = ("run_id", "started_at", "git", "python", "numpy")


def validate_event(event: dict) -> list[str]:
    """Schema errors for one decoded event dict (empty list = valid)."""
    errors: list[str] = []
    for field, types in (("seq", _INT), ("ts", _NUM), ("kind", _STR)):
        value = event.get(field)
        # bool is an int subclass; never a valid numeric field here.
        if not isinstance(value, types) or isinstance(value, bool):
            errors.append(f"envelope field {field!r} missing or not {types[0].__name__}")
    kind = event.get("kind")
    if not isinstance(kind, str):
        return errors
    required = EVENT_SCHEMA.get(kind)
    if required is None:
        errors.append(f"unknown event kind {kind!r}")
        return errors
    for field, types in required.items():
        value = event.get(field)
        if bool in types:
            # Declared-bool fields require an actual bool (0/1 rejected).
            if not isinstance(value, bool):
                errors.append(f"{kind}: field {field!r} missing or not bool")
        elif not isinstance(value, types) or isinstance(value, bool):
            errors.append(f"{kind}: field {field!r} missing or not {types[0].__name__}")
    return errors


def validate_run_dir(directory: str | Path) -> list[str]:
    """All schema errors for one run directory (empty list = valid)."""
    directory = Path(directory)
    errors: list[str] = []

    manifest_path = directory / "manifest.json"
    if not manifest_path.is_file():
        errors.append("manifest.json missing")
    else:
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            errors.append(f"manifest.json: invalid JSON ({exc})")
        else:
            errors.extend(
                f"manifest.json: missing field {field!r}"
                for field in MANIFEST_REQUIRED
                if field not in manifest
            )

    events_path = directory / "events.jsonl"
    if not events_path.is_file():
        errors.append("events.jsonl missing")
        return errors
    previous_seq = -1
    with events_path.open(encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"events.jsonl:{lineno}: invalid JSON ({exc})")
                continue
            errors.extend(f"events.jsonl:{lineno}: {err}" for err in validate_event(event))
            seq = event.get("seq")
            if isinstance(seq, int) and not isinstance(seq, bool):
                if seq <= previous_seq:
                    errors.append(
                        f"events.jsonl:{lineno}: seq {seq} not monotonic "
                        f"(previous {previous_seq})"
                    )
                previous_seq = seq
    return errors
