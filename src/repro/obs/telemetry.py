"""Lightweight telemetry: counters and sampling histograms.

No external metrics stack is available in this environment, so this is
the minimal useful core: monotonic counters, bounded-reservoir
histograms with percentile summaries, and a :meth:`Telemetry.snapshot`
dict that the benchmark harness and the serving example print directly.

Lived at ``repro.serving.telemetry`` until PR 2; it moved here so the
training side (``repro.core`` trainers, :mod:`repro.obs.recorder`) can
share the same primitives without importing the serving layer.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["Counter", "Histogram", "Telemetry"]


class Counter:
    """A monotonic counter."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Histogram:
    """Summary statistics over observed values.

    Keeps exact totals (count/sum) forever and the most recent
    ``max_samples`` observations for percentile estimates, so memory
    stays bounded on long-running services.

    The two populations deliberately diverge once more than
    ``max_samples`` values have been observed: ``count``, ``mean``,
    ``min`` and ``max`` are **all-time** exact statistics, while
    ``percentile()`` and the ``p50``/``p90``/``p99`` snapshot fields
    describe only the **most recent window** of ``max_samples``
    observations.  An all-time extreme therefore stays visible in
    ``min``/``max`` forever even after it has rolled out of every
    percentile.  ``tests/obs/test_telemetry.py`` pins this contract.
    """

    def __init__(self, max_samples: int = 8192):
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._samples: deque[float] = deque(maxlen=max_samples)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self._samples.append(value)

    def percentile(self, q: float) -> float:
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.fromiter(self._samples, dtype=np.float64), q))

    def snapshot(self) -> dict:
        if self.count == 0:
            return {"count": 0}
        samples = np.fromiter(self._samples, dtype=np.float64)
        p50, p90, p99 = np.percentile(samples, [50.0, 90.0, 99.0])
        return {
            "count": self.count,
            "mean": self.total / self.count,
            "min": self.minimum,
            "max": self.maximum,
            "p50": float(p50),
            "p90": float(p90),
            "p99": float(p99),
        }


class Telemetry:
    """A named registry of counters and histograms."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram())

    def snapshot(self) -> dict:
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "histograms": {name: h.snapshot() for name, h in sorted(self._histograms.items())},
        }
