"""``repro.parallel`` — multi-process execution substrate.

Three layers, all stdlib ``multiprocessing`` + numpy (no third-party
dependency, no import of any repro layer above :mod:`repro.obs`):

* :mod:`pool` — :class:`WorkerPool`: fault-tolerant task execution
  with deterministic per-task seeds, heartbeats, per-task timeouts,
  capped retries on worker death, and ``pool_task_*`` obs events.
* :mod:`api` — :func:`parallel_map` and :class:`ShardedSweep`, the
  forms adopted by ``core.tuning.grid_search``,
  ``attacks.harness.evaluate_robustness`` and the experiment suite
  runner; ``workers=1`` is always a no-process, bitwise-identical
  serial path.
* :mod:`group` — :class:`WorkerGroup`: persistent stateful replica
  workers over pipes, the substrate under
  :class:`repro.core.DataParallelTrainer`.

Layering (enforced by ``tools/check_imports.py``): ``repro.parallel``
may import only ``repro.obs``; ``core`` / ``attacks`` / ``experiments``
may import ``repro.parallel``.
"""

from .api import ShardedSweep, parallel_map
from .group import WorkerGroup, WorkerGroupError
from .pool import PoolError, TaskFailure, WorkerPool
from .seeding import (
    current_task_attempt,
    current_task_index,
    current_task_seed,
    derive_task_seed,
    task_context,
)

__all__ = [
    "WorkerPool",
    "TaskFailure",
    "PoolError",
    "parallel_map",
    "ShardedSweep",
    "WorkerGroup",
    "WorkerGroupError",
    "derive_task_seed",
    "task_context",
    "current_task_seed",
    "current_task_index",
    "current_task_attempt",
]
