"""High-level entry points over :class:`repro.parallel.WorkerPool`.

:func:`parallel_map` is the one-call form the compute layers use
(``core.tuning``, ``attacks.harness``, the experiment suite runner);
:class:`ShardedSweep` adds deterministic chunking for sweeps of many
cheap configurations, with the invariant that each *item*'s derived
seed depends only on its global index — never on the chunk size or the
worker count — so a sweep's numbers are reproducible under any
parallel layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from .pool import WorkerPool
from .seeding import derive_task_seed, task_context

__all__ = ["parallel_map", "ShardedSweep"]


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    workers: int = 1,
    root_seed: int = 0,
    task_timeout: float | None = None,
    max_retries: int = 2,
    context: str | Any | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    recorder=None,
    return_failures: bool = False,
) -> list:
    """``[fn(item) for item in items]`` over a transient worker pool.

    With ``workers <= 1`` no process is created and the results are
    bitwise-identical to the plain list comprehension.  See
    :class:`repro.parallel.WorkerPool` for the fault model and the
    meaning of every keyword.
    """
    pool = WorkerPool(
        workers,
        root_seed=root_seed,
        task_timeout=task_timeout,
        max_retries=max_retries,
        context=context,
        initializer=initializer,
        initargs=initargs,
        recorder=recorder,
    )
    return pool.map(fn, items, return_failures=return_failures)


def _run_shard(shard: tuple) -> list:
    """Execute one shard of a :class:`ShardedSweep` (runs in a worker).

    Re-installs the task context per *item* with the item's global
    index, overriding the pool's per-shard context, so item seeds are
    invariant to how the sweep was chunked.
    """
    fn, base_index, items, root_seed = shard
    results = []
    for offset, item in enumerate(items):
        index = base_index + offset
        with task_context(index, 0, derive_task_seed(root_seed, index)):
            results.append(fn(item))
    return results


@dataclass
class ShardedSweep:
    """Deterministically chunked parallel sweep over many configurations.

    Items are grouped into contiguous shards of ``chunk_size`` which
    become the pool's tasks — amortising dispatch and pickling overhead
    when individual items are cheap.  Results come back flattened in
    submission order regardless of which worker ran which shard.
    """

    fn: Callable[[Any], Any]
    workers: int = 1
    chunk_size: int = 1
    root_seed: int = 0
    task_timeout: float | None = None
    max_retries: int = 2
    context: str | Any | None = None
    initializer: Callable[..., None] | None = None
    initargs: tuple = ()
    recorder: Any = None

    def __post_init__(self):
        if self.chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {self.chunk_size}")

    def shards(self, items: Sequence) -> list[tuple]:
        return [
            (self.fn, start, list(items[start : start + self.chunk_size]), self.root_seed)
            for start in range(0, len(items), self.chunk_size)
        ]

    def run(self, items: Iterable[Any]) -> list:
        items = list(items)
        if not items:
            return []
        nested = parallel_map(
            _run_shard,
            self.shards(items),
            workers=self.workers,
            root_seed=self.root_seed,
            task_timeout=self.task_timeout,
            max_retries=self.max_retries,
            context=self.context,
            initializer=self.initializer,
            initargs=self.initargs,
            recorder=self.recorder,
        )
        return [result for shard in nested for result in shard]
