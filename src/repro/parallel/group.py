"""Persistent stateful workers over pipes (the data-parallel substrate).

:class:`repro.parallel.WorkerPool` is for independent fire-and-forget
tasks; gradient workers are the opposite — each holds a long-lived
*replica* object (e.g. a model copy) and answers many small method
calls per second.  :class:`WorkerGroup` provides exactly that shape:

* each worker is one process with one duplex :func:`multiprocessing.Pipe`;
* a picklable ``factory()`` builds the replica inside the child (so the
  group is spawn-safe; under fork the factory's captured state rides
  along for free);
* :meth:`scatter` sends one ``(method, args)`` call to each of the
  first *k* workers and gathers the replies in worker order — the
  synchronous step shape data-parallel training needs;
* :meth:`start_call` / :meth:`finish_call` split that round trip so a
  caller coordinating *several* groups (e.g. one group per shard, as
  :class:`repro.fleet.ForecastFleet` does) can start every group's call
  before blocking on any reply; calls to one worker may be pipelined
  and are answered in FIFO order;
* a worker that dies mid-call surfaces as :class:`WorkerGroupError`
  naming the worker *and the method it was running* — never as a hang,
  and never as a bare ``EOFError``/``BrokenPipeError`` from the pipe.

The group deliberately has no retry logic: replicas are stateful, so a
respawned worker would silently diverge — the caller owns recovery
(typically: rebuild the group from the current parent state).
"""

from __future__ import annotations

import traceback
from collections import deque
from typing import Any, Callable, Sequence

from .pool import _resolve_context

__all__ = ["WorkerGroup", "WorkerGroupError"]


class WorkerGroupError(RuntimeError):
    """A group worker died or raised during a call."""


def _group_worker_main(worker_id: int, factory: Callable[[], Any], connection) -> None:
    """Child loop: build the replica, answer method calls until EOF."""
    try:
        replica = factory()
    except BaseException:
        connection.send(("init_error", traceback.format_exc()))
        return
    connection.send(("ready", worker_id))
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        method, args = message
        try:
            result = getattr(replica, method)(*args)
        except BaseException:
            connection.send(("exc", traceback.format_exc()))
        else:
            connection.send(("ok", result))


class WorkerGroup:
    """A fixed set of persistent replica processes addressed by index."""

    def __init__(
        self,
        factory: Callable[[], Any],
        workers: int,
        *,
        context: str | Any | None = None,
    ):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        ctx = _resolve_context(context)
        self._connections = []
        self._processes = []
        self._closed = False
        #: Outstanding (sent, unanswered) method names per worker, FIFO.
        self._pending: list[deque[str]] = [deque() for _ in range(workers)]
        for worker_id in range(workers):
            parent_end, child_end = ctx.Pipe()
            process = ctx.Process(
                target=_group_worker_main,
                args=(worker_id, factory, child_end),
                daemon=True,
                name=f"repro-group-{worker_id}",
            )
            process.start()
            child_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)
        for worker_id, connection in enumerate(self._connections):
            kind, payload = self._receive(worker_id, connection)
            if kind == "init_error":
                self.close()
                raise WorkerGroupError(f"worker {worker_id} factory failed:\n{payload}")

    def __len__(self) -> int:
        return len(self._processes)

    def _receive(self, worker_id: int, connection, method: str | None = None) -> tuple:
        try:
            return connection.recv()
        except (EOFError, OSError):
            code = self._processes[worker_id].exitcode
            self.close()
            during = (
                f" during {method!r}" if method is not None
                else " during the startup handshake"
            )
            raise WorkerGroupError(
                f"group worker {worker_id} died mid-call{during} (exitcode {code})"
            ) from None

    def start_call(self, worker_id: int, method: str, args: tuple = ()) -> None:
        """Send one ``method(*args)`` call without waiting for the reply.

        Pair with :meth:`finish_call`.  Calls to one worker may be
        pipelined; the replica answers them in FIFO order.  A worker
        that already died surfaces here as :class:`WorkerGroupError`
        naming the worker and method (the pipe would otherwise raise a
        bare ``BrokenPipeError``).
        """
        if self._closed:
            raise WorkerGroupError("worker group is closed")
        if not 0 <= worker_id < len(self._processes):
            raise ValueError(
                f"worker {worker_id} outside group 0..{len(self._processes) - 1}"
            )
        try:
            self._connections[worker_id].send((method, args))
        except (OSError, ValueError) as exc:
            code = self._processes[worker_id].exitcode
            self.close()
            raise WorkerGroupError(
                f"group worker {worker_id} died before accepting {method!r} "
                f"(exitcode {code}): {exc}"
            ) from None
        self._pending[worker_id].append(method)

    def finish_call(self, worker_id: int) -> Any:
        """Receive the reply to the oldest outstanding :meth:`start_call`."""
        if self._closed:
            raise WorkerGroupError("worker group is closed")
        if not self._pending[worker_id]:
            raise WorkerGroupError(f"worker {worker_id} has no outstanding call")
        method = self._pending[worker_id].popleft()
        kind, payload = self._receive(worker_id, self._connections[worker_id], method)
        if kind == "exc":
            self.close()
            raise WorkerGroupError(f"worker {worker_id}.{method} raised:\n{payload}")
        return payload

    def scatter(self, method: str, args_per_worker: Sequence[tuple]) -> list:
        """Call ``method(*args)`` on the first ``len(args_per_worker)`` workers.

        Sends every request before reading any reply, so workers run
        concurrently; replies come back in worker order.
        """
        if self._closed:
            raise WorkerGroupError("worker group is closed")
        if len(args_per_worker) > len(self._processes):
            raise ValueError(
                f"{len(args_per_worker)} calls for {len(self._processes)} workers"
            )
        for worker_id, args in enumerate(args_per_worker):
            self.start_call(worker_id, method, args)
        return [self.finish_call(worker_id) for worker_id in range(len(args_per_worker))]

    def alive(self) -> list[bool]:
        """Liveness of every worker process (False after :meth:`close`)."""
        return [process.is_alive() for process in self._processes]

    def broadcast(self, method: str, args: tuple = ()) -> list:
        """Call the same method with the same args on every worker."""
        return self.scatter(method, [args] * len(self._processes))

    def close(self) -> None:
        """Shut every worker down; idempotent, never raises."""
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                try:
                    process.kill()
                except (OSError, ValueError):
                    pass
                process.join(timeout=2.0)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
