"""Persistent stateful workers over pipes (the data-parallel substrate).

:class:`repro.parallel.WorkerPool` is for independent fire-and-forget
tasks; gradient workers are the opposite — each holds a long-lived
*replica* object (e.g. a model copy) and answers many small method
calls per second.  :class:`WorkerGroup` provides exactly that shape:

* each worker is one process with one duplex :func:`multiprocessing.Pipe`;
* a picklable ``factory()`` builds the replica inside the child (so the
  group is spawn-safe; under fork the factory's captured state rides
  along for free);
* :meth:`scatter` sends one ``(method, args)`` call to each of the
  first *k* workers and gathers the replies in worker order — the
  synchronous step shape data-parallel training needs;
* a worker that dies mid-call surfaces as :class:`WorkerGroupError`
  naming the worker, never as a hang.

The group deliberately has no retry logic: replicas are stateful, so a
respawned worker would silently diverge — the caller owns recovery
(typically: rebuild the group from the current parent state).
"""

from __future__ import annotations

import traceback
from typing import Any, Callable, Sequence

from .pool import _resolve_context

__all__ = ["WorkerGroup", "WorkerGroupError"]


class WorkerGroupError(RuntimeError):
    """A group worker died or raised during a call."""


def _group_worker_main(worker_id: int, factory: Callable[[], Any], connection) -> None:
    """Child loop: build the replica, answer method calls until EOF."""
    try:
        replica = factory()
    except BaseException:
        connection.send(("init_error", traceback.format_exc()))
        return
    connection.send(("ready", worker_id))
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        method, args = message
        try:
            result = getattr(replica, method)(*args)
        except BaseException:
            connection.send(("exc", traceback.format_exc()))
        else:
            connection.send(("ok", result))


class WorkerGroup:
    """A fixed set of persistent replica processes addressed by index."""

    def __init__(
        self,
        factory: Callable[[], Any],
        workers: int,
        *,
        context: str | Any | None = None,
    ):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        ctx = _resolve_context(context)
        self._connections = []
        self._processes = []
        self._closed = False
        for worker_id in range(workers):
            parent_end, child_end = ctx.Pipe()
            process = ctx.Process(
                target=_group_worker_main,
                args=(worker_id, factory, child_end),
                daemon=True,
                name=f"repro-group-{worker_id}",
            )
            process.start()
            child_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)
        for worker_id, connection in enumerate(self._connections):
            kind, payload = self._receive(worker_id, connection)
            if kind == "init_error":
                self.close()
                raise WorkerGroupError(f"worker {worker_id} factory failed:\n{payload}")

    def __len__(self) -> int:
        return len(self._processes)

    def _receive(self, worker_id: int, connection) -> tuple:
        try:
            return connection.recv()
        except (EOFError, OSError):
            code = self._processes[worker_id].exitcode
            self.close()
            raise WorkerGroupError(
                f"group worker {worker_id} died mid-call (exitcode {code})"
            ) from None

    def scatter(self, method: str, args_per_worker: Sequence[tuple]) -> list:
        """Call ``method(*args)`` on the first ``len(args_per_worker)`` workers.

        Sends every request before reading any reply, so workers run
        concurrently; replies come back in worker order.
        """
        if self._closed:
            raise WorkerGroupError("worker group is closed")
        if len(args_per_worker) > len(self._processes):
            raise ValueError(
                f"{len(args_per_worker)} calls for {len(self._processes)} workers"
            )
        active = list(enumerate(args_per_worker))
        for worker_id, args in active:
            self._connections[worker_id].send((method, args))
        results = []
        for worker_id, _ in active:
            kind, payload = self._receive(worker_id, self._connections[worker_id])
            if kind == "exc":
                self.close()
                raise WorkerGroupError(f"worker {worker_id}.{method} raised:\n{payload}")
            results.append(payload)
        return results

    def broadcast(self, method: str, args: tuple = ()) -> list:
        """Call the same method with the same args on every worker."""
        return self.scatter(method, [args] * len(self._processes))

    def close(self) -> None:
        """Shut every worker down; idempotent, never raises."""
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                try:
                    process.kill()
                except (OSError, ValueError):
                    pass
                process.join(timeout=2.0)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
