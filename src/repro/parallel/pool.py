"""Fault-tolerant multi-process worker pool.

:class:`WorkerPool` runs picklable task functions across OS processes
with the guarantees the compute layers above need:

* **Deterministic seeding** — every task gets a seed derived from the
  pool's root seed and the task index only (:mod:`repro.parallel.seeding`),
  so results never depend on worker count or completion order.
* **Fault tolerance** — each worker has its own task channel, so the
  parent always knows which task a dead worker held.  A worker that
  dies (segfault, ``os._exit``, OOM kill), exceeds the per-task
  timeout, or stops heartbeating is killed and replaced, and its task
  is requeued up to ``max_retries`` extra attempts before the pool
  gives up on it.
* **Observability** — the parent emits ``pool_task_start`` /
  ``pool_task_end`` / ``pool_task_retry`` events through an attached
  (or ambient) :class:`repro.obs.RunRecorder`; workers never touch the
  recorder, so event streams stay single-writer.
* **Clean teardown** — ``KeyboardInterrupt`` (or any error) in the
  parent kills every worker before propagating; no orphan processes,
  no hang on a half-drained queue.

Task *function* exceptions are not retried — a deterministic task that
raised once would raise again — they fail the task immediately.  Only
infrastructure failures (worker death, timeout, stall) consume retry
budget.

The pool is spawn-safe: workers are started from a module-level entry
point, everything shipped to them is pickled, and the optional
``initializer`` runs inside the child, so ``context="spawn"`` works
wherever fork is unavailable.  On Linux the default is fork, which also
lets workers inherit large parent state (datasets, model caches) for
free.

With ``workers <= 1`` (or a single task) no process is ever created:
tasks run in the parent, in order, under the same task context — the
serial path is bitwise-identical to not using the pool at all.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..obs import current_recorder
from .seeding import derive_task_seed, task_context

__all__ = ["WorkerPool", "TaskFailure", "PoolError"]


class PoolError(RuntimeError):
    """The pool itself failed (not an individual task)."""


@dataclass
class TaskFailure(Exception):
    """One task exhausted its attempts (or raised, which is terminal).

    With ``return_failures=True`` instances are returned in the result
    slots of failed tasks instead of being raised, so callers can build
    pass/fail tables without losing the rest of the map.
    """

    index: int
    attempts: int
    reason: str
    detail: str = ""

    def __str__(self) -> str:
        text = f"task {self.index} failed after {self.attempts} attempt(s): {self.reason}"
        return f"{text}\n{self.detail}" if self.detail else text


def _resolve_context(context: str | Any | None):
    """A multiprocessing context: fork where available, else spawn."""
    if context is None:
        methods = mp.get_all_start_methods()
        return mp.get_context("fork" if "fork" in methods else "spawn")
    if isinstance(context, str):
        return mp.get_context(context)
    return context


def _worker_main(
    worker_id: int,
    task_channel,
    result_queue,
    heartbeat_interval: float,
    initializer: Callable[..., None] | None,
    initargs: tuple,
) -> None:
    """Worker loop: run tasks off the private channel until sentinel."""
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException:
        result_queue.put(("init_error", worker_id, traceback.format_exc()))
        return

    stop = threading.Event()

    def heartbeat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                result_queue.put(("hb", worker_id, None))
            except Exception:
                return

    beat = threading.Thread(target=heartbeat, daemon=True)
    beat.start()

    while True:
        message = task_channel.get()
        if message is None:
            break
        index, attempt, seed, fn, item = message
        try:
            with task_context(index, attempt, seed):
                result = fn(item)
        except BaseException:
            result_queue.put(("exc", worker_id, (index, attempt, traceback.format_exc())))
            continue
        payload = (index, attempt, result)
        try:
            # Pre-flight: Queue.put pickles in a feeder thread whose
            # errors never reach the parent; an unpicklable result must
            # fail loudly here instead of hanging the pool.
            pickle.dumps(payload)
        except Exception:
            result_queue.put(("exc", worker_id, (index, attempt, traceback.format_exc())))
        else:
            result_queue.put(("done", worker_id, payload))
    stop.set()


@dataclass
class _WorkerSlot:
    """Parent-side bookkeeping for one worker process."""

    process: Any
    channel: Any
    busy: tuple[int, int] | None = None  # (task index, attempt)
    dispatched_at: float = 0.0
    last_heartbeat: float = field(default_factory=time.monotonic)


class WorkerPool:
    """Map tasks over a pool of processes with retries and seeding.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``<= 1`` runs everything serially
        in the parent (no processes, bitwise-identical results).
    root_seed:
        Root of the per-task seed derivation.
    task_timeout:
        Seconds one attempt may run before the worker is killed and the
        task retried.  ``None`` disables the timeout.
    max_retries:
        Extra attempts granted after an infrastructure failure
        (worker death / timeout / stall).  ``0`` means one attempt only.
    heartbeat_interval / heartbeat_timeout:
        Workers post a heartbeat every ``heartbeat_interval`` seconds
        from a daemon thread; a busy worker whose process is alive but
        silent for ``heartbeat_timeout`` seconds (e.g. SIGSTOPped or
        swap-stalled) is treated like a timed-out one.  ``None``
        disables stall detection.
    context:
        ``"fork"`` / ``"spawn"`` / a multiprocessing context; default
        fork where available, spawn otherwise.
    initializer / initargs:
        Run once inside each worker before its first task — ship heavy
        shared state (datasets, victim models) once per worker instead
        of once per task.
    recorder:
        :class:`repro.obs.RunRecorder` for pool events; defaults to the
        ambient recorder (:func:`repro.obs.current_recorder`).
    """

    def __init__(
        self,
        workers: int,
        *,
        root_seed: int = 0,
        task_timeout: float | None = None,
        max_retries: int = 2,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float | None = 30.0,
        context: str | Any | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        recorder=None,
    ):
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        self.workers = workers
        self.root_seed = root_seed
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self._context = _resolve_context(context)
        self._recorder = recorder

    # ------------------------------------------------------------------
    def _emit(self, kind: str, **fields) -> None:
        recorder = self._recorder if self._recorder is not None else current_recorder()
        if recorder is not None:
            recorder.event(kind, **fields)

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        return_failures: bool = False,
    ) -> list:
        """``[fn(item) for item in items]`` across the pool, in order.

        Raises :class:`TaskFailure` on the first unrecoverable task
        unless ``return_failures=True``, in which case failures occupy
        their task's result slot and every other task still completes.
        """
        tasks = list(items)
        if not tasks:
            return []
        if self.workers <= 1 or len(tasks) == 1:
            return self._map_serial(fn, tasks, return_failures)
        return self._map_parallel(fn, tasks, return_failures)

    # ------------------------------------------------------------------
    def _map_serial(self, fn, tasks: Sequence, return_failures: bool) -> list:
        results = []
        for index, item in enumerate(tasks):
            seed = derive_task_seed(self.root_seed, index)
            self._emit("pool_task_start", task=index, attempt=0, worker=0)
            started = time.monotonic()
            try:
                with task_context(index, 0, seed):
                    result = fn(item)
            except KeyboardInterrupt:
                raise
            except Exception:
                failure = TaskFailure(index, 1, "task raised", traceback.format_exc())
                if not return_failures:
                    raise failure from None
                results.append(failure)
                continue
            self._emit(
                "pool_task_end",
                task=index,
                attempt=0,
                worker=0,
                duration_s=time.monotonic() - started,
            )
            results.append(result)
        return results

    # ------------------------------------------------------------------
    def _spawn_worker(self, worker_id: int, result_queue) -> _WorkerSlot:
        channel = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(
                worker_id,
                channel,
                result_queue,
                self.heartbeat_interval,
                self.initializer,
                self.initargs,
            ),
            daemon=True,
            name=f"repro-pool-{worker_id}",
        )
        process.start()
        return _WorkerSlot(process=process, channel=channel)

    @staticmethod
    def _kill(slot: _WorkerSlot) -> None:
        # SIGKILL, not SIGTERM: a SIGSTOPped worker never delivers
        # SIGTERM, and we are past the point of graceful shutdown.
        try:
            slot.process.kill()
        except (OSError, ValueError):
            pass
        slot.process.join(timeout=5.0)

    def _map_parallel(self, fn, tasks: Sequence, return_failures: bool) -> list:
        num_workers = min(self.workers, len(tasks))
        result_queue = self._context.Queue()
        slots: dict[int, _WorkerSlot] = {}
        results: dict[int, Any] = {}
        pending: list[tuple[int, int]] = [(i, 0) for i in reversed(range(len(tasks)))]
        outstanding = set(range(len(tasks)))

        def dispatch() -> None:
            for wid, slot in slots.items():
                if not pending:
                    return
                if slot.busy is None and slot.process.is_alive():
                    index, attempt = pending.pop()
                    seed = derive_task_seed(self.root_seed, index)
                    message = (index, attempt, seed, fn, tasks[index])
                    try:
                        # Queue.put pickles in a feeder thread whose errors
                        # vanish; an unpicklable task must fail loudly, not
                        # leave the worker idle until a timeout fires.
                        pickle.dumps(message)
                    except Exception as exc:
                        raise PoolError(
                            f"task {index} (or its function) is not picklable: {exc}"
                        ) from exc
                    slot.channel.put(message)
                    slot.busy = (index, attempt)
                    slot.dispatched_at = time.monotonic()
                    slot.last_heartbeat = slot.dispatched_at
                    self._emit("pool_task_start", task=index, attempt=attempt, worker=wid)

        def fail(index: int, attempts: int, reason: str, detail: str = "") -> None:
            failure = TaskFailure(index, attempts, reason, detail)
            if not return_failures:
                raise failure
            results[index] = failure
            outstanding.discard(index)

        def retry(wid: int, reason: str, detail: str = "") -> None:
            slot = slots[wid]
            index, attempt = slot.busy
            slot.busy = None
            self._emit("pool_task_retry", task=index, attempt=attempt, reason=reason)
            if attempt >= self.max_retries:
                fail(index, attempt + 1, f"{reason} (retry budget exhausted)", detail)
            else:
                pending.append((index, attempt + 1))

        try:
            for wid in range(num_workers):
                slots[wid] = self._spawn_worker(wid, result_queue)
            dispatch()
            while outstanding:
                try:
                    message = result_queue.get(timeout=min(self.heartbeat_interval, 0.2))
                except queue.Empty:
                    message = None
                if message is not None:
                    kind, wid, payload = message
                    slot = slots.get(wid)
                    if kind == "hb":
                        if slot is not None:
                            slot.last_heartbeat = time.monotonic()
                    elif kind == "done":
                        index, attempt, value = payload
                        # A stale result from a worker we already gave
                        # up on (e.g. it finished right as the timeout
                        # fired) must not clobber the retry's slot.
                        if slot is not None and slot.busy == (index, attempt):
                            slot.busy = None
                            slot.last_heartbeat = time.monotonic()
                            if index in outstanding:
                                results[index] = value
                                outstanding.discard(index)
                                self._emit(
                                    "pool_task_end",
                                    task=index,
                                    attempt=attempt,
                                    worker=wid,
                                    duration_s=time.monotonic() - slot.dispatched_at,
                                )
                    elif kind == "exc":
                        index, attempt, detail = payload
                        if slot is not None and slot.busy == (index, attempt):
                            slot.busy = None
                            slot.last_heartbeat = time.monotonic()
                            if index in outstanding:
                                fail(index, attempt + 1, "task raised", detail)
                    elif kind == "init_error":
                        raise PoolError(f"worker {wid} initializer failed:\n{payload}")
                now = time.monotonic()
                for wid, slot in list(slots.items()):
                    if not slot.process.is_alive():
                        if slot.busy is not None:
                            code = slot.process.exitcode
                            retry(wid, f"worker died (exitcode {code})")
                        slots[wid] = self._spawn_worker(wid, result_queue)
                        continue
                    if slot.busy is None:
                        continue
                    elapsed = now - slot.dispatched_at
                    if self.task_timeout is not None and elapsed > self.task_timeout:
                        self._kill(slot)
                        retry(wid, f"timeout after {elapsed:.1f}s")
                        slots[wid] = self._spawn_worker(wid, result_queue)
                    elif (
                        self.heartbeat_timeout is not None
                        and now - slot.last_heartbeat > self.heartbeat_timeout
                    ):
                        self._kill(slot)
                        retry(wid, f"stalled (no heartbeat for {now - slot.last_heartbeat:.1f}s)")
                        slots[wid] = self._spawn_worker(wid, result_queue)
                dispatch()
        except BaseException:
            # KeyboardInterrupt included: kill everything before
            # propagating so no worker outlives the map call.
            for slot in slots.values():
                self._kill(slot)
            raise
        else:
            for slot in slots.values():
                try:
                    slot.channel.put(None)
                except (OSError, ValueError):
                    pass
            deadline = time.monotonic() + 5.0
            for slot in slots.values():
                slot.process.join(timeout=max(0.0, deadline - time.monotonic()))
                if slot.process.is_alive():
                    self._kill(slot)
        finally:
            result_queue.close()
            for slot in slots.values():
                slot.channel.close()
        return [results[i] for i in range(len(tasks))]
