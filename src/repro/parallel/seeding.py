"""Deterministic per-task seed derivation and the task context.

Every task a :class:`repro.parallel.WorkerPool` executes gets a seed
derived *only* from the pool's root seed and the task's index in the
submitted sequence.  The derivation is a :class:`numpy.random.SeedSequence`
over the pair, so seeds are

* **stable** — the same (root_seed, task_index) pair always yields the
  same seed, in any process, on any run (no dependence on ``hash()``
  or ``PYTHONHASHSEED``);
* **distinct** — different task indices (or roots) yield different,
  well-mixed seeds, not ``root + index``; and
* **placement-independent** — the seed never depends on which worker
  runs the task, how many workers exist, or in what order tasks finish.

The *task context* (:func:`current_task_seed` et al.) is how task
functions reach their derived seed without threading it through every
signature: the pool (or the serial fallback) installs the context
around each call.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = [
    "derive_task_seed",
    "task_context",
    "current_task_seed",
    "current_task_index",
    "current_task_attempt",
]

_MASK64 = (1 << 64) - 1


def derive_task_seed(root_seed: int, task_index: int) -> int:
    """The seed for task ``task_index`` under ``root_seed`` (a uint64).

    Mixing goes through :class:`numpy.random.SeedSequence` so nearby
    (root, index) pairs land far apart in seed space.
    """
    if task_index < 0:
        raise ValueError(f"task_index must be non-negative, got {task_index}")
    entropy = [int(root_seed) & _MASK64, int(task_index)]
    sequence = np.random.SeedSequence(entropy)
    return int(sequence.generate_state(1, np.uint64)[0])


class _TaskContext(threading.local):
    """Per-thread record of the task currently executing."""

    index: int | None = None
    attempt: int | None = None
    seed: int | None = None


_CONTEXT = _TaskContext()


@contextmanager
def task_context(index: int, attempt: int, seed: int) -> Iterator[None]:
    """Install the ambient task identity around one task execution."""
    previous = (_CONTEXT.index, _CONTEXT.attempt, _CONTEXT.seed)
    _CONTEXT.index, _CONTEXT.attempt, _CONTEXT.seed = index, attempt, seed
    try:
        yield
    finally:
        _CONTEXT.index, _CONTEXT.attempt, _CONTEXT.seed = previous


def current_task_seed() -> int | None:
    """The derived seed of the task currently executing (None outside one)."""
    return _CONTEXT.seed


def current_task_index() -> int | None:
    """The submission index of the task currently executing."""
    return _CONTEXT.index


def current_task_attempt() -> int | None:
    """The retry attempt (0 = first try) of the task currently executing."""
    return _CONTEXT.attempt
