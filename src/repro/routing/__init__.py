"""``repro.routing`` — the ITS application layer the paper motivates.

Travel-time integration over the corridor or any explicit segment path,
graph shortest paths (:mod:`repro.routing.paths`), and stay/divert
route advisories scored against ground truth.
"""

from .advisory import AdvisoryOutcome, Detour, evaluate_advisories
from .fields import predicted_speed_field
from .paths import dijkstra, shortest_path
from .travel_time import (
    corridor_travel_times,
    segment_times_minutes,
    traverse_path_minutes,
    traverse_time_minutes,
)

__all__ = [
    "AdvisoryOutcome",
    "Detour",
    "evaluate_advisories",
    "predicted_speed_field",
    "corridor_travel_times",
    "dijkstra",
    "segment_times_minutes",
    "shortest_path",
    "traverse_path_minutes",
    "traverse_time_minutes",
]
