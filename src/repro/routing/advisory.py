"""Route advisory: stay on the expressway or divert?

A minimal but realistic ITS decision layer on top of speed forecasts:
for each departure the system compares the *predicted* corridor travel
time against a fixed-speed detour and advises DIVERT when the corridor
is forecast to be slower by a margin.  Advisory quality is scored
against what the *real* speeds turn out to be — exactly how a
route-guidance deployment would measure a prediction model's value
(the paper's stated motivation for APOTS).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traffic.types import TrafficSeries
from .travel_time import traverse_time_minutes

__all__ = ["Detour", "AdvisoryOutcome", "evaluate_advisories"]


@dataclass(frozen=True)
class Detour:
    """The alternative route: a fixed length at a steady speed.

    Arterial detours are longer but rarely congested; modelling them as
    constant-speed keeps the decision signal purely about the corridor
    forecast.
    """

    length_km: float
    speed_kmh: float = 55.0

    def __post_init__(self):
        if self.length_km <= 0 or self.speed_kmh <= 0:
            raise ValueError("detour length and speed must be positive")

    @property
    def time_minutes(self) -> float:
        return self.length_km / self.speed_kmh * 60.0


@dataclass
class AdvisoryOutcome:
    """Aggregate quality of a batch of stay/divert decisions."""

    decisions: np.ndarray  # True = divert
    optimal: np.ndarray  # True = divert was actually faster
    minutes_saved: float  # vs always staying on the corridor
    minutes_possible: float  # an oracle's saving
    accuracy: float

    @property
    def regret_minutes(self) -> float:
        """Oracle saving the advisory failed to capture."""
        return self.minutes_possible - self.minutes_saved

    def render(self) -> str:
        n = len(self.decisions)
        return (
            f"advisories: {n}, divert rate {self.decisions.mean():.0%}, "
            f"accuracy {self.accuracy:.0%}, saved {self.minutes_saved:.1f} min "
            f"of {self.minutes_possible:.1f} min possible"
        )


def evaluate_advisories(
    series: TrafficSeries,
    predicted_field: np.ndarray,
    start_steps: np.ndarray,
    detour: Detour,
    margin_minutes: float = 1.0,
) -> AdvisoryOutcome:
    """Score stay/divert advice driven by a predicted speed field.

    Parameters
    ----------
    series:
        Ground-truth corridor (real speeds decide actual outcomes).
    predicted_field:
        (num_segments, T) km/h forecast used for the decisions.
    start_steps:
        Departure step indices to advise on.
    detour:
        The alternative route.
    margin_minutes:
        Advise DIVERT only when the predicted corridor time exceeds the
        detour by at least this margin (hysteresis against noise).
    """
    start_steps = np.asarray(start_steps, dtype=int)
    decisions = np.zeros(len(start_steps), dtype=bool)
    optimal = np.zeros(len(start_steps), dtype=bool)
    chosen_minutes = np.zeros(len(start_steps))
    best_minutes = np.zeros(len(start_steps))
    stay_minutes = np.zeros(len(start_steps))

    for i, step in enumerate(start_steps):
        predicted_stay = traverse_time_minutes(
            series.corridor, predicted_field, step, series.interval_minutes
        )
        real_stay = traverse_time_minutes(
            series.corridor, series.speeds, step, series.interval_minutes
        )
        divert = predicted_stay > detour.time_minutes + margin_minutes
        decisions[i] = divert
        optimal[i] = real_stay > detour.time_minutes
        chosen_minutes[i] = detour.time_minutes if divert else real_stay
        best_minutes[i] = min(real_stay, detour.time_minutes)
        stay_minutes[i] = real_stay

    return AdvisoryOutcome(
        decisions=decisions,
        optimal=optimal,
        minutes_saved=float(stay_minutes.sum() - chosen_minutes.sum()),
        minutes_possible=float(stay_minutes.sum() - best_minutes.sum()),
        accuracy=float((decisions == optimal).mean()),
    )
