"""Building predicted speed fields for the routing layer.

APOTS forecasts the *target road*; the advisory needs a full
(segments x time) field.  :func:`predicted_speed_field` substitutes the
model's target-road forecasts into a copy of the observed field — the
deployment situation where one studied link is forecast and the rest of
the corridor is read from live detectors.
"""

from __future__ import annotations

import numpy as np

from ..core.model import APOTS
from ..data.dataset import TrafficDataset

__all__ = ["predicted_speed_field"]


def predicted_speed_field(
    model: APOTS,
    dataset: TrafficDataset,
    subsets: tuple[str, ...] = ("train", "validation", "test"),
) -> np.ndarray:
    """Return series speeds with the target row replaced by forecasts.

    Every window in the chosen subsets contributes its prediction at its
    target step; steps no window covers keep the observed speed.
    """
    series = dataset.series
    field = series.speeds.copy()
    target_row = series.corridor.target_index
    for subset in subsets:
        indices = dataset.subset(subset)
        if len(indices) == 0:
            continue
        predictions = model.predict(dataset, subset=subset)
        steps = dataset.features.target_steps[indices]
        field[target_row, steps] = predictions
    return field
