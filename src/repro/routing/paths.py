"""Graph shortest paths for routing over arbitrary road networks.

:mod:`repro.routing` predates the city-network work and used to assume
the corridor's linear segment ordering.  This module is the
graph-agnostic core the network layer builds on: plain Dijkstra over an
adjacency mapping ``{node: ((neighbour, weight), ...)}``.  Nothing here
knows about :class:`~repro.network.graph.RoadGraph` — the caller
supplies whatever weighted adjacency it wants (free-flow travel time,
length, live congested time), so routing stays below the network layer
in the import DAG.

Determinism: ties are broken by node id (the heap orders on
``(distance, node)``), so two processes computing routes over the same
adjacency agree on every path.
"""

from __future__ import annotations

import heapq
from typing import Mapping, Sequence

__all__ = ["dijkstra", "shortest_path"]

#: adjacency type: node -> sequence of (neighbour, edge weight) pairs.
Adjacency = Mapping[int, Sequence[tuple[int, float]]]


def dijkstra(
    adjacency: Adjacency, source: int
) -> tuple[dict[int, float], dict[int, int]]:
    """Single-source shortest paths over a weighted digraph.

    Returns ``(distance, parent)``: distance from ``source`` to every
    reachable node, and each reached node's predecessor on its shortest
    path (the source has no entry in ``parent``).  Edge weights must be
    non-negative.
    """
    distance: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    done: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        dist, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for neighbour, weight in adjacency.get(node, ()):
            if weight < 0:
                raise ValueError(
                    f"negative edge weight {weight} on {node}->{neighbour}"
                )
            candidate = dist + weight
            if candidate < distance.get(neighbour, float("inf")):
                distance[neighbour] = candidate
                parent[neighbour] = node
                heapq.heappush(heap, (candidate, neighbour))
    return distance, parent


def shortest_path(adjacency: Adjacency, source: int, target: int) -> list[int]:
    """The node sequence of the shortest ``source``→``target`` path.

    Returns ``[source, ..., target]`` (``[source]`` when they coincide);
    raises :class:`ValueError` when the target is unreachable.
    """
    if source == target:
        return [source]
    distance, parent = dijkstra(adjacency, source)
    if target not in distance:
        raise ValueError(f"node {target} unreachable from {source}")
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path
