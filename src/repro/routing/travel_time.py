"""Corridor travel-time estimation from speed fields and forecasts.

The paper's introduction motivates speed prediction with route guidance:
"predicting future traffic speeds to optimize a driver's route".  This
module provides the application layer: given per-segment speeds (real or
predicted), integrate travel time along the corridor, advancing through
the speed field as the virtual vehicle moves (a time-expanded traversal,
not a frozen snapshot).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..traffic.types import Corridor, TrafficSeries

__all__ = [
    "traverse_path_minutes",
    "traverse_time_minutes",
    "segment_times_minutes",
    "corridor_travel_times",
]

_MIN_SPEED = 1.0  # km/h floor to keep times finite


def segment_times_minutes(lengths_km: np.ndarray, speeds_kmh: np.ndarray) -> np.ndarray:
    """Per-segment traversal times (minutes) at fixed speeds."""
    lengths_km = np.asarray(lengths_km, dtype=np.float64)
    speeds_kmh = np.maximum(np.asarray(speeds_kmh, dtype=np.float64), _MIN_SPEED)
    if lengths_km.shape != speeds_kmh.shape:
        raise ValueError("lengths and speeds must be aligned")
    return lengths_km / speeds_kmh * 60.0


def traverse_path_minutes(
    lengths_km: np.ndarray,
    speed_field: np.ndarray,
    path: Sequence[int],
    start_step: int,
    interval_minutes: int = 5,
) -> float:
    """Time-expanded traversal of an explicit segment-id path.

    This is the general form :func:`traverse_time_minutes` reduces to:
    ``path`` is any sequence of row indices into ``speed_field`` (a
    corridor prefix, or a route through a
    :class:`~repro.network.graph.RoadGraph`), visited in order.  The
    vehicle enters ``path[0]`` at the wall-clock time of ``start_step``
    and sees each segment's speed *at the step it arrives there*; steps
    beyond the end of the field reuse the final column.

    Parameters
    ----------
    lengths_km:
        (num_segments,) per-segment lengths, indexed like the field rows.
    speed_field:
        (num_segments, T) km/h speeds — real, or a model's forecast.
    path:
        Segment ids in traversal order (must be non-empty).
    start_step:
        Column index of departure.
    interval_minutes:
        Field cadence.

    Returns
    -------
    Total travel time in minutes.
    """
    lengths_km = np.asarray(lengths_km, dtype=np.float64)
    speed_field = np.asarray(speed_field, dtype=np.float64)
    if speed_field.ndim != 2 or speed_field.shape[0] != lengths_km.shape[0]:
        raise ValueError("speed_field must be (num_segments, T) aligned with lengths")
    if not 0 <= start_step < speed_field.shape[1]:
        raise ValueError("start_step out of range")
    if len(path) == 0:
        raise ValueError("path must contain at least one segment")
    num_segments = speed_field.shape[0]
    total_steps = speed_field.shape[1]
    elapsed_minutes = 0.0
    for index in path:
        index = int(index)
        if not 0 <= index < num_segments:
            raise ValueError(f"path segment {index} outside field 0..{num_segments - 1}")
        step = min(start_step + int(elapsed_minutes // interval_minutes), total_steps - 1)
        speed = max(float(speed_field[index, step]), _MIN_SPEED)
        elapsed_minutes += lengths_km[index] / speed * 60.0
    return elapsed_minutes


def traverse_time_minutes(
    corridor: Corridor,
    speed_field: np.ndarray,
    start_step: int,
    interval_minutes: int = 5,
    start_segment: int = 0,
    end_segment: int | None = None,
) -> float:
    """Time-expanded traversal of the corridor starting at ``start_step``.

    The corridor special case of :func:`traverse_path_minutes`: the path
    is the contiguous index range [start_segment, end_segment] (the full
    corridor by default).

    Parameters
    ----------
    corridor:
        Segment geometry (lengths).
    speed_field:
        (num_segments, T) km/h speeds — real, or a model's forecast.
    start_step:
        Column index of departure.
    interval_minutes:
        Field cadence.
    start_segment, end_segment:
        Traversed range [start_segment, end_segment]; full corridor by
        default.

    Returns
    -------
    Total travel time in minutes.
    """
    speed_field = np.asarray(speed_field, dtype=np.float64)
    if speed_field.ndim != 2 or speed_field.shape[0] != len(corridor):
        raise ValueError("speed_field must be (num_segments, T)")
    end_segment = len(corridor) - 1 if end_segment is None else end_segment
    if not 0 <= start_segment <= end_segment < len(corridor):
        raise ValueError("invalid segment range")
    lengths = np.array([s.length_km for s in corridor.segments])
    return traverse_path_minutes(
        lengths,
        speed_field,
        range(start_segment, end_segment + 1),
        start_step,
        interval_minutes=interval_minutes,
    )


def corridor_travel_times(
    series: TrafficSeries,
    start_steps: np.ndarray,
    speed_field: np.ndarray | None = None,
) -> np.ndarray:
    """Traversal times (minutes) for several departures.

    ``speed_field`` defaults to the series' real speeds; pass a model's
    predicted field to estimate what a navigation system would quote.
    """
    field = series.speeds if speed_field is None else speed_field
    return np.array(
        [
            traverse_time_minutes(
                series.corridor, field, int(step), interval_minutes=series.interval_minutes
            )
            for step in np.asarray(start_steps)
        ]
    )
