"""``repro.serving`` — online forecast serving for trained APOTS models.

Turns a checkpoint into a live service: rolling per-segment state
ingestion (:mod:`state`), request coalescing (:mod:`batcher`), TTL+LRU
forecast caching (:mod:`cache`), the :class:`ForecastService` facade
(:mod:`service`) and counters/latency histograms (re-exported from
:mod:`repro.obs.telemetry`; the :mod:`telemetry` shim is deprecated
and warns on import).

This layer is experiment-free by construction: it may depend on
``repro.core`` / ``repro.data`` / ``repro.nn`` but never on
``repro.experiments`` (enforced by ``tools/check_imports.py``).
"""

from .batcher import MicroBatcher, PendingForecast
from .cache import ForecastCache
from .errors import (
    IncompleteWindowError,
    ServingError,
    StaleObservationError,
    StreamGapError,
    UnknownSegmentError,
)
from ..obs.telemetry import Counter, Histogram, Telemetry
from .service import Forecast, ForecastService
from .state import Observation, SegmentStateStore, WindowView

__all__ = [
    "MicroBatcher",
    "PendingForecast",
    "ForecastCache",
    "ServingError",
    "UnknownSegmentError",
    "StaleObservationError",
    "StreamGapError",
    "IncompleteWindowError",
    "Forecast",
    "ForecastService",
    "Observation",
    "SegmentStateStore",
    "WindowView",
    "Counter",
    "Histogram",
    "Telemetry",
]
