"""Micro-batching: coalesce per-segment requests into vectorised forwards.

The numpy predictors are BLAS-bound: one forward over a batch of B
windows costs barely more than a forward over one window, so the service
queues concurrent requests and runs them together.  Two knobs control
the trade-off:

``max_batch_size``
    A flush never sends more than this many windows per forward (large
    queues are split into chunks).

``linger_seconds``
    How long a submitted request may wait for co-riders before a flush
    is forced.  ``0`` (the default) batches only what is already queued;
    :meth:`MicroBatcher.poll` (or any later submit) enforces the
    deadline, so a caller that wants latency-bounded coalescing submits
    without flushing and polls.

Determinism: BLAS kernels pick different blocking for different batch
shapes, so the *same* window forwarded alone and forwarded inside a
batch of 60 can differ in the last ulp.  With ``pad_batches=True``
(default) every forward is zero-padded to exactly ``max_batch_size``
rows, which pins the kernel shape and makes each row's result
independent of its co-riders — a forecast is bitwise identical whether
it was served alone, inside a full batch, or recomputed after a cache
miss.  The padding rows are discarded before results are assigned.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from .state import WindowView
from ..obs.telemetry import Telemetry

__all__ = ["PendingForecast", "MicroBatcher"]


class PendingForecast:
    """A submitted request; ``value`` (scaled) is set once flushed."""

    __slots__ = ("view", "value", "done")

    def __init__(self, view: WindowView):
        self.view = view
        self.value: float | None = None
        self.done = False


class MicroBatcher:
    """Coalesces window forwards; see the module docstring.

    ``forward`` maps ``(images, day_types, flat)`` batches to a (B,)
    array of scaled predictions.  It is looked up per flush, so the
    service can hot-swap the model underneath.
    """

    def __init__(
        self,
        forward: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
        max_batch_size: int = 64,
        linger_seconds: float = 0.0,
        pad_batches: bool = True,
        telemetry: Telemetry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if linger_seconds < 0:
            raise ValueError("linger_seconds cannot be negative")
        self._forward = forward
        self.max_batch_size = max_batch_size
        self.linger_seconds = linger_seconds
        self.pad_batches = pad_batches
        self._telemetry = telemetry
        self._clock = clock
        self._queue: list[PendingForecast] = []
        self._oldest: float | None = None

    def __len__(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def submit(self, view: WindowView) -> PendingForecast:
        """Queue one request; auto-flushes on a full batch or expired linger."""
        pending = PendingForecast(view)
        self._queue.append(pending)
        if self._oldest is None:
            self._oldest = self._clock()
        if len(self._queue) >= self.max_batch_size or (
            self.linger_seconds > 0 and self._linger_expired()
        ):
            self.flush()
        return pending

    def poll(self) -> bool:
        """Flush if the oldest queued request has waited past the linger.

        Returns True when a flush ran.
        """
        if self._queue and self._linger_expired():
            self.flush()
            return True
        return False

    def _linger_expired(self) -> bool:
        return self._oldest is not None and self._clock() - self._oldest >= self.linger_seconds

    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Run every queued request through the model; returns the count."""
        queue, self._queue = self._queue, []
        self._oldest = None
        for start in range(0, len(queue), self.max_batch_size):
            self._run(queue[start : start + self.max_batch_size])
        return len(queue)

    def _run(self, chunk: list[PendingForecast]) -> None:
        size = len(chunk)
        images = np.stack([p.view.image for p in chunk])
        day_types = np.stack([p.view.day_type for p in chunk])
        flat = np.stack([p.view.flat for p in chunk])
        if self.pad_batches and size < self.max_batch_size:
            pad = self.max_batch_size - size
            images = np.concatenate([images, np.zeros((pad, *images.shape[1:]))])
            day_types = np.concatenate([day_types, np.zeros((pad, *day_types.shape[1:]))])
            flat = np.concatenate([flat, np.zeros((pad, *flat.shape[1:]))])
        predictions = np.asarray(self._forward(images, day_types, flat)).reshape(-1)[:size]
        for pending, value in zip(chunk, predictions):
            pending.value = float(value)
            pending.done = True
        if self._telemetry is not None:
            self._telemetry.histogram("batch_size").observe(float(size))
