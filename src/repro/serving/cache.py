"""TTL + LRU forecast cache.

Keys are ``(segment_id, horizon, window fingerprint)``: the fingerprint
covers the exact window contents and end step, so any new observation
that advances a segment's window invalidates its cached forecasts simply
by changing the key.  The TTL (default: one 5-minute tick) bounds how
long a forecast for a *stalled* stream keeps being served, and the LRU
capacity bounds memory when fingerprints churn every tick.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Hashable

__all__ = ["ForecastCache"]


class ForecastCache:
    """A small OrderedDict-backed TTL+LRU cache.

    ``capacity == 0`` disables the cache entirely (every get misses,
    puts are dropped) — handy for benchmarking the uncached path.
    """

    def __init__(
        self,
        capacity: int = 4096,
        ttl_seconds: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 0:
            raise ValueError("capacity cannot be negative")
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[Hashable, tuple[object, float]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.ttl_evictions = 0
        self.lru_evictions = 0

    def __len__(self) -> int:
        # A stalled stream never calls get() on its keys, so expired
        # entries would otherwise sit in the size count forever and a
        # "full" cache would be reported to operators indefinitely.
        self._sweep_expired()
        return len(self._entries)

    def _sweep_expired(self) -> None:
        """Drop (and count as TTL evictions) every expired entry."""
        now = self._clock()
        expired = [key for key, (_, expires_at) in self._entries.items() if expires_at <= now]
        for key in expired:
            del self._entries[key]
        self.ttl_evictions += len(expired)

    def __contains__(self, key: Hashable) -> bool:
        entry = self._entries.get(key)
        return entry is not None and entry[1] > self._clock()

    # ------------------------------------------------------------------
    def get(self, key: Hashable):
        """The cached value, or None; refreshes LRU recency on a hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        value, expires_at = entry
        if expires_at <= self._clock():
            del self._entries[key]
            self.ttl_evictions += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = (value, self._clock() + self.ttl_seconds)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.lru_evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        self._sweep_expired()
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "ttl_evictions": self.ttl_evictions,
            "lru_evictions": self.lru_evictions,
        }
