"""Exception hierarchy of the online serving layer.

Every error the serving subsystem raises on purpose derives from
:class:`ServingError`, so callers can catch one type at the service
boundary.  Ingestion errors are deliberately loud: a traffic feed that
goes backwards or skips ticks is a broken feed, and silently papering
over it would corrupt every window assembled afterwards.
"""

from __future__ import annotations

__all__ = [
    "ServingError",
    "UnknownSegmentError",
    "StaleObservationError",
    "StreamGapError",
    "IncompleteWindowError",
]


class ServingError(RuntimeError):
    """Base class for all serving-layer errors."""


class UnknownSegmentError(ServingError):
    """A request or observation referenced a segment outside the corridor."""


class StaleObservationError(ServingError):
    """An observation arrived out of order (step <= the segment's latest)."""


class StreamGapError(ServingError):
    """An observation skipped ticks; the stream must be reset to resume."""


class IncompleteWindowError(ServingError):
    """A segment does not (yet) have a complete model input window."""
