"""The :class:`ForecastService` facade: store → batcher → model → cache.

Wiring (one instance serves one corridor):

* :meth:`ForecastService.ingest` feeds observations into the
  :class:`~repro.serving.state.SegmentStateStore`;
* :meth:`ForecastService.predict` / :meth:`~ForecastService.predict_many`
  answer "what is segment s's speed ``beta`` ticks from now?" — cache
  first, then one coalesced forward through the
  :class:`~repro.serving.batcher.MicroBatcher`;
* :meth:`ForecastService.swap_checkpoint` hot-swaps the model mid-stream
  from a :mod:`repro.core.zoo` checkpoint (format v2+, which carries the
  fitted scalers); cache entries are namespaced by the serving model's
  weight fingerprint so stale-champion values cannot outlive a swap.

Degradation policy (also documented in DESIGN.md): a query the model
cannot answer falls back to the *naive persistence forecast* — the
segment's last observed speed — and is flagged ``degraded`` with a
reason.  This covers segments whose window is still warming up or lags
its neighbours, corridor-edge segments that lack ``m`` neighbours on a
side, and horizons the model was not trained for.  Only a segment with
no observations at all is a hard :class:`IncompleteWindowError`: there
is nothing defensible to say about it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from ..attacks.defense import PerturbationGate
from ..core.model import APOTS
from ..core.zoo import load_model, model_fingerprint
from ..data.features import FeatureScalers
from .batcher import MicroBatcher, PendingForecast
from .cache import ForecastCache
from .errors import IncompleteWindowError
from .state import Observation, SegmentStateStore, WindowView
from ..obs.telemetry import Telemetry

__all__ = ["Forecast", "ForecastService"]


@dataclass(frozen=True)
class Forecast:
    """One answered query."""

    segment_id: int
    target_step: int
    horizon_steps: int
    speed_kmh: float
    source: str  # "model" | "naive"
    degraded: bool = False
    degraded_reason: str | None = None
    from_cache: bool = False
    #: Weight fingerprint of the model that produced this value
    #: (``repro.core.zoo.model_fingerprint``); ``None`` for naive
    #: persistence answers, which no model produced.
    model_fingerprint: str | None = None


class ForecastService:
    """Online forecast serving for one corridor and one APOTS model.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.model.APOTS` whose ``scalers`` are
        set (``fit()`` sets them; so does loading a format-v2 checkpoint).
    num_segments:
        Corridor length the observation stream indexes into.
    max_batch_size, linger_seconds, pad_batches:
        Micro-batching knobs (see :mod:`repro.serving.batcher`).
    cache_capacity, cache_ttl_seconds:
        Forecast cache sizing; TTL defaults to one 5-minute tick.
    interval_minutes, store_capacity:
        Stream geometry, forwarded to the state store.
    gate:
        An optional :class:`repro.attacks.defense.PerturbationGate`.
        When set, every ingested observation is screened for physical
        plausibility; forecasts for quarantined segments degrade to
        naive persistence of the last *trusted* speed instead of running
        the model on a possibly poisoned window.
    segment_range:
        The half-open ``[lo, hi)`` sub-range of segments this service
        *owns* when it runs as one shard replica of a
        :class:`repro.fleet.ForecastFleet` (it may still ingest halo
        observations outside the range so owned windows stay complete).
        Defaults to the whole corridor; surfaced in :meth:`snapshot` so
        fleet telemetry can aggregate replica snapshots without
        reaching into service internals.
    clock:
        Injectable monotonic clock (tests use a fake one).
    """

    def __init__(
        self,
        model: APOTS,
        num_segments: int,
        *,
        scalers: FeatureScalers | None = None,
        gate: PerturbationGate | None = None,
        segment_range: tuple[int, int] | None = None,
        max_batch_size: int = 64,
        linger_seconds: float = 0.0,
        pad_batches: bool = True,
        cache_capacity: int = 4096,
        cache_ttl_seconds: float = 300.0,
        interval_minutes: int = 5,
        store_capacity: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        scalers = scalers if scalers is not None else model.scalers
        if scalers is None:
            raise ValueError(
                "model has no fitted feature scalers; fit() it on a dataset or "
                "load a format-v2 checkpoint (v1 checkpoints lack scaler state)"
            )
        if segment_range is None:
            segment_range = (0, num_segments)
        lo, hi = segment_range
        if not (0 <= lo < hi <= num_segments):
            raise ValueError(
                f"segment_range {segment_range} is not a half-open sub-range "
                f"of the corridor 0..{num_segments}"
            )
        self._model = model
        self._scalers = scalers
        self._fingerprint = model_fingerprint(model)
        self.gate = gate
        self.segment_range = (int(lo), int(hi))
        self.telemetry = Telemetry()
        self.store = SegmentStateStore(
            num_segments,
            model.features,
            scalers,
            interval_minutes=interval_minutes,
            capacity=store_capacity,
        )
        self.cache = ForecastCache(
            capacity=cache_capacity, ttl_seconds=cache_ttl_seconds, clock=clock
        )
        self.batcher = MicroBatcher(
            self._forward,
            max_batch_size=max_batch_size,
            linger_seconds=linger_seconds,
            pad_batches=pad_batches,
            telemetry=self.telemetry,
            clock=clock,
        )

    @classmethod
    def from_checkpoint(cls, directory: str | Path, num_segments: int, **kwargs) -> "ForecastService":
        """Build a service straight from a zoo checkpoint directory."""
        return cls(load_model(directory), num_segments, **kwargs)

    # ------------------------------------------------------------------
    @property
    def model(self) -> APOTS:
        return self._model

    @property
    def fingerprint(self) -> str:
        """Weight fingerprint of the currently served model."""
        return self._fingerprint

    def _forward(self, images: np.ndarray, day_types: np.ndarray, flat: np.ndarray) -> np.ndarray:
        return self._model.predictor.predict(images, day_types, flat)

    def _to_kmh(self, scaled: float) -> float:
        return float(self._scalers.speed.inverse_transform(np.asarray([scaled]))[0])

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, observation: Observation) -> None:
        self.store.ingest(observation)
        self.telemetry.counter("observations").inc()
        self._screen(observation)

    def ingest_many(self, observations: Iterable[Observation]) -> int:
        observations = list(observations)
        count = self.store.ingest_many(observations)
        self.telemetry.counter("observations").inc(count)
        for observation in observations:
            self._screen(observation)
        return count

    def _screen(self, observation: Observation) -> None:
        """Run the perturbation gate (if any) over one accepted reading."""
        if self.gate is None:
            return
        decision = self.gate.screen(
            observation.segment_id, observation.step, observation.speed_kmh
        )
        self.telemetry.counter("gate_checks").inc()
        if decision.suspect:
            self.telemetry.counter("gate_hits").inc()

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _naive(self, segment_id: int, horizon: int, reason: str) -> Forecast:
        self.telemetry.counter("degraded_forecasts").inc()
        latest = self.store.latest_step(segment_id)
        return Forecast(
            segment_id=segment_id,
            target_step=(latest if latest is not None else 0) + horizon,
            horizon_steps=horizon,
            speed_kmh=self.store.last_speed_kmh(segment_id),
            source="naive",
            degraded=True,
            degraded_reason=reason,
        )

    def _gate_quarantined(self, segment_id: int) -> bool:
        """Whether the gate quarantines this segment's *window*.

        The model's window reads the segment and its ``m`` neighbours on
        each side — or, under a graph layout, its k-hop neighbourhood —
        so a poisoned neighbour taints the forecast just as much as a
        poisoned target.
        """
        if self.gate is None:
            return False
        layout = getattr(self._model.features, "layout", None)
        if layout is not None:
            neighbourhood = layout.valid_rows(segment_id)
        else:
            m = self._model.features.m
            neighbourhood = range(segment_id - m, segment_id + m + 1)
        return any(self.gate.is_quarantined(neighbour) for neighbour in neighbourhood)

    def _gate_naive(self, segment_id: int, horizon: int) -> Forecast:
        """Degrade a quarantined segment, persisting the last trusted speed.

        The store's last observation is exactly the reading the gate
        flagged, so plain naive persistence would echo the perturbed
        value; the gate remembers the last speed accepted outside
        quarantine and we persist that instead when it exists.
        """
        self.telemetry.counter("gate_degraded_forecasts").inc()
        forecast = self._naive(segment_id, horizon, "perturbation gate quarantine")
        assert self.gate is not None
        safe = self.gate.safe_speed(segment_id)
        if safe is not None:
            forecast = replace(forecast, speed_kmh=safe)
        return forecast

    def _resolve(
        self, segment_id: int, horizon: int, use_cache: bool
    ) -> tuple[Forecast | None, tuple | None, WindowView | None]:
        """Answer from cache/degradation, or return the window to batch."""
        self.telemetry.counter("requests").inc()
        beta = self._model.features.beta
        if horizon < 1:
            raise ValueError("horizon_steps must be at least 1")
        if horizon != beta:
            return (
                self._naive(
                    segment_id,
                    horizon,
                    f"horizon {horizon} unsupported (model predicts beta={beta})",
                ),
                None,
                None,
            )
        if self._gate_quarantined(segment_id):
            return self._gate_naive(segment_id, horizon), None, None
        try:
            view = self.store.window(segment_id)
        except IncompleteWindowError as exc:
            return self._naive(segment_id, horizon, str(exc)), None, None
        key = (self._fingerprint, segment_id, horizon, view.fingerprint)
        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                return replace(cached, from_cache=True), None, None
        return None, key, view

    def _complete(
        self, key: tuple, view: WindowView, pending: PendingForecast, horizon: int, use_cache: bool
    ) -> Forecast:
        assert pending.done and pending.value is not None
        forecast = Forecast(
            segment_id=view.segment_id,
            target_step=view.target_step,
            horizon_steps=horizon,
            speed_kmh=self._to_kmh(pending.value),
            source="model",
            model_fingerprint=self._fingerprint,
        )
        if use_cache:
            self.cache.put(key, forecast)
        return forecast

    def predict(
        self, segment_id: int, horizon_steps: int | None = None, use_cache: bool = True
    ) -> Forecast:
        """Forecast one segment, flushing the batcher immediately."""
        start = time.perf_counter()
        horizon = horizon_steps if horizon_steps is not None else self._model.features.beta
        forecast, key, view = self._resolve(segment_id, horizon, use_cache)
        if forecast is None:
            pending = self.batcher.submit(view)
            if not pending.done:
                self.batcher.flush()
            forecast = self._complete(key, view, pending, horizon, use_cache)
        self.telemetry.histogram("predict_latency_ms").observe(
            (time.perf_counter() - start) * 1e3
        )
        return forecast

    def predict_many(
        self,
        segment_ids: Sequence[int],
        horizon_steps: int | None = None,
        use_cache: bool = True,
    ) -> list[Forecast]:
        """Forecast many segments with one coalesced forward pass.

        Results are returned in request order; cache hits and degraded
        requests never enter the batcher.
        """
        start = time.perf_counter()
        horizon = horizon_steps if horizon_steps is not None else self._model.features.beta
        segment_ids = list(segment_ids)
        beta = self._model.features.beta
        if horizon < 1:
            raise ValueError("horizon_steps must be at least 1")
        self.telemetry.counter("requests").inc(len(segment_ids))
        results: list[Forecast | None] = [None] * len(segment_ids)
        queued: list[tuple[int, tuple, WindowView, PendingForecast]] = []
        if horizon != beta:
            reason = f"horizon {horizon} unsupported (model predicts beta={beta})"
            for position, segment_id in enumerate(segment_ids):
                results[position] = self._naive(segment_id, horizon, reason)
        else:
            # One vectorised pass assembles every servable window, so the
            # batch amortises feature assembly as well as the forward.
            windows = self.store.windows_many(segment_ids)
            for position, (segment_id, view) in enumerate(zip(segment_ids, windows)):
                if self._gate_quarantined(segment_id):
                    results[position] = self._gate_naive(segment_id, horizon)
                    continue
                if isinstance(view, IncompleteWindowError):
                    results[position] = self._naive(segment_id, horizon, str(view))
                    continue
                key = (self._fingerprint, segment_id, horizon, view.fingerprint)
                if use_cache:
                    cached = self.cache.get(key)
                    if cached is not None:
                        results[position] = replace(cached, from_cache=True)
                        continue
                queued.append((position, key, view, self.batcher.submit(view)))
        self.batcher.flush()
        for position, key, view, pending in queued:
            results[position] = self._complete(key, view, pending, horizon, use_cache)
        self.telemetry.histogram("predict_many_latency_ms").observe(
            (time.perf_counter() - start) * 1e3
        )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Model lifecycle
    # ------------------------------------------------------------------
    def swap_checkpoint(self, directory: str | Path) -> APOTS:
        """Hot-swap the served model from a checkpoint, mid-stream.

        The incoming model must match the current feature geometry (the
        state store's windows are shaped by it) and must carry scalers.
        Cache entries are keyed by the serving model's weight
        fingerprint, so old-champion values can never satisfy a
        post-swap lookup even if they survived; the cache is cleared
        anyway — every old entry is dead weight.  Returns the new model.
        """
        model = load_model(directory)
        if model.features != self._model.features:
            raise ValueError(
                f"checkpoint feature geometry {model.features} does not match "
                f"the serving geometry {self._model.features}"
            )
        if model.scalers is None:
            raise ValueError(
                "checkpoint lacks scaler state (format v1?); online serving "
                "needs the fitted scalers to transform raw observations"
            )
        self._model = model
        self._scalers = model.scalers
        self._fingerprint = model_fingerprint(model)
        self.store.scalers = model.scalers
        self.cache.clear()
        self.telemetry.counter("checkpoint_swaps").inc()
        return model

    def load_checkpoint(self, directory: str | Path) -> APOTS:
        """Back-compat alias for :meth:`swap_checkpoint`."""
        return self.swap_checkpoint(directory)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One dict with everything an operator dashboard would scrape.

        Shard-aware fields (``segment_range``, ``gate_quarantined_count``)
        let a fleet aggregate many replica snapshots without reaching
        into service internals.
        """
        snap = self.telemetry.snapshot()
        snap["cache"] = self.cache.stats()
        snap["model"] = self._model.name
        snap["model_fingerprint"] = self._fingerprint
        snap["pending_requests"] = len(self.batcher)
        snap["segment_range"] = list(self.segment_range)
        snap["owned_segments"] = self.segment_range[1] - self.segment_range[0]
        if self.gate is not None:
            snap["gate"] = self.gate.snapshot()
            snap["gate_quarantined_count"] = len(snap["gate"]["quarantined_segments"])
        else:
            snap["gate_quarantined_count"] = 0
        return snap
