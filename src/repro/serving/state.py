"""Rolling per-segment state: from an observation stream to model inputs.

The offline pipeline (:func:`repro.data.features.build_features`) sees a
whole :class:`~repro.traffic.types.TrafficSeries` at once and slides
windows over it.  Online, observations arrive one 5-minute tick at a
time, per segment.  :class:`SegmentStateStore` keeps fixed-capacity ring
buffers — speed and event flags consolidated into ``(num_segments,
capacity)`` arrays, plus one corridor-wide context ring (temperature,
precipitation, day-type bits) — and materialises, on demand, exactly
the ``(image, day_type, flat)`` arrays the predictors consume,
bit-for-bit identical to what ``build_features`` would produce for the
same steps (covered by ``tests/serving/test_state.py``).

:meth:`SegmentStateStore.windows_many` assembles many segments' windows
with a handful of vectorised gathers instead of per-segment python
loops; it is the reason ``predict_many`` amortises not just the model
forward but the feature assembly as well.  The single-segment
:meth:`~SegmentStateStore.window` routes through the same code, so
batched and per-request assembly are identical by construction.

Streams are validated strictly on ingest: an observation that goes
backwards raises :class:`StaleObservationError` and one that skips ticks
raises :class:`StreamGapError`; a broken feed must be restarted with
:meth:`SegmentStateStore.reset_segment` rather than silently stitched.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..data.features import FeatureConfig, FeatureScalers
from .errors import IncompleteWindowError, StaleObservationError, StreamGapError, UnknownSegmentError

__all__ = ["Observation", "WindowView", "SegmentStateStore"]

#: Context-ring column layout: temperature, precipitation, 4 day-type bits.
_CTX_TEMP, _CTX_PRECIP, _CTX_DAY = 0, 1, slice(2, 6)
_DEFAULT_DAY_TYPE = (1.0, 0.0, 0.0, 0.0)  # plain weekday


@dataclass(frozen=True)
class Observation:
    """One segment's reading for one 5-minute tick.

    ``step`` is the absolute tick index of the feed (consecutive integers).
    Corridor-wide context fields are optional; when ``None`` the store
    carries the previous tick's value forward (a weather feed typically
    updates much less often than the speed feed).
    """

    segment_id: int
    step: int
    speed_kmh: float
    event: float = 0.0
    temperature: float | None = None
    precipitation: float | None = None
    day_type: tuple[float, float, float, float] | None = None


@dataclass(frozen=True)
class WindowView:
    """A materialised model input window for one segment.

    ``fingerprint`` identifies the exact window contents (and end step),
    so it changes whenever a new observation advances the window — the
    forecast cache keys on it.
    """

    segment_id: int
    end_step: int
    target_step: int
    image: np.ndarray  # (image_rows, alpha) scaled
    day_type: np.ndarray  # (4,)
    flat: np.ndarray  # (flat_dim,)
    fingerprint: str
    last_speed_kmh: float


class _ContextRing:
    """Fixed-capacity ring of context rows keyed by consecutive steps.

    ``count`` tracks the length of the *contiguous* run ending at
    ``latest``; a push that is not ``latest + 1`` restarts the run.
    """

    __slots__ = ("data", "capacity", "latest", "count")

    def __init__(self, capacity: int, width: int):
        self.data = np.zeros((capacity, width), dtype=np.float64)
        self.capacity = capacity
        self.latest: int | None = None
        self.count = 0

    def push(self, step: int, row: np.ndarray) -> None:
        if self.latest is not None and step == self.latest + 1:
            self.count = min(self.count + 1, self.capacity)
        else:
            self.count = 1
        self.data[step % self.capacity] = row
        self.latest = step

    def value_at(self, step: int) -> np.ndarray:
        return self.data[step % self.capacity]

    def has(self, step: int) -> bool:
        return self.latest is not None and self.latest - self.count < step <= self.latest

    def covers(self, end_step: int, n: int) -> bool:
        """Whether the ``n`` consecutive rows ending at ``end_step`` are held."""
        if self.latest is None or end_step > self.latest:
            return False
        return end_step - n + 1 > self.latest - self.count


class SegmentStateStore:
    """Ring-buffered rolling state for every segment of a corridor.

    Parameters
    ----------
    num_segments:
        Corridor length; observations and queries index into it.
    features:
        Window geometry of the model being served (alpha, m, mask).
    scalers:
        The model's train-fitted scalers — raw km/h, degrees and mm go in,
        model-scaled features come out.
    interval_minutes:
        Tick length; used to derive the hour-of-day channel from steps.
    capacity:
        Ring capacity per segment (default: exactly ``alpha``).
    """

    def __init__(
        self,
        num_segments: int,
        features: FeatureConfig,
        scalers: FeatureScalers,
        interval_minutes: int = 5,
        capacity: int | None = None,
    ):
        if num_segments < 1:
            raise ValueError("num_segments must be positive")
        if (24 * 60) % interval_minutes != 0:
            raise ValueError("interval_minutes must divide a day evenly")
        self.num_segments = num_segments
        self.features = features
        self.scalers = scalers
        # Graph-neighbourhood configs carry a row layout; corridor configs
        # don't (duck-typed so repro.data.graph_features stays optional).
        self._layout = getattr(features, "layout", None)
        if self._layout is not None and self._layout.num_segments != num_segments:
            raise ValueError(
                f"layout covers {self._layout.num_segments} segments, store has {num_segments}"
            )
        self.interval_minutes = interval_minutes
        self.steps_per_day = (24 * 60) // interval_minutes
        capacity = features.alpha if capacity is None else capacity
        if capacity < features.alpha:
            raise ValueError(f"capacity {capacity} cannot hold an alpha={features.alpha} window")
        self._capacity = capacity
        self._speed_data = np.zeros((num_segments, capacity), dtype=np.float64)
        self._event_data = np.zeros((num_segments, capacity), dtype=np.float64)
        self._latest = np.full(num_segments, -1, dtype=np.int64)  # -1 = no data
        self._count = np.zeros(num_segments, dtype=np.int64)  # contiguous run length
        self._context = _ContextRing(capacity, width=6)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _check_segment(self, segment_id: int) -> None:
        if not 0 <= segment_id < self.num_segments:
            raise UnknownSegmentError(
                f"segment {segment_id} outside corridor 0..{self.num_segments - 1}"
            )

    def ingest(self, observation: Observation) -> None:
        """Validate and absorb one observation.

        Raises :class:`StaleObservationError` on out-of-order/duplicate
        steps and :class:`StreamGapError` on skipped steps.
        """
        obs = observation
        self._check_segment(obs.segment_id)
        seg, step = obs.segment_id, obs.step
        latest = int(self._latest[seg])
        if latest >= 0:
            if step <= latest:
                raise StaleObservationError(
                    f"segment {seg}: observation for step {step} arrived after "
                    f"step {latest} was already ingested (out of order)"
                )
            if step > latest + 1:
                raise StreamGapError(
                    f"segment {seg}: stream skipped steps {latest + 1}..{step - 1}; "
                    f"call reset_segment({seg}) to restart the stream"
                )
        slot = step % self._capacity
        self._speed_data[seg, slot] = obs.speed_kmh
        self._event_data[seg, slot] = float(obs.event)
        self._count[seg] = min(int(self._count[seg]) + 1, self._capacity) if step == latest + 1 else 1
        self._latest[seg] = step
        self._ingest_context(obs)

    def ingest_many(self, observations) -> int:
        """Ingest an iterable of observations; returns how many."""
        n = 0
        for obs in observations:
            self.ingest(obs)
            n += 1
        return n

    def _ingest_context(self, obs: Observation) -> None:
        ctx = self._context
        if ctx.latest is not None and obs.step <= ctx.latest:
            # Another segment already opened this tick (or a later one);
            # only fold in explicitly provided fields.
            if ctx.has(obs.step):
                row = ctx.value_at(obs.step)
                if obs.temperature is not None:
                    row[_CTX_TEMP] = obs.temperature
                if obs.precipitation is not None:
                    row[_CTX_PRECIP] = obs.precipitation
                if obs.day_type is not None:
                    row[_CTX_DAY] = obs.day_type
            return
        # New tick: start from the previous tick's values (carry-forward).
        if ctx.latest is not None and ctx.has(obs.step - 1):
            row = ctx.value_at(obs.step - 1).copy()
        else:
            row = np.array([0.0, 0.0, *_DEFAULT_DAY_TYPE])
        if obs.temperature is not None:
            row[_CTX_TEMP] = obs.temperature
        if obs.precipitation is not None:
            row[_CTX_PRECIP] = obs.precipitation
        if obs.day_type is not None:
            row[_CTX_DAY] = obs.day_type
        ctx.push(obs.step, row)

    def reset_segment(self, segment_id: int) -> None:
        """Drop a segment's buffered stream (recovery after a gap)."""
        self._check_segment(segment_id)
        self._latest[segment_id] = -1
        self._count[segment_id] = 0
        self._speed_data[segment_id] = 0.0
        self._event_data[segment_id] = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def latest_step(self, segment_id: int) -> int | None:
        self._check_segment(segment_id)
        latest = int(self._latest[segment_id])
        return None if latest < 0 else latest

    def last_speed_kmh(self, segment_id: int) -> float:
        """Most recent raw speed; the naive-degradation forecast."""
        self._check_segment(segment_id)
        latest = int(self._latest[segment_id])
        if latest < 0:
            raise IncompleteWindowError(f"segment {segment_id} has no observations yet")
        return float(self._speed_data[segment_id, latest % self._capacity])

    # ------------------------------------------------------------------
    # Window assembly
    # ------------------------------------------------------------------
    def _hours(self, steps: np.ndarray) -> np.ndarray:
        """Hour of day per step, assuming step 0 is midnight."""
        minutes = (steps % self.steps_per_day) * self.interval_minutes
        return (minutes // 60).astype(np.float64)

    def _readiness_error(self, segment_id: int) -> IncompleteWindowError | None:
        """Why this segment's window cannot be assembled right now."""
        alpha, m = self.features.alpha, self.features.m
        if self._layout is None:
            lo, hi = segment_id - m, segment_id + m
            if lo < 0 or hi >= self.num_segments:
                return IncompleteWindowError(
                    f"segment {segment_id} needs {m} neighbours on each side "
                    f"(corridor 0..{self.num_segments - 1}); edge segments are "
                    f"served by the naive fallback"
                )
            neighbour_rows = None
        else:
            # Graph layout: padding rows absorb short neighbourhoods, so
            # there is no edge condition — only the real rows must be fresh.
            row = self._layout.rows_array[segment_id]
            neighbour_rows = row[row >= 0]
        end = int(self._latest[segment_id])
        if end < 0 or self._count[segment_id] < alpha:
            have = max(int(self._count[segment_id]), 0) if end >= 0 else 0
            return IncompleteWindowError(
                f"segment {segment_id} has {have}/{alpha} consecutive observations"
            )
        # Each adjacent row needs the alpha steps ending at `end`: its stream
        # must have reached `end` and its contiguous run must span back far
        # enough (a neighbour running ahead is fine while the ring holds on
        # to the older slots).
        if neighbour_rows is None:
            latest = self._latest[lo : hi + 1]
            count = self._count[lo : hi + 1]
        else:
            latest = self._latest[neighbour_rows]
            count = self._count[neighbour_rows]
        if not ((latest >= end) & (count >= latest - end + alpha)).all():
            return IncompleteWindowError(
                f"a neighbour of segment {segment_id} lags it "
                f"(no complete window ending at step {end})"
            )
        if not self._context.covers(end, alpha):
            return IncompleteWindowError(
                f"context channels incomplete for steps ending at {end}"
            )
        return None

    def window(self, segment_id: int) -> WindowView:
        """One segment's window, or raise :class:`IncompleteWindowError`."""
        result = self.windows_many([segment_id])[0]
        if isinstance(result, IncompleteWindowError):
            raise result
        return result

    def windows_many(
        self, segment_ids
    ) -> list[WindowView | IncompleteWindowError]:
        """Materialise many segments' windows with vectorised gathers.

        Returns one entry per requested segment, in order: a
        :class:`WindowView`, or the :class:`IncompleteWindowError` that
        explains why the segment cannot be served by the model (callers
        degrade those to the naive forecast rather than failing the whole
        batch).  Unknown segment ids still raise — that is a caller bug,
        not a stream condition.

        Mirrors :func:`repro.data.features.build_features` exactly: the
        adjacent-speed rows span ``segment_id - m .. segment_id + m``,
        followed by the event / temperature / precipitation / hour rows,
        with the factor mask's zero-filling applied.
        """
        cfg = self.features
        alpha, m = cfg.alpha, cfg.m
        results: list[WindowView | IncompleteWindowError | None] = [None] * len(segment_ids)
        ready_positions: list[int] = []
        ready_segments: list[int] = []
        for position, segment_id in enumerate(segment_ids):
            self._check_segment(segment_id)
            error = self._readiness_error(segment_id)
            if error is not None:
                results[position] = error
            else:
                ready_positions.append(position)
                ready_segments.append(segment_id)
        if not ready_segments:
            return results  # type: ignore[return-value]

        segments = np.asarray(ready_segments, dtype=np.int64)
        ends = self._latest[segments]  # (B,)
        steps = ends[:, None] + np.arange(-(alpha - 1), 1)[None, :]  # (B, alpha)
        idx = steps % self._capacity
        if self._layout is None:
            rows = segments[:, None] + np.arange(-m, m + 1)[None, :]  # (B, 2m+1)
            gather_rows = rows
        else:
            rows = self._layout.rows_array[segments]  # (B, num_rows), -1 = padding
            gather_rows = np.maximum(rows, 0)  # padding rows read row 0, zeroed below

        adj_kmh = self._speed_data[gather_rows[:, :, None], idx[:, None, :]]  # (B, R, alpha)
        event = self._event_data[segments[:, None], idx]  # (B, alpha)
        context = self._context.data[idx]  # (B, alpha, 6)

        adj = self.scalers.speed.transform(adj_kmh)
        if self._layout is not None:
            adj[rows < 0] = 0.0  # offline rule: zero padding after scaling
        temp = self.scalers.temperature.transform(context[:, :, _CTX_TEMP])
        precip = self.scalers.precipitation.transform(context[:, :, _CTX_PRECIP])
        hour = self._hours(steps) / 23.0
        day_types = context[:, -1, _CTX_DAY].copy()  # (B, 4)

        mask = cfg.mask
        if not mask.adjacent:
            keep = adj[:, m, :].copy()
            adj[:] = 0.0
            adj[:, m, :] = keep
        if not mask.event:
            event = np.zeros_like(event)
        if not mask.weather:
            temp = np.zeros_like(temp)
            precip = np.zeros_like(precip)
        if not mask.time:
            hour = np.zeros_like(hour)
            day_types = np.zeros_like(day_types)

        images = np.concatenate(
            [adj, event[:, None, :], temp[:, None, :], precip[:, None, :], hour[:, None, :]],
            axis=1,
        )  # (B, image_rows, alpha)
        flats = np.concatenate([images.reshape(len(segments), -1), day_types], axis=1)
        last_speeds = adj_kmh[:, m, -1]

        for i, position in enumerate(ready_positions):
            end = int(ends[i])
            day_type = day_types[i]
            digest = hashlib.blake2b(digest_size=12)
            digest.update(end.to_bytes(8, "little", signed=True))
            digest.update(images[i].tobytes())
            digest.update(day_type.tobytes())
            results[position] = WindowView(
                segment_id=int(segments[i]),
                end_step=end,
                target_step=end + cfg.beta,
                image=images[i],
                day_type=day_type,
                flat=flats[i],
                fingerprint=digest.hexdigest(),
                last_speed_kmh=float(last_speeds[i]),
            )
        return results  # type: ignore[return-value]
