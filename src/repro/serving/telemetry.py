"""Back-compat shim: telemetry moved to :mod:`repro.obs.telemetry`.

PR 2 promoted the Counter/Histogram/Telemetry primitives into the
shared observability layer so the training side can use them without
importing serving. Import from ``repro.obs`` in new code; this module
only keeps ``repro.serving.telemetry`` (and the ``repro.serving``
re-exports) working.
"""

from ..obs.telemetry import Counter, Histogram, Telemetry

__all__ = ["Counter", "Histogram", "Telemetry"]
