"""Deprecated shim: telemetry moved to :mod:`repro.obs.telemetry`.

PR 2 promoted the Counter/Histogram/Telemetry primitives into the
shared observability layer so the training side can use them without
importing serving.  This module is now retired: importing it raises a
:class:`DeprecationWarning`, every in-repo importer has been migrated,
and ``tools/check_imports.py`` forbids new in-repo uses.  Import from
``repro.obs`` instead.
"""

import warnings

from ..obs.telemetry import Counter, Histogram, Telemetry

__all__ = ["Counter", "Histogram", "Telemetry"]

warnings.warn(
    "repro.serving.telemetry is deprecated; import Counter/Histogram/"
    "Telemetry from repro.obs instead",
    DeprecationWarning,
    stacklevel=2,
)
