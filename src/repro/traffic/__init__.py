"""``repro.traffic`` — synthetic Gyeongbu-corridor traffic substrate.

Stands in for the proprietary Hyundai Motor Company dataset: a linear
expressway corridor with rush hours, weather, accidents/construction and
the Korean holiday calendar of the paper's study window.
"""

from .calendar import (
    KOREAN_HOLIDAYS_2018,
    STUDY_END,
    STUDY_START,
    DayType,
    day_type_flags,
    is_holiday,
    is_weekend,
    timeline,
)
from .incidents import Incident, incident_masks, sample_incidents
from .io import load_series, save_series, series_from_arrays
from .simulator import TrafficSimulator, simulate
from .types import Corridor, RoadSegment, SimulationConfig, TrafficSeries
from .weather import WeatherModel, generate_weather

__all__ = [
    "KOREAN_HOLIDAYS_2018",
    "STUDY_END",
    "STUDY_START",
    "DayType",
    "day_type_flags",
    "is_holiday",
    "is_weekend",
    "timeline",
    "Incident",
    "load_series",
    "save_series",
    "series_from_arrays",
    "incident_masks",
    "sample_incidents",
    "TrafficSimulator",
    "simulate",
    "Corridor",
    "RoadSegment",
    "SimulationConfig",
    "TrafficSeries",
    "WeatherModel",
    "generate_weather",
]
