"""Korean calendar utilities for the study period (July – October 2018).

The paper's non-speed "time" factor encodes the hour of day and a day
type among {weekday, holiday, day before holiday, day after holiday};
its dataset "contains a small number of holidays (only 7 days)".  The
official Korean public holidays in Jul–Oct 2018 are exactly seven days,
reproduced below.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

import numpy as np

__all__ = [
    "KOREAN_HOLIDAYS_2018",
    "STUDY_START",
    "STUDY_END",
    "DayType",
    "day_type_flags",
    "is_holiday",
    "is_weekend",
    "timeline",
]

#: Official Korean public holidays falling in the study window (7 days).
KOREAN_HOLIDAYS_2018: frozenset[dt.date] = frozenset(
    {
        dt.date(2018, 8, 15),  # Liberation Day
        dt.date(2018, 9, 23),  # Chuseok eve
        dt.date(2018, 9, 24),  # Chuseok
        dt.date(2018, 9, 25),  # Chuseok day 2
        dt.date(2018, 9, 26),  # Chuseok substitute holiday
        dt.date(2018, 10, 3),  # National Foundation Day
        dt.date(2018, 10, 9),  # Hangul Day
    }
)

#: The paper's data covers 122 days: 2018-07-01 .. 2018-10-30.
STUDY_START = dt.date(2018, 7, 1)
STUDY_END = dt.date(2018, 10, 30)


def is_holiday(day: dt.date, holidays: frozenset[dt.date] = KOREAN_HOLIDAYS_2018) -> bool:
    """True when ``day`` is an official public holiday."""
    return day in holidays


def is_weekend(day: dt.date) -> bool:
    """True for Saturday or Sunday."""
    return day.weekday() >= 5


@dataclass(frozen=True)
class DayType:
    """The paper's four day-type indicator bits for one calendar day."""

    weekday: bool
    holiday: bool
    day_before_holiday: bool
    day_after_holiday: bool

    def as_array(self) -> np.ndarray:
        """Return the [weekday, holiday, before, after] 0/1 vector."""
        return np.array(
            [self.weekday, self.holiday, self.day_before_holiday, self.day_after_holiday],
            dtype=np.float64,
        )


def day_type_flags(day: dt.date, holidays: frozenset[dt.date] = KOREAN_HOLIDAYS_2018) -> DayType:
    """Classify ``day`` per the paper's example encoding.

    A Wednesday before Independence Day is [1, 0, 1, 0]: several bits may
    be set at once.  ``weekday`` means Monday–Friday and not a holiday.
    """
    holiday = is_holiday(day, holidays)
    weekday = day.weekday() < 5 and not holiday
    before = is_holiday(day + dt.timedelta(days=1), holidays)
    after = is_holiday(day - dt.timedelta(days=1), holidays)
    return DayType(weekday=weekday, holiday=holiday, day_before_holiday=before, day_after_holiday=after)


def timeline(
    start: dt.date,
    num_days: int,
    interval_minutes: int = 5,
) -> list[dt.datetime]:
    """Return every timestamp of a ``num_days`` study at a fixed cadence.

    The paper samples speeds every five minutes, so a day yields
    ``24 * 60 / 5 = 288`` timestamps.
    """
    if num_days <= 0:
        raise ValueError("num_days must be positive")
    if (24 * 60) % interval_minutes != 0:
        raise ValueError("interval must divide the day evenly")
    steps_per_day = (24 * 60) // interval_minutes
    base = dt.datetime.combine(start, dt.time())
    delta = dt.timedelta(minutes=interval_minutes)
    return [base + i * delta for i in range(num_days * steps_per_day)]
