"""Accident and construction event generation.

Substitutes for the accident/construction logs in the Hyundai dataset.
Accidents arrive as a Poisson process over the corridor, hit a random
segment, and impose a severity multiplier for their duration followed by
a linear recovery ramp.  Construction events are rarer, longer, milder,
and scheduled overnight, mirroring real lane-closure practice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .types import SimulationConfig

__all__ = ["Incident", "sample_incidents", "incident_masks"]


@dataclass(frozen=True)
class Incident:
    """A single capacity-reducing event on one segment.

    ``severity`` is the multiplicative speed factor while active (e.g.
    0.4 means speeds drop to 40 %); recovery ramps the factor linearly
    back to 1 over ``recovery_steps`` after the event clears.
    """

    segment: int
    start_step: int
    duration_steps: int
    recovery_steps: int
    severity: float
    kind: str  # "accident" | "construction"

    def __post_init__(self):
        if not 0.0 < self.severity <= 1.0:
            raise ValueError("severity must be in (0, 1]")
        if self.duration_steps <= 0:
            raise ValueError("duration must be positive")
        if self.kind not in ("accident", "construction"):
            raise ValueError(f"unknown incident kind {self.kind!r}")

    @property
    def end_step(self) -> int:
        """First step after the active phase."""
        return self.start_step + self.duration_steps


def sample_incidents(
    config: SimulationConfig,
    num_segments: int,
    rng: np.random.Generator,
    target_index: int | None = None,
) -> list[Incident]:
    """Draw all accidents and construction events for a simulation.

    A fraction ``accident_target_bias`` of accidents strike at or just
    downstream of the target segment, so its queue spillback reaches the
    studied road — the corridor is monitored precisely because it is the
    busy one.
    """
    incidents: list[Incident] = []
    steps_per_day = config.steps_per_day
    step_minutes = config.interval_minutes
    if target_index is None:
        target_index = num_segments // 2

    def accident_segment() -> int:
        if rng.random() < config.accident_target_bias:
            return int(min(target_index + rng.integers(0, 3), num_segments - 1))
        return int(rng.integers(0, num_segments))

    for day in range(config.num_days):
        day_start = day * steps_per_day

        # Accidents: Poisson count, uniform start time, biased toward peaks.
        for _ in range(rng.poisson(config.accident_rate_per_day)):
            # Accidents cluster in busy hours: mixture of uniform and peak.
            if rng.random() < 0.55:
                peak = rng.choice([config.morning_peak_hour, config.evening_peak_hour])
                hour = float(np.clip(rng.normal(peak, 1.2), 0.0, 23.9))
            else:
                hour = rng.uniform(0.0, 23.9)
            start = day_start + int(hour * 60 / step_minutes)
            duration_minutes = rng.integers(
                config.accident_duration_minutes_low,
                config.accident_duration_minutes_high + 1,
            )
            incidents.append(
                Incident(
                    segment=accident_segment(),
                    start_step=start,
                    duration_steps=max(1, int(duration_minutes // step_minutes)),
                    recovery_steps=max(1, config.accident_recovery_minutes // step_minutes),
                    severity=float(
                        rng.uniform(config.accident_severity_low, config.accident_severity_high)
                    ),
                    kind="accident",
                )
            )

        # Construction: overnight lane closures (22:00 - 05:00).
        for _ in range(rng.poisson(config.construction_rate_per_day)):
            hour = rng.uniform(22.0, 23.5)
            start = day_start + int(hour * 60 / step_minutes)
            duration_minutes = rng.integers(180, 420)
            incidents.append(
                Incident(
                    segment=int(rng.integers(0, num_segments)),
                    start_step=start,
                    duration_steps=int(duration_minutes // step_minutes),
                    recovery_steps=max(1, 20 // step_minutes),
                    severity=config.construction_speed_factor,
                    kind="construction",
                )
            )
    return incidents


def incident_masks(
    incidents: list[Incident],
    num_segments: int,
    total_steps: int,
    upstream_decay: float,
    delay_steps: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand incidents into per-step arrays.

    Returns
    -------
    factor:
        (num_segments, T) multiplicative speed factor in (0, 1], combining
        the direct hit, the linear recovery ramp, and damped, delayed
        propagation to upstream segments (traffic queues grow backwards).
    flags:
        (num_segments, T) 0/1 event indicator: 1 only on the directly hit
        segment during the active phase (what an ITS event log records).
    """
    factor = np.ones((num_segments, total_steps))
    flags = np.zeros((num_segments, total_steps))

    for incident in incidents:
        profile_len = incident.duration_steps + incident.recovery_steps
        profile = np.ones(profile_len)
        profile[: incident.duration_steps] = incident.severity
        ramp = np.linspace(incident.severity, 1.0, incident.recovery_steps + 1)[1:]
        profile[incident.duration_steps :] = ramp

        # Direct hit plus damped upstream shockwave (segments with lower index
        # feed the hit segment, so the queue spills onto them with a delay).
        reach = 2
        for offset in range(0, reach + 1):
            segment = incident.segment - offset
            if segment < 0:
                break
            damping = upstream_decay**offset
            start = incident.start_step + offset * delay_steps
            stop = min(start + profile_len, total_steps)
            if start >= total_steps:
                continue
            segment_profile = 1.0 - damping * (1.0 - profile[: stop - start])
            factor[segment, start:stop] = np.minimum(factor[segment, start:stop], segment_profile)

        active_stop = min(incident.end_step, total_steps)
        if incident.start_step < total_steps:
            flags[incident.segment, incident.start_step : active_stop] = 1.0

    return factor, flags
