"""Serialisation and ingestion of traffic series.

Two use cases:

* **Checkpointing simulations** — :func:`save_series` / :func:`load_series`
  round-trip a :class:`TrafficSeries` through a single ``.npz`` file, so
  expensive simulations (or slow data preprocessing) run once.
* **Bringing your own data** — :func:`series_from_arrays` builds a
  TrafficSeries from plain numpy arrays (speed matrix + optional
  channels), which is all a real detector-log pipeline needs to feed
  APOTS.  Missing channels are filled with neutral values, and the
  calendar channels are derived from the timestamps.
"""

from __future__ import annotations

import datetime as dt
import json
from pathlib import Path

import numpy as np

from .calendar import KOREAN_HOLIDAYS_2018, day_type_flags
from .types import Corridor, RoadSegment, TrafficSeries

__all__ = ["save_series", "load_series", "series_from_arrays"]


def save_series(series: TrafficSeries, path: str | Path) -> Path:
    """Write a TrafficSeries to a ``.npz`` archive (single file)."""
    path = Path(path)
    corridor_manifest = {
        "target_index": series.corridor.target_index,
        "segments": [
            {
                "segment_id": s.segment_id,
                "name": s.name,
                "length_km": s.length_km,
                "free_flow_kmh": s.free_flow_kmh,
                "capacity_vph": s.capacity_vph,
            }
            for s in series.corridor.segments
        ],
    }
    timestamps = np.array([t.isoformat() for t in series.timestamps])
    np.savez_compressed(
        path,
        speeds=series.speeds,
        temperature=series.temperature,
        precipitation=series.precipitation,
        events=series.events,
        hours=series.hours,
        day_types=series.day_types,
        timestamps=timestamps,
        interval_minutes=np.array(series.interval_minutes),
        corridor=np.array(json.dumps(corridor_manifest)),
    )
    return path


def load_series(path: str | Path) -> TrafficSeries:
    """Load a TrafficSeries written by :func:`save_series`."""
    with np.load(Path(path)) as archive:
        manifest = json.loads(str(archive["corridor"]))
        corridor = Corridor(
            segments=tuple(RoadSegment(**segment) for segment in manifest["segments"]),
            target_index=manifest["target_index"],
        )
        timestamps = [dt.datetime.fromisoformat(t) for t in archive["timestamps"]]
        return TrafficSeries(
            corridor=corridor,
            speeds=archive["speeds"],
            temperature=archive["temperature"],
            precipitation=archive["precipitation"],
            events=archive["events"],
            hours=archive["hours"],
            day_types=archive["day_types"],
            timestamps=timestamps,
            interval_minutes=int(archive["interval_minutes"]),
        )


def series_from_arrays(
    speeds: np.ndarray,
    start: dt.datetime,
    interval_minutes: int = 5,
    target_index: int | None = None,
    temperature: np.ndarray | None = None,
    precipitation: np.ndarray | None = None,
    events: np.ndarray | None = None,
    free_flow_kmh: float | None = None,
    holidays: frozenset[dt.date] = KOREAN_HOLIDAYS_2018,
) -> TrafficSeries:
    """Build a TrafficSeries from raw detector data.

    Parameters
    ----------
    speeds:
        (num_segments, T) speed matrix in km/h — the only mandatory data.
    start:
        Timestamp of the first column.
    target_index:
        Which row is the studied road (middle row by default).
    temperature, precipitation, events:
        Optional channels; filled with 20 deg C / 0 mm / no events when a
        deployment has no weather or incident feed.
    free_flow_kmh:
        Free-flow speed for the synthesised corridor metadata; defaults
        to the 95th percentile of the observed speeds.
    holidays:
        Holiday calendar used for the day-type bits.
    """
    speeds = np.asarray(speeds, dtype=np.float64)
    if speeds.ndim != 2:
        raise ValueError("speeds must be a (num_segments, T) matrix")
    num_segments, total = speeds.shape
    if target_index is None:
        target_index = num_segments // 2

    if free_flow_kmh is None:
        free_flow_kmh = float(np.percentile(speeds, 95))
    free_flow_kmh = float(np.clip(free_flow_kmh, 41.0, 129.0))
    segments = tuple(
        RoadSegment(
            segment_id=i,
            name=f"user-{i:02d}",
            length_km=2.0,
            free_flow_kmh=free_flow_kmh,
            capacity_vph=4000.0,
        )
        for i in range(num_segments)
    )
    corridor = Corridor(segments=segments, target_index=target_index)

    delta = dt.timedelta(minutes=interval_minutes)
    timestamps = [start + i * delta for i in range(total)]
    hours = np.array([t.hour for t in timestamps], dtype=np.float64)
    day_types = np.stack(
        [day_type_flags(t.date(), holidays).as_array() for t in timestamps]
    )

    def _channel(values, default, shape):
        if values is None:
            return np.full(shape, default, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != shape:
            raise ValueError(f"channel shape {values.shape} does not match {shape}")
        return values

    return TrafficSeries(
        corridor=corridor,
        speeds=speeds,
        temperature=_channel(temperature, 20.0, (total,)),
        precipitation=_channel(precipitation, 0.0, (total,)),
        events=_channel(events, 0.0, (num_segments, total)),
        hours=hours,
        day_types=day_types,
        timestamps=timestamps,
        interval_minutes=interval_minutes,
    )
