"""The corridor speed-field simulator.

Produces the synthetic stand-in for the Hyundai Motor Company dataset:
five-minute speeds on a linear expressway corridor, together with the
weather, event and calendar channels APOTS consumes.

The generative story, per timestep and segment:

1. **Demand** follows a double-peaked daily profile (morning/evening rush
   on weekdays, flatter and lighter on weekends/holidays) with slowly
   varying AR(1) noise.  Rain adds a little demand (slower, denser flow).
2. **Congestion law** maps demand to speed through a smooth
   fundamental-diagram-like curve: near free flow below the knee, rapidly
   collapsing above it.  This produces the sudden rush-hour drops of
   Fig 1a.
3. **Weather** multiplies speed down with rain intensity (Fig 1b).
4. **Incidents** impose severity factors with recovery ramps and a
   damped, delayed upstream shockwave (Fig 1c).
5. **Spatial coupling** smooths each segment toward its neighbours, and
   AR(1) measurement noise is added before clipping to physical limits.
"""

from __future__ import annotations

import numpy as np

from .calendar import day_type_flags, is_weekend, timeline
from .incidents import incident_masks, sample_incidents
from .types import Corridor, SimulationConfig, TrafficSeries
from .weather import WeatherModel

__all__ = ["TrafficSimulator", "simulate", "demand_profile", "congestion_speed_factor"]


def demand_profile(
    cfg: SimulationConfig, hour_fraction: np.ndarray, weekday: bool, holiday: bool
) -> np.ndarray:
    """Deterministic demand fraction of capacity for given clock times.

    Weekdays show two sharp rush-hour peaks; weekends and holidays a
    single broad midday bulge at lower level.  Module-level so the
    network engine (:mod:`repro.network.waves`) applies the identical
    demand law; :meth:`TrafficSimulator.demand_profile` delegates here.
    """
    base = np.full_like(hour_fraction, cfg.base_demand)
    # Overnight lull.
    night = np.exp(-0.5 * ((hour_fraction - 3.5) / 2.0) ** 2)
    base = base * (1.0 - 0.55 * night)
    if weekday and not holiday:
        for peak_hour in (cfg.morning_peak_hour, cfg.evening_peak_hour):
            bump = np.exp(-0.5 * ((hour_fraction - peak_hour) / cfg.peak_width_hours) ** 2)
            base = base + (cfg.peak_demand - cfg.base_demand) * bump
    else:
        scale = cfg.holiday_demand_scale if holiday else cfg.weekend_demand_scale
        midday = np.exp(-0.5 * ((hour_fraction - 13.0) / 3.5) ** 2)
        base = scale * (base + 0.42 * midday)
    return np.clip(base, 0.02, 1.15)


def congestion_speed_factor(cfg: SimulationConfig, demand: np.ndarray) -> np.ndarray:
    """Map demand fraction to a multiplicative speed factor in (0, 1].

    Below the knee traffic flows near free speed; above it the factor
    collapses steeply (the source of abrupt rush-hour decelerations).
    Shared by the corridor and network engines.
    """
    ratio = np.maximum(demand, 0.0) / cfg.congestion_knee
    return 1.0 / (1.0 + ratio**cfg.congestion_gamma * 0.9)


class TrafficSimulator:
    """Generates a :class:`TrafficSeries` from a config and corridor."""

    def __init__(self, config: SimulationConfig | None = None, corridor: Corridor | None = None):
        self.config = config if config is not None else SimulationConfig()
        rng = np.random.default_rng(self.config.seed)
        self.corridor = corridor if corridor is not None else Corridor.gyeongbu(rng=rng)

    # ------------------------------------------------------------------
    # Demand profile
    # ------------------------------------------------------------------
    def demand_profile(self, hour_fraction: np.ndarray, weekday: bool, holiday: bool) -> np.ndarray:
        """Deterministic demand fraction of capacity for given clock times.

        Delegates to the module-level :func:`demand_profile` (shared
        with the network engine).
        """
        return demand_profile(self.config, hour_fraction, weekday=weekday, holiday=holiday)

    def congestion_speed_factor(self, demand: np.ndarray) -> np.ndarray:
        """Map demand fraction to a multiplicative speed factor in (0, 1].

        Delegates to the module-level :func:`congestion_speed_factor`
        (shared with the network engine).
        """
        return congestion_speed_factor(self.config, demand)

    def _flash_congestion(
        self,
        demand: np.ndarray,
        num_segments: int,
        total: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sudden short slowdowns with instant onset and release.

        Strikes only while demand is above ``flash_demand_threshold``
        (dense traffic is where stop-and-go waves form).  The sharp edges
        of these episodes are the dominant source of the abrupt
        acceleration/deceleration samples the paper evaluates on.
        """
        cfg = self.config
        factor = np.ones((num_segments, total))
        expected = cfg.flash_rate_per_day * cfg.num_days
        count = rng.poisson(expected)
        dense_steps = np.flatnonzero(demand >= cfg.flash_demand_threshold)
        if dense_steps.size == 0 or count == 0:
            return factor
        starts = rng.choice(dense_steps, size=count)
        for start in starts:
            if rng.random() < cfg.flash_target_bias:
                seg = self.corridor.target_index
            else:
                seg = int(rng.integers(0, num_segments))
            duration = int(
                rng.integers(cfg.flash_duration_steps_low, cfg.flash_duration_steps_high + 1)
            )
            severity = float(rng.uniform(cfg.flash_severity_low, cfg.flash_severity_high))
            stop = min(start + duration, total)
            factor[seg, start:stop] = np.minimum(factor[seg, start:stop], severity)
            # Mild spillback to the immediate upstream neighbour.
            if seg - 1 >= 0 and start + 1 < total:
                neighbour_stop = min(stop + 1, total)
                damped = 1.0 - 0.45 * (1.0 - severity)
                factor[seg - 1, start + 1 : neighbour_stop] = np.minimum(
                    factor[seg - 1, start + 1 : neighbour_stop], damped
                )
        return factor

    # ------------------------------------------------------------------
    def run(self) -> TrafficSeries:
        """Generate the full speed field and auxiliary channels."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)
        stamps = timeline(cfg.start_date, cfg.num_days, cfg.interval_minutes)
        total = len(stamps)
        num_segments = len(self.corridor)

        # Calendar channels.
        hours = np.array([s.hour for s in stamps], dtype=np.float64)
        hour_fraction = np.array([s.hour + s.minute / 60.0 for s in stamps])
        day_types = np.empty((total, 4))
        weekday_mask = np.empty(total, dtype=bool)
        holiday_mask = np.empty(total, dtype=bool)
        steps_per_day = cfg.steps_per_day
        for day_index in range(cfg.num_days):
            date = stamps[day_index * steps_per_day].date()
            flags = day_type_flags(date, cfg.holidays)
            sl = slice(day_index * steps_per_day, (day_index + 1) * steps_per_day)
            day_types[sl] = flags.as_array()
            weekday_mask[sl] = date.weekday() < 5 and not flags.holiday
            holiday_mask[sl] = flags.holiday or is_weekend(date)

        # Weather.
        weather = WeatherModel(interval_minutes=cfg.interval_minutes)
        temperature, precipitation = weather.generate(stamps, rng)

        # Demand per timestep (same for all segments up to noise).
        demand = np.empty(total)
        for day_index in range(cfg.num_days):
            sl = slice(day_index * steps_per_day, (day_index + 1) * steps_per_day)
            weekday = bool(weekday_mask[sl][0])
            holiday = bool(holiday_mask[sl][0]) and not is_weekend(
                stamps[day_index * steps_per_day].date()
            )
            is_off = not weekday
            demand[sl] = self.demand_profile(hour_fraction[sl], weekday=not is_off, holiday=holiday)

        # Rain adds demand-side friction.
        rain_intensity = np.clip(precipitation / 1.0, 0.0, 1.0)
        demand = demand + cfg.rain_demand_boost * rain_intensity

        # AR(1) demand noise shared across the corridor (regional fluctuation).
        noise = np.empty(total)
        level = 0.0
        for i in range(total):
            level = cfg.demand_noise_rho * level + rng.normal(0.0, cfg.demand_noise_std)
            noise[i] = level
        demand = np.clip(demand + noise, 0.02, 1.2)

        # Per-segment demand variation (on/off-ramps between segments).
        segment_bias = rng.normal(0.0, 0.03, size=num_segments)

        # Incidents.
        incidents = sample_incidents(cfg, num_segments, rng, self.corridor.target_index)
        incident_factor, event_flags = incident_masks(
            incidents,
            num_segments,
            total,
            upstream_decay=cfg.upstream_propagation_decay,
            delay_steps=cfg.propagation_delay_steps,
        )

        # Rain speed factor: heavy rain multiplies speed toward rain_speed_factor.
        rain_factor = 1.0 - (1.0 - cfg.rain_speed_factor) * rain_intensity

        # Flash congestion: sudden short slowdowns that release instantly.
        flash_factor = self._flash_congestion(demand, num_segments, total, rng)

        # Assemble the speed field.
        free_flow = np.array([s.free_flow_kmh for s in self.corridor.segments])
        speeds = np.empty((num_segments, total))
        for seg in range(num_segments):
            seg_demand = np.clip(demand + segment_bias[seg], 0.02, 1.2)
            factor = self.congestion_speed_factor(seg_demand)
            speeds[seg] = (
                free_flow[seg] * factor * rain_factor * incident_factor[seg] * flash_factor[seg]
            )

        # Spatial smoothing: each segment pulled toward neighbours (queues leak).
        smoothed = speeds.copy()
        for seg in range(num_segments):
            neighbours = [s for s in (seg - 1, seg + 1) if 0 <= s < num_segments]
            mean_neighbour = np.mean([speeds[s] for s in neighbours], axis=0)
            smoothed[seg] = 0.82 * speeds[seg] + 0.18 * mean_neighbour
        speeds = smoothed

        # AR(1) measurement noise per segment.
        for seg in range(num_segments):
            level = 0.0
            ar_noise = np.empty(total)
            innovations = rng.normal(0.0, cfg.speed_noise_std, size=total)
            for i in range(total):
                level = cfg.speed_noise_rho * level + innovations[i]
                ar_noise[i] = level
            speeds[seg] = speeds[seg] + ar_noise

        # Mild temporal smoothing so routine 5-min steps stay well within
        # +-30 %; genuine shocks (flash congestion, accident onsets) keep
        # most of their amplitude (matching the paper's reported maximum).
        kernel = np.array([0.08, 0.84, 0.08])
        for seg in range(num_segments):
            padded = np.pad(speeds[seg], 1, mode="edge")
            speeds[seg] = np.convolve(padded, kernel, mode="valid")

        speeds = np.clip(speeds, cfg.min_speed_kmh, cfg.max_speed_kmh)

        return TrafficSeries(
            corridor=self.corridor,
            speeds=speeds,
            temperature=temperature,
            precipitation=precipitation,
            events=event_flags,
            hours=hours,
            day_types=day_types,
            timestamps=stamps,
            interval_minutes=cfg.interval_minutes,
        )


def simulate(config: SimulationConfig | None = None, corridor: Corridor | None = None) -> TrafficSeries:
    """One-call convenience wrapper: build a simulator and run it."""
    return TrafficSimulator(config=config, corridor=corridor).run()
