"""Core datatypes for the synthetic Gyeongbu-expressway corridor.

The paper studies one *target road* section of the Gyeongbu expressway
plus ``m`` upstream and ``m`` downstream sections (Fig 3).  We model the
corridor as a linear chain of :class:`RoadSegment`; the simulator fills
in a speed field over (segments x time).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field

import numpy as np

from .calendar import KOREAN_HOLIDAYS_2018, STUDY_START

__all__ = ["RoadSegment", "Corridor", "SimulationConfig", "TrafficSeries"]


@dataclass(frozen=True)
class RoadSegment:
    """One section of the expressway corridor."""

    segment_id: int
    name: str
    length_km: float
    free_flow_kmh: float
    capacity_vph: float

    def __post_init__(self):
        if self.length_km <= 0:
            raise ValueError("segment length must be positive")
        if not 40.0 <= self.free_flow_kmh <= 130.0:
            raise ValueError("free-flow speed out of plausible expressway range")
        if self.capacity_vph <= 0:
            raise ValueError("capacity must be positive")


@dataclass(frozen=True)
class Corridor:
    """A linear chain of segments with a designated target segment.

    Segment 0 is the most upstream; traffic flows from low to high index.
    """

    segments: tuple[RoadSegment, ...]
    target_index: int

    def __post_init__(self):
        if len(self.segments) < 1:
            raise ValueError("corridor needs at least one segment")
        if not 0 <= self.target_index < len(self.segments):
            raise ValueError("target_index out of range")

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def target(self) -> RoadSegment:
        return self.segments[self.target_index]

    def adjacent_indices(self, m: int) -> list[int]:
        """Indices of [target-m, ..., target, ..., target+m] (Eq 5 order)."""
        lo = self.target_index - m
        hi = self.target_index + m
        if lo < 0 or hi >= len(self.segments):
            raise ValueError(
                f"corridor has no {m} neighbours on both sides of the target "
                f"(need indices {lo}..{hi}, have 0..{len(self.segments) - 1})"
            )
        return list(range(lo, hi + 1))

    @staticmethod
    def gyeongbu(num_segments: int = 9, rng: np.random.Generator | None = None) -> "Corridor":
        """Build a Gyeongbu-style corridor with mild heterogeneity.

        Free-flow speeds around 100 km/h with per-segment variation, the
        target in the middle.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        segments = []
        for i in range(num_segments):
            segments.append(
                RoadSegment(
                    segment_id=i,
                    name=f"gyeongbu-{i:02d}",
                    length_km=float(rng.uniform(1.5, 4.0)),
                    free_flow_kmh=float(rng.uniform(95.0, 105.0)),
                    capacity_vph=float(rng.uniform(3600.0, 4400.0)),
                )
            )
        return Corridor(segments=tuple(segments), target_index=num_segments // 2)


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of the synthetic traffic generator.

    Defaults are calibrated so that (a) rush hours, rain and accidents
    produce visible abrupt speed changes, and (b) 5-minute relative
    speed changes stay within roughly +-30 % — the paper reports that as
    the maximum observed change and sets the abrupt threshold there.
    """

    start_date: dt.date = STUDY_START
    num_days: int = 122
    interval_minutes: int = 5
    seed: int = 2018

    # Demand model ------------------------------------------------------
    base_demand: float = 0.30  # off-peak demand as a fraction of capacity
    morning_peak_hour: float = 7.8
    evening_peak_hour: float = 18.3
    peak_demand: float = 0.95  # rush-hour demand fraction at the peak
    peak_width_hours: float = 1.4
    weekend_demand_scale: float = 0.72
    holiday_demand_scale: float = 0.62
    demand_noise_std: float = 0.035  # AR(1) innovation on demand
    demand_noise_rho: float = 0.92

    # Congestion law ----------------------------------------------------
    congestion_gamma: float = 4.0  # sharpness of the speed/demand law
    congestion_knee: float = 0.78  # demand fraction where speed collapses

    # Weather coupling --------------------------------------------------
    rain_speed_factor: float = 0.78  # multiplicative speed under heavy rain
    rain_demand_boost: float = 0.06

    # Incident coupling -------------------------------------------------
    accident_rate_per_day: float = 0.5  # corridor-wide Poisson rate
    accident_target_bias: float = 0.4  # fraction striking at/just downstream of the target
    accident_severity_low: float = 0.35  # speed multiplier range
    accident_severity_high: float = 0.60
    accident_duration_minutes_low: int = 20
    accident_duration_minutes_high: int = 70
    accident_recovery_minutes: int = 45
    construction_rate_per_day: float = 0.08
    construction_speed_factor: float = 0.75
    upstream_propagation_decay: float = 0.55  # shockwave damping per segment
    propagation_delay_steps: int = 1

    # Flash congestion: brief sudden slowdowns with instant release.  These
    # are what produce the paper's abrupt +-30 % single-step changes.
    flash_rate_per_day: float = 5.0
    flash_severity_low: float = 0.42
    flash_severity_high: float = 0.68
    flash_duration_steps_low: int = 2
    flash_duration_steps_high: int = 7
    flash_demand_threshold: float = 0.45  # only strikes when traffic is dense
    flash_target_bias: float = 0.5  # fraction of flashes hitting the target road

    # Noise and limits ---------------------------------------------------
    speed_noise_std: float = 1.3  # km/h AR(1) innovation
    speed_noise_rho: float = 0.85
    min_speed_kmh: float = 4.0
    max_speed_kmh: float = 112.0

    holidays: frozenset[dt.date] = KOREAN_HOLIDAYS_2018

    def __post_init__(self):
        if self.num_days <= 0:
            raise ValueError("num_days must be positive")
        if (24 * 60) % self.interval_minutes != 0:
            raise ValueError("interval_minutes must divide a day evenly")
        if not 0 < self.base_demand < 1:
            raise ValueError("base_demand must be a fraction of capacity in (0, 1)")
        if self.min_speed_kmh <= 0 or self.max_speed_kmh <= self.min_speed_kmh:
            raise ValueError("speed limits must satisfy 0 < min < max")

    @property
    def steps_per_day(self) -> int:
        return (24 * 60) // self.interval_minutes

    @property
    def total_steps(self) -> int:
        return self.num_days * self.steps_per_day


@dataclass
class TrafficSeries:
    """The simulator's output: aligned per-timestep arrays.

    Attributes
    ----------
    speeds:
        (num_segments, T) speed field in km/h.
    temperature, precipitation:
        (T,) weather channels (deg C, mm per interval).
    events:
        (num_segments, T) 0/1 accident-or-construction flags.
    hours:
        (T,) hour of day (0..23) per timestep.
    day_types:
        (T, 4) per-timestep [weekday, holiday, before, after] bits.
    timestamps:
        list of datetimes, length T.
    """

    corridor: Corridor
    speeds: np.ndarray
    temperature: np.ndarray
    precipitation: np.ndarray
    events: np.ndarray
    hours: np.ndarray
    day_types: np.ndarray
    timestamps: list[dt.datetime] = field(repr=False, default_factory=list)
    interval_minutes: int = 5

    def __post_init__(self):
        t = self.speeds.shape[1]
        aligned = (
            self.temperature.shape == (t,)
            and self.precipitation.shape == (t,)
            and self.events.shape == self.speeds.shape
            and self.hours.shape == (t,)
            and self.day_types.shape == (t, 4)
            and len(self.timestamps) == t
        )
        if not aligned:
            raise ValueError("TrafficSeries arrays are not aligned on the time axis")

    @property
    def num_steps(self) -> int:
        return self.speeds.shape[1]

    @property
    def num_segments(self) -> int:
        return self.speeds.shape[0]

    def target_speeds(self) -> np.ndarray:
        """Speed series of the target road, shape (T,)."""
        return self.speeds[self.corridor.target_index]

    def slice_steps(self, start: int, stop: int) -> "TrafficSeries":
        """Return a time-sliced copy (used by case-study extraction)."""
        return TrafficSeries(
            corridor=self.corridor,
            speeds=self.speeds[:, start:stop].copy(),
            temperature=self.temperature[start:stop].copy(),
            precipitation=self.precipitation[start:stop].copy(),
            events=self.events[:, start:stop].copy(),
            hours=self.hours[start:stop].copy(),
            day_types=self.day_types[start:stop].copy(),
            timestamps=list(self.timestamps[start:stop]),
            interval_minutes=self.interval_minutes,
        )
