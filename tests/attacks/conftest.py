"""Shared fixtures for the adversarial-robustness tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import APOTS
from repro.attacks import EvalSlice


@pytest.fixture(scope="session")
def victim_model(tiny_dataset, micro_preset):
    """A quickly fitted plain-F model with recorded scalers (read-only)."""
    model = APOTS(predictor="F", adversarial=False, preset=micro_preset, seed=0)
    return model.fit(tiny_dataset)


@pytest.fixture(scope="session")
def eval_slice(tiny_dataset) -> EvalSlice:
    """A small test-split slice in the harness's array form (read-only)."""
    indices = tiny_dataset.subset("test")[:32]
    batch = tiny_dataset.batch(indices)
    return EvalSlice(
        images=batch.images,
        day_types=batch.day_types,
        targets_scaled=batch.targets,
        targets_kmh=tiny_dataset.features.targets_kmh[indices],
        last_input_kmh=tiny_dataset.features.last_input_kmh[indices],
    )


@pytest.fixture
def small_batch(eval_slice):
    """A copy of the first few samples, safe to mutate."""
    return (
        np.array(eval_slice.images[:6]),
        np.array(eval_slice.day_types[:6]),
        np.array(eval_slice.targets_scaled[:6]),
    )
