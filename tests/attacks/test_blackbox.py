"""SPSA / random-noise attacks that only query a predict callable."""

import numpy as np
import pytest

from repro.attacks import PlausibilityBox, RandomNoiseAttack, SPSAAttack


@pytest.fixture
def box():
    return PlausibilityBox(epsilon_kmh=5.0)


def squared_error(model, images, day_types, targets):
    flat = np.concatenate([images.reshape(images.shape[0], -1), day_types], axis=1)
    predictions = model.predictor.predict(images, day_types, flat)
    return float(np.sum((predictions - targets) ** 2))


class TestSPSA:
    def test_increases_loss_with_queries_only(self, victim_model, small_batch, box):
        images, day_types, targets = small_batch
        calls = {"n": 0}

        def oracle(images, day_types, flat):
            # The attack sees nothing but this callable — no weights,
            # no gradients, exactly the deployed-service threat model.
            calls["n"] += 1
            return victim_model.predictor.predict(images, day_types, flat)

        attack = SPSAAttack(oracle, victim_model.scalers,
                            victim_model.features.num_roads, box,
                            steps=4, samples=4, seed=1)
        result = attack.perturb(images, day_types, targets)
        clean = squared_error(victim_model, images, day_types, targets)
        attacked = squared_error(victim_model, result.images, day_types, targets)
        assert attacked > clean
        assert result.max_abs_delta_kmh <= box.epsilon_kmh + 1e-9
        assert calls["n"] > 0

    def test_validates_parameters(self, victim_model, box):
        with pytest.raises(ValueError, match="steps"):
            SPSAAttack(victim_model.predictor.predict, victim_model.scalers,
                       victim_model.features.num_roads, box, steps=0)
        with pytest.raises(ValueError, match="probe"):
            SPSAAttack(victim_model.predictor.predict, victim_model.scalers,
                       victim_model.features.num_roads, box, probe_kmh=0.0)


class TestRandomNoise:
    def test_never_worse_than_clean(self, victim_model, small_batch, box):
        images, day_types, targets = small_batch
        attack = RandomNoiseAttack(victim_model.predictor.predict, victim_model.scalers,
                                   victim_model.features.num_roads, box, tries=6, seed=2)
        result = attack.perturb(images, day_types, targets)
        clean = squared_error(victim_model, images, day_types, targets)
        attacked = squared_error(victim_model, result.images, day_types, targets)
        # Best-of-k keeps the clean window when no noise beats it, so
        # the summed loss can never decrease.
        assert attacked >= clean
        assert result.max_abs_delta_kmh <= box.epsilon_kmh + 1e-9

    def test_best_so_far_losses_non_decreasing(self, victim_model, small_batch, box):
        images, day_types, targets = small_batch
        attack = RandomNoiseAttack(victim_model.predictor.predict, victim_model.scalers,
                                   victim_model.features.num_roads, box, tries=6, seed=2)
        result = attack.perturb(images, day_types, targets)
        assert result.losses == sorted(result.losses)
