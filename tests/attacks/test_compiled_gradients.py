"""Bitwise parity of the tape-replayed attack gradient path.

``compile=True`` on the white-box attacks swaps :func:`input_gradient`
for :class:`CompiledInputGradient`; the replayed perturbations must be
bitwise-identical to the eager ones — an attack that drifts by one ULP
is a different attack.
"""

import numpy as np

from repro.attacks import FGSMAttack, PGDAttack, PlausibilityBox
from repro.attacks.gradients import CompiledInputGradient, input_gradient
from repro.core import build_predictor, table1_spec


def attack_result_bytes(result):
    return (
        result.images.tobytes(),
        result.speeds_kmh.tobytes(),
        result.reference_kmh.tobytes(),
        tuple(result.losses),
    )


class TestAttackParity:
    def test_fgsm_compiled_matches_eager(self, victim_model, small_batch):
        images, day_types, targets = small_batch
        box = PlausibilityBox(epsilon_kmh=5.0)
        eager = FGSMAttack(victim_model.predictor, victim_model.scalers, box)
        compiled = FGSMAttack(
            victim_model.predictor, victim_model.scalers, box, compile=True
        )
        reference = attack_result_bytes(eager.perturb(images, day_types, targets))
        for _ in range(3):  # record, validate, replay
            got = attack_result_bytes(compiled.perturb(images, day_types, targets))
            assert got == reference
        assert compiled.gradient_fn._targeted.stats["replay"] > 0

    def test_pgd_compiled_matches_eager(self, victim_model, small_batch):
        images, day_types, targets = small_batch
        box = PlausibilityBox(epsilon_kmh=5.0, max_step_kmh=3.0)
        eager = PGDAttack(
            victim_model.predictor, victim_model.scalers, box, steps=4, seed=11
        )
        compiled = PGDAttack(
            victim_model.predictor, victim_model.scalers, box, steps=4, seed=11,
            compile=True,
        )
        reference = attack_result_bytes(eager.perturb(images, day_types, targets))
        got = attack_result_bytes(compiled.perturb(images, day_types, targets))
        assert got == reference
        # 4 PGD steps on one shape: trusted replay from step 3 on.
        assert compiled.gradient_fn._targeted.stats["replay"] > 0

    def test_compiled_gradient_matches_eager_function(self, victim_model, small_batch):
        images, day_types, targets = small_batch
        fn = CompiledInputGradient(victim_model.predictor)
        for use_targets in (targets, None):
            reference = input_gradient(
                victim_model.predictor, images, day_types, use_targets
            )
            for _ in range(3):
                got = fn(victim_model.predictor, images, day_types, use_targets)
                assert got.grad_images.tobytes() == reference.grad_images.tobytes()
                assert got.predictions.tobytes() == reference.predictions.tobytes()
                assert got.loss == reference.loss

    def test_compiled_gradient_foreign_predictor_falls_back(
        self, victim_model, tiny_dataset, small_batch
    ):
        images, day_types, targets = small_batch
        fn = CompiledInputGradient(victim_model.predictor)
        other = build_predictor(
            "F", tiny_dataset.config, spec=table1_spec("F", 0.05),
            rng=np.random.default_rng(9),
        )
        got = fn(other, images, day_types, targets)
        reference = input_gradient(other, images, day_types, targets)
        assert got.grad_images.tobytes() == reference.grad_images.tobytes()
        # nothing was compiled for the foreign model
        assert fn._targeted.states() == {}
