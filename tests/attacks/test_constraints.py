"""PlausibilityBox: the feasible set every attack projects onto."""

import numpy as np
import pytest

from repro.attacks import MAX_PLAUSIBLE_SPEED_KMH, PlausibilityBox


@pytest.fixture
def reference(rng):
    return rng.uniform(40.0, 100.0, size=(3, 5, 8))


class TestProjection:
    def test_identity_inside_box(self, reference):
        box = PlausibilityBox(epsilon_kmh=5.0)
        assert np.allclose(box.project(reference, reference), reference)

    def test_epsilon_budget_enforced(self, reference, rng):
        box = PlausibilityBox(epsilon_kmh=3.0, max_step_kmh=None)
        wild = reference + rng.uniform(-50.0, 50.0, size=reference.shape)
        projected = box.project(wild, reference)
        assert np.all(np.abs(projected - reference) <= 3.0 + 1e-9)

    def test_speed_range_enforced(self):
        box = PlausibilityBox(epsilon_kmh=20.0, max_step_kmh=None)
        reference = np.array([[5.0, 125.0]])
        attacked = np.array([[-10.0, 160.0]])
        projected = box.project(attacked, reference)
        assert projected[0, 0] >= 0.0
        assert projected[0, 1] <= MAX_PLAUSIBLE_SPEED_KMH

    def test_reference_outside_range_does_not_invert(self):
        # A reference above the ceiling crosses the epsilon and range
        # bounds; the projection must collapse onto the speed ceiling
        # (range wins) instead of producing an inverted interval.
        box = PlausibilityBox(epsilon_kmh=2.0, max_step_kmh=None)
        reference = np.array([[140.0, 140.0]])
        projected = box.project(reference + 1.0, reference)
        assert np.all(np.isfinite(projected))
        assert np.allclose(projected, MAX_PLAUSIBLE_SPEED_KMH)

    def test_rate_of_change_bound(self, rng):
        box = PlausibilityBox(epsilon_kmh=30.0, max_step_kmh=4.0)
        reference = np.full((2, 3, 10), 80.0)
        attacked = reference + rng.uniform(-30.0, 30.0, size=reference.shape)
        projected = box.project(attacked, reference)
        delta = projected - reference
        steps = np.abs(np.diff(delta, axis=-1))
        assert np.all(steps <= 4.0 + 1e-9)

    def test_rate_bound_none_allows_jumps(self):
        box = PlausibilityBox(epsilon_kmh=30.0, max_step_kmh=None)
        reference = np.full((1, 1, 4), 80.0)
        attacked = reference + np.array([30.0, -30.0, 30.0, -30.0])
        assert np.allclose(box.project(attacked, reference), attacked)

    def test_inputs_not_modified(self, reference):
        box = PlausibilityBox(epsilon_kmh=1.0)
        attacked = reference + 10.0
        before = attacked.copy()
        box.project(attacked, reference)
        assert np.array_equal(attacked, before)


class TestContains:
    def test_projected_point_is_contained(self, reference, rng):
        box = PlausibilityBox(epsilon_kmh=5.0, max_step_kmh=3.0)
        wild = reference + rng.uniform(-20.0, 20.0, size=reference.shape)
        projected = box.project(wild, reference)
        assert box.contains(projected, reference)

    def test_violating_point_is_not_contained(self, reference):
        box = PlausibilityBox(epsilon_kmh=5.0)
        assert not box.contains(reference + 6.0, reference)


class TestValidation:
    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError, match="epsilon"):
            PlausibilityBox(epsilon_kmh=-1.0)

    def test_inverted_speed_range_rejected(self):
        with pytest.raises(ValueError, match="max_speed"):
            PlausibilityBox(epsilon_kmh=1.0, min_speed_kmh=50.0, max_speed_kmh=40.0)

    def test_non_positive_step_rejected(self):
        with pytest.raises(ValueError, match="max_step"):
            PlausibilityBox(epsilon_kmh=1.0, max_step_kmh=0.0)
