"""PerturbationGate screening logic (no serving dependency)."""

import pytest

from repro.attacks import GateConfig, PerturbationGate


@pytest.fixture
def gate():
    return PerturbationGate(GateConfig(max_jump_kmh=10.0, quarantine_ticks=3))


class TestScreening:
    def test_smooth_stream_passes(self, gate):
        for step, speed in enumerate([80.0, 82.0, 79.0, 85.0]):
            decision = gate.screen(0, step, speed)
            assert not decision.suspect
        assert gate.snapshot()["hits"] == 0

    def test_out_of_range_flagged(self, gate):
        assert gate.screen(0, 0, -3.0).reason == "out_of_range"
        assert gate.screen(1, 0, 150.0).reason == "out_of_range"

    def test_implausible_jump_flagged(self, gate):
        gate.screen(0, 0, 80.0)
        decision = gate.screen(0, 1, 95.0)
        assert decision.suspect and decision.reason == "implausible_jump"

    def test_first_reading_never_a_jump(self, gate):
        # No history yet: nothing to jump from.
        assert not gate.screen(0, 0, 120.0).suspect

    def test_segments_screened_independently(self, gate):
        gate.screen(0, 0, 80.0)
        gate.screen(1, 0, 30.0)
        assert not gate.screen(1, 1, 32.0).suspect
        assert gate.screen(0, 1, 95.0).suspect


class TestQuarantine:
    def test_quarantine_expires(self, gate):
        gate.screen(0, 0, 80.0)
        gate.screen(0, 1, 95.0)  # hit -> quarantined until step 4
        assert gate.is_quarantined(0, step=1)
        assert gate.is_quarantined(0, step=3)
        assert not gate.is_quarantined(0, step=4)

    def test_default_step_is_last_seen(self, gate):
        gate.screen(0, 0, 80.0)
        gate.screen(0, 1, 95.0)
        assert gate.is_quarantined(0)
        gate.screen(0, 2, 96.0)
        gate.screen(0, 3, 95.5)
        gate.screen(0, 4, 96.0)
        assert not gate.is_quarantined(0)

    def test_safe_speed_is_last_trusted(self, gate):
        gate.screen(0, 0, 80.0)
        gate.screen(0, 1, 95.0)  # suspect; trusted stays 80
        decision = gate.screen(0, 2, 96.0)
        assert decision.safe_speed_kmh == 80.0
        # Readings during quarantine never become trusted.
        assert gate.safe_speed(0) == 80.0

    def test_unknown_segment_not_quarantined(self, gate):
        assert not gate.is_quarantined(999)
        assert gate.safe_speed(999) is None


class TestBookkeeping:
    def test_snapshot_counts(self, gate):
        gate.screen(0, 0, 80.0)
        gate.screen(0, 1, 95.0)
        gate.screen(1, 0, 200.0)
        snap = gate.snapshot()
        assert snap["checks"] == 3
        assert snap["hits"] == 2
        assert snap["hits_by_reason"] == {"implausible_jump": 1, "out_of_range": 1}
        assert snap["quarantined_segments"] == [0, 1]

    def test_reset(self, gate):
        gate.screen(0, 0, 200.0)
        gate.reset()
        snap = gate.snapshot()
        assert snap["checks"] == 0 and snap["hits"] == 0
        assert not gate.is_quarantined(0)


class TestConfigValidation:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError, match="max_speed"):
            GateConfig(min_speed_kmh=100.0, max_speed_kmh=50.0)
        with pytest.raises(ValueError, match="max_jump"):
            GateConfig(max_jump_kmh=0.0)
        with pytest.raises(ValueError, match="quarantine"):
            GateConfig(quarantine_ticks=0)
