"""PerturbationGate wired into a live ForecastService."""

import dataclasses

import pytest

from repro.attacks import GateConfig, PerturbationGate
from repro.serving import ForecastService

from ..serving.conftest import observation_at, replay


@pytest.fixture
def gated_service(victim_model, tiny_series):
    gate = PerturbationGate(GateConfig(max_jump_kmh=12.0, quarantine_ticks=3))
    service = ForecastService(victim_model, num_segments=tiny_series.num_segments, gate=gate)
    replay(service, tiny_series, range(15))
    return service


def ingest_tick(service, series, step: int, poisoned: dict[int, float] | None = None):
    """Feed one full corridor tick, bumping selected segments by km/h."""
    poisoned = poisoned or {}
    for segment in range(series.num_segments):
        obs = observation_at(series, segment, step)
        if segment in poisoned:
            obs = dataclasses.replace(obs, speed_kmh=obs.speed_kmh + poisoned[segment])
        service.ingest(obs)


class TestGatedIngestion:
    def test_clean_stream_counts_checks(self, gated_service, tiny_series):
        snap = gated_service.snapshot()
        assert snap["gate"]["checks"] == 15 * tiny_series.num_segments
        assert snap["counters"]["gate_checks"] == 15 * tiny_series.num_segments
        assert snap["counters"].get("gate_hits", 0) == snap["gate"]["hits"]

    def test_poisoned_reading_hits_gate(self, gated_service, tiny_series):
        target = tiny_series.corridor.target_index
        before = gated_service.snapshot()["gate"]["hits"]
        ingest_tick(gated_service, tiny_series, 15, poisoned={target: -40.0})
        snap = gated_service.snapshot()
        assert snap["gate"]["hits"] == before + 1
        assert snap["counters"]["gate_hits"] >= 1


class TestGatedForecasts:
    def test_quarantined_target_degrades_to_trusted_speed(self, gated_service, tiny_series):
        target = tiny_series.corridor.target_index
        trusted = gated_service.gate.safe_speed(target)
        ingest_tick(gated_service, tiny_series, 15, poisoned={target: -40.0})
        forecast = gated_service.predict(target)
        assert forecast.degraded
        assert forecast.degraded_reason == "perturbation gate quarantine"
        assert forecast.source == "naive"
        # Persist the last *trusted* speed, not the poisoned reading.
        assert forecast.speed_kmh == trusted
        assert gated_service.snapshot()["counters"]["gate_degraded_forecasts"] >= 1

    def test_poisoned_neighbour_also_degrades_target(self, gated_service, tiny_series):
        # The window reads the target's m neighbours: a poisoned
        # neighbour must not be forwarded to the model either.
        target = tiny_series.corridor.target_index
        ingest_tick(gated_service, tiny_series, 15, poisoned={target - 1: -40.0})
        forecast = gated_service.predict(target)
        assert forecast.degraded
        assert forecast.degraded_reason == "perturbation gate quarantine"

    def test_forecasts_recover_after_quarantine(self, gated_service, tiny_series):
        target = tiny_series.corridor.target_index
        ingest_tick(gated_service, tiny_series, 15, poisoned={target: -40.0})
        assert gated_service.predict(target).degraded
        # The attacker sustains a constant offset: subsequent ticks
        # drift naturally, so the quarantine lapses and the model
        # serves again (this slip-through is exactly why the offline
        # sweep, not the gate, is the robustness measure).
        for step in range(16, 20):
            ingest_tick(gated_service, tiny_series, step, poisoned={target: -40.0})
        forecast = gated_service.predict(target)
        assert not forecast.degraded

    def test_predict_many_routes_quarantined_segments(self, gated_service, tiny_series):
        target = tiny_series.corridor.target_index
        ingest_tick(gated_service, tiny_series, 15, poisoned={target: -40.0})
        far = tiny_series.num_segments - 1
        forecasts = gated_service.predict_many([target, far])
        assert forecasts[0].degraded
        assert forecasts[0].degraded_reason == "perturbation gate quarantine"


class TestWithoutGate:
    def test_gateless_service_has_no_gate_surface(self, victim_model, tiny_series):
        service = ForecastService(victim_model, num_segments=tiny_series.num_segments)
        replay(service, tiny_series, range(15))
        snap = service.snapshot()
        assert "gate" not in snap
        assert not service.predict(tiny_series.corridor.target_index).degraded
