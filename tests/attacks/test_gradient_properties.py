"""Property-style certification of the attack stack.

Two randomized suites backing the adversarial-training tentpole:

* ``input_gradient`` matches central finite differences for every
  predictor body (F/C/L/H) on *randomized* window geometries — the
  fixed-shape checks in ``test_gradients.py`` can miss stride or
  reshape bugs that only bite at other alphas / neighbourhood widths;
* FGSM and PGD outputs never escape the :class:`PlausibilityBox`
  (absolute range, L-infinity budget, per-tick rate bound) under
  randomized budgets, step counts and box configurations — the
  guarantee :class:`repro.core.AdversarialAugmenter` relies on to keep
  training batches physically plausible.
"""

import numpy as np
import pytest

from repro import nn
from repro.attacks import FGSMAttack, PGDAttack, PlausibilityBox, input_gradient
from repro.attacks.constraints import MAX_PLAUSIBLE_SPEED_KMH
from repro.core.config import table1_spec
from repro.core.predictors import build_predictor
from repro.data import FeatureConfig

#: Randomized-but-pinned window geometries: (alpha, m, batch).
SHAPES = [(3, 1, 2), (5, 2, 1), (4, 1, 3)]


def _predictor_for(kind: str, config: FeatureConfig, seed: int):
    spec = table1_spec(kind, width_factor=0.05)
    predictor = build_predictor(kind, config, spec=spec, rng=np.random.default_rng(seed))
    predictor.eval()
    return predictor


def _random_inputs(config: FeatureConfig, batch: int, rng: np.random.Generator):
    images = rng.uniform(0.05, 0.95, size=(batch, config.image_rows, config.alpha))
    day_types = np.zeros((batch, 4))
    day_types[np.arange(batch), rng.integers(0, 4, size=batch)] = 1.0
    targets = rng.uniform(0.1, 0.9, size=batch)
    return images, day_types, targets


@pytest.mark.parametrize("kind", ["F", "C", "L", "H"])
@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"a{s[0]}m{s[1]}b{s[2]}")
def test_input_gradient_matches_finite_difference_on_random_shapes(kind, shape):
    alpha, m, batch = shape
    config = FeatureConfig(alpha=alpha, m=m)
    # Deterministic per-case seed (str hash is process-randomized).
    seed = ord(kind) * 1009 + alpha * 101 + m * 11 + batch
    rng = np.random.default_rng(seed)
    predictor = _predictor_for(kind, config, seed)
    images, day_types, targets = _random_inputs(config, batch, rng)

    result = input_gradient(predictor, images, day_types, targets)

    images_t = nn.Tensor(images, requires_grad=True)
    day_t = nn.Tensor(day_types)
    targets_t = nn.Tensor(targets)

    def objective():
        flat = nn.ops.concat([images_t.reshape(batch, -1), day_t], axis=1)
        residual = predictor.forward(images_t, day_t, flat) - targets_t
        return (residual * residual).sum()

    numeric = nn.numerical_gradient(objective, images_t, eps=1e-5)
    assert result.grad_images.shape == images.shape
    assert np.allclose(result.grad_images, numeric, atol=1e-4, rtol=1e-3)


#: Randomized box/attack draws per suite run (pinned generator below).
_TRIALS = 8


def _random_box(rng: np.random.Generator) -> PlausibilityBox:
    max_step = None if rng.random() < 0.3 else float(rng.uniform(1.0, 8.0))
    return PlausibilityBox(
        epsilon_kmh=float(rng.uniform(0.5, 12.0)), max_step_kmh=max_step
    )


def _assert_in_box(result, box: PlausibilityBox) -> None:
    speeds, reference = result.speeds_kmh, result.reference_kmh
    tol = 1e-9
    assert box.contains(speeds, reference)
    assert np.all(speeds >= box.min_speed_kmh - tol)
    assert np.all(speeds <= MAX_PLAUSIBLE_SPEED_KMH + tol)
    delta = speeds - reference
    assert np.max(np.abs(delta)) <= box.epsilon_kmh + tol
    if box.max_step_kmh is not None:
        steps = np.abs(np.diff(delta, axis=-1))
        assert np.max(steps) <= box.max_step_kmh + tol


class TestAttacksStayInsideTheBox:
    def test_fgsm_never_escapes(self, victim_model, small_batch):
        images, day_types, targets = small_batch
        rng = np.random.default_rng(4242)
        for _ in range(_TRIALS):
            box = _random_box(rng)
            attack = FGSMAttack(victim_model.predictor, victim_model.scalers, box)
            _assert_in_box(attack.perturb(images, day_types, targets), box)

    def test_pgd_never_escapes(self, victim_model, small_batch):
        images, day_types, targets = small_batch
        rng = np.random.default_rng(2424)
        for _ in range(_TRIALS):
            box = _random_box(rng)
            attack = PGDAttack(
                victim_model.predictor,
                victim_model.scalers,
                box,
                steps=int(rng.integers(1, 5)),
                random_start=bool(rng.random() < 0.5),
                seed=int(rng.integers(0, 2**31)),
            )
            _assert_in_box(attack.perturb(images, day_types, targets), box)

    def test_pgd_with_oversized_step_is_still_projected(self, victim_model, small_batch):
        # A step far larger than the budget stresses the projection:
        # every iterate lands outside and must be pulled back.
        images, day_types, targets = small_batch
        box = PlausibilityBox(epsilon_kmh=2.0, max_step_kmh=1.5)
        attack = PGDAttack(
            victim_model.predictor, victim_model.scalers, box,
            steps=3, step_kmh=50.0, seed=3,
        )
        _assert_in_box(attack.perturb(images, day_types, targets), box)
