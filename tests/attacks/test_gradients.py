"""Input-space gradients: finite-difference certification per body."""

import numpy as np
import pytest

from repro import nn
from repro.attacks import input_gradient
from repro.core.config import table1_spec
from repro.core.predictors import build_predictor
from repro.data import FeatureConfig

#: Small geometry so the central-difference sweep stays cheap.
SMALL = FeatureConfig(alpha=4, m=1)


def small_predictor(kind: str):
    spec = table1_spec(kind, width_factor=0.05)
    predictor = build_predictor(kind, SMALL, spec=spec, rng=np.random.default_rng(7))
    predictor.eval()
    return predictor


def small_inputs(batch: int = 2, seed: int = 11):
    rng = np.random.default_rng(seed)
    images = rng.uniform(0.1, 0.9, size=(batch, SMALL.image_rows, SMALL.alpha))
    day_types = np.zeros((batch, 4))
    day_types[:, 0] = 1.0
    targets = rng.uniform(0.2, 0.8, size=batch)
    return images, day_types, targets


@pytest.mark.parametrize("kind", ["F", "C", "L", "H"])
class TestFiniteDifference:
    def test_loss_gradient_matches_central_difference(self, kind):
        predictor = small_predictor(kind)
        images, day_types, targets = small_inputs()
        images_t = nn.Tensor(images, requires_grad=True)
        day_t = nn.Tensor(day_types)
        targets_t = nn.Tensor(targets)

        def objective():
            flat = nn.ops.concat([images_t.reshape(images.shape[0], -1), day_t], axis=1)
            residual = predictor.forward(images_t, day_t, flat) - targets_t
            return (residual * residual).sum()

        nn.check_gradients(objective, [images_t], eps=1e-5, atol=1e-4, rtol=1e-3)

    def test_input_gradient_agrees_with_numerical(self, kind):
        predictor = small_predictor(kind)
        images, day_types, targets = small_inputs(seed=23)
        result = input_gradient(predictor, images, day_types, targets)

        images_t = nn.Tensor(images, requires_grad=True)
        day_t = nn.Tensor(day_types)
        targets_t = nn.Tensor(targets)

        def objective():
            flat = nn.ops.concat([images_t.reshape(images.shape[0], -1), day_t], axis=1)
            residual = predictor.forward(images_t, day_t, flat) - targets_t
            return (residual * residual).sum()

        numeric = nn.numerical_gradient(objective, images_t, eps=1e-5)
        assert result.grad_images.shape == images.shape
        assert np.allclose(result.grad_images, numeric, atol=1e-4, rtol=1e-3)


class TestInputGradient:
    def test_raises_inside_no_grad(self):
        predictor = small_predictor("F")
        images, day_types, targets = small_inputs()
        with nn.no_grad():
            with pytest.raises(RuntimeError, match="no_grad"):
                input_gradient(predictor, images, day_types, targets)

    def test_without_targets_differentiates_prediction_sum(self):
        predictor = small_predictor("F")
        images, day_types, _ = small_inputs()
        result = input_gradient(predictor, images, day_types)
        assert result.grad_images.shape == images.shape
        assert np.isclose(result.loss, float(result.predictions.sum()))

    def test_restores_training_mode(self):
        predictor = small_predictor("F")
        predictor.train()
        images, day_types, targets = small_inputs()
        input_gradient(predictor, images, day_types, targets)
        assert predictor.training

    def test_per_sample_gradients_batch_independent(self):
        # Sum (not mean) objective: sample 0's gradient must not change
        # when more samples join the batch.
        predictor = small_predictor("F")
        images, day_types, targets = small_inputs(batch=3)
        full = input_gradient(predictor, images, day_types, targets)
        solo = input_gradient(predictor, images[:1], day_types[:1], targets[:1])
        assert np.allclose(full.grad_images[0], solo.grad_images[0], atol=1e-12)
