"""Epsilon sweeps, report structure, and run-log emission."""

import math

import numpy as np
import pytest

from repro.attacks import EvalSlice, SweepShardError, build_attack, evaluate_robustness
from repro.attacks import harness as harness_module
from repro.attacks.constraints import PlausibilityBox
from repro.obs import RunRecorder, validate_run_dir

#: The real shard function, captured at import so the fault-injection
#: wrapper below can delegate without recursing into itself once the
#: module attribute is patched.
_ORIGINAL_SWEEP = harness_module._sweep_one_epsilon


def _fail_on_epsilon_25(epsilon: float):
    """Module-level (picklable) shard wrapper that blows up at eps=2.5."""
    if epsilon == 2.5:
        raise RuntimeError("injected shard fault")
    return _ORIGINAL_SWEEP(epsilon)


class TestEvaluateRobustness:
    def test_attacked_strictly_worse_than_clean(self, victim_model, eval_slice):
        report = evaluate_robustness(
            victim_model.predictor, victim_model.scalers, eval_slice,
            attack_name="fgsm", epsilons_kmh=[5.0],
        )
        result = report.results[0]
        assert result.attacked["whole"]["mae"] > result.clean["whole"]["mae"]
        assert result.num_samples == eval_slice.images.shape[0]

    def test_degradation_grows_with_epsilon(self, victim_model, eval_slice):
        report = evaluate_robustness(
            victim_model.predictor, victim_model.scalers, eval_slice,
            attack_name="fgsm", epsilons_kmh=[1.0, 5.0],
        )
        small, large = report.results
        assert large.degradation() > small.degradation()

    def test_emits_schema_valid_run_log(self, victim_model, eval_slice, tmp_path):
        with RunRecorder(tmp_path / "run") as recorder:
            evaluate_robustness(
                victim_model.predictor, victim_model.scalers, eval_slice,
                attack_name="pgd", epsilons_kmh=[2.0], recorder=recorder,
            )
        assert validate_run_dir(tmp_path / "run") == []
        lines = (tmp_path / "run" / "events.jsonl").read_text().splitlines()
        assert any('"robustness_summary"' in line for line in lines)
        assert any('"attack_step"' in line for line in lines)

    def test_report_renders(self, victim_model, eval_slice):
        report = evaluate_robustness(
            victim_model.predictor, victim_model.scalers, eval_slice,
            attack_name="random", epsilons_kmh=[3.0],
        )
        text = report.render()
        assert "random" in text and "whole" in text
        assert report.results[0].to_dict()["epsilon_kmh"] == 3.0

    def test_empty_regimes_are_nan_not_error(self, victim_model, eval_slice):
        # The tiny slice has no abrupt-change samples; cells must be NaN
        # (the APOTS.evaluate convention), not raise on empty arrays.
        report = evaluate_robustness(
            victim_model.predictor, victim_model.scalers, eval_slice,
            attack_name="fgsm", epsilons_kmh=[1.0],
        )
        result = report.results[0]
        if result.regime_counts["abrupt_acc"] == 0:
            assert math.isnan(result.attacked["abrupt_acc"]["mae"])


class TestEvalSlice:
    def test_misaligned_arrays_rejected(self, eval_slice):
        with pytest.raises(ValueError, match="aligned"):
            EvalSlice(eval_slice.images, eval_slice.day_types[:-1],
                      eval_slice.targets_scaled, eval_slice.targets_kmh,
                      eval_slice.last_input_kmh)

    def test_take_limits_samples(self, eval_slice):
        taken = eval_slice.take(4)
        assert taken.images.shape[0] == 4
        assert eval_slice.take(None) is eval_slice
        assert eval_slice.take(10_000) is eval_slice


class TestBuildAttack:
    def test_unknown_attack_rejected(self, victim_model):
        box = PlausibilityBox(epsilon_kmh=1.0)
        with pytest.raises(ValueError, match="unknown attack"):
            build_attack("zero-day", victim_model.predictor, victim_model.scalers, box)

    @pytest.mark.parametrize("name", ["fgsm", "pgd", "spsa", "random"])
    def test_all_registered_attacks_construct(self, victim_model, name):
        box = PlausibilityBox(epsilon_kmh=1.0)
        attack = build_attack(name, victim_model.predictor, victim_model.scalers, box)
        assert attack.name == name


class TestEvaluateRobustnessWorkers:
    """Sharding the epsilon grid must not change any reported number."""

    def test_parallel_matches_serial(self, victim_model, eval_slice):
        kwargs = dict(attack_name="pgd", epsilons_kmh=[1.0, 2.5, 5.0], seed=0, steps=5)
        serial = evaluate_robustness(
            victim_model.predictor, victim_model.scalers, eval_slice,
            workers=1, **kwargs,
        )
        parallel = evaluate_robustness(
            victim_model.predictor, victim_model.scalers, eval_slice,
            workers=3, **kwargs,
        )
        assert serial.render() == parallel.render()
        for ours, theirs in zip(serial.results, parallel.results):
            assert ours.epsilon_kmh == theirs.epsilon_kmh
            assert ours.max_abs_delta_kmh == theirs.max_abs_delta_kmh
            for regime, metrics in ours.attacked.items():
                for metric, value in metrics.items():
                    other = theirs.attacked[regime][metric]
                    # Empty regimes are NaN on both sides; NaN != NaN.
                    assert value == other or (math.isnan(value) and math.isnan(other))

    def test_parallel_emits_summaries_in_grid_order(
        self, victim_model, eval_slice, tmp_path
    ):
        import json

        with RunRecorder(tmp_path / "run") as recorder:
            evaluate_robustness(
                victim_model.predictor, victim_model.scalers, eval_slice,
                attack_name="fgsm", epsilons_kmh=[1.0, 5.0], recorder=recorder,
                workers=2,
            )
        assert validate_run_dir(tmp_path / "run") == []
        lines = (tmp_path / "run" / "events.jsonl").read_text().splitlines()
        epsilons = [
            json.loads(line)["epsilon"]
            for line in lines
            if '"robustness_summary"' in line
        ]
        assert epsilons == [1.0, 5.0]

    def test_shard_failure_carries_epsilon_context(
        self, victim_model, eval_slice, monkeypatch
    ):
        # A worker exception used to surface as a bare "task 1 failed";
        # the harness must instead name the attack and the grid point.
        monkeypatch.setattr(harness_module, "_sweep_one_epsilon", _fail_on_epsilon_25)
        with pytest.raises(SweepShardError, match=r"'fgsm' at epsilon=2\.5") as excinfo:
            evaluate_robustness(
                victim_model.predictor, victim_model.scalers, eval_slice,
                attack_name="fgsm", epsilons_kmh=[1.0, 2.5, 5.0], workers=2,
            )
        error = excinfo.value
        assert error.attack == "fgsm"
        assert error.epsilon_kmh == 2.5
        assert error.failure.index == 1
        assert "injected shard fault" in error.failure.detail
        assert error.__cause__ is error.failure

    def test_healthy_shards_unaffected_by_wrapper(
        self, victim_model, eval_slice, monkeypatch
    ):
        # The injection harness itself must be transparent off the fault
        # path: a sweep avoiding eps=2.5 still matches the serial run.
        monkeypatch.setattr(harness_module, "_sweep_one_epsilon", _fail_on_epsilon_25)
        parallel = evaluate_robustness(
            victim_model.predictor, victim_model.scalers, eval_slice,
            attack_name="fgsm", epsilons_kmh=[1.0, 5.0], workers=2,
        )
        monkeypatch.undo()
        serial = evaluate_robustness(
            victim_model.predictor, victim_model.scalers, eval_slice,
            attack_name="fgsm", epsilons_kmh=[1.0, 5.0], workers=1,
        )
        assert parallel.render() == serial.render()
