"""FGSM / PGD against a fitted predictor."""

import numpy as np
import pytest

from repro.attacks import FGSMAttack, PGDAttack, PlausibilityBox, speed_rows_kmh
from repro.obs import RunRecorder


def squared_error(model, images, day_types, targets):
    flat = np.concatenate([images.reshape(images.shape[0], -1), day_types], axis=1)
    predictions = model.predictor.predict(images, day_types, flat)
    return float(np.sum((predictions - targets) ** 2))


@pytest.fixture
def box():
    return PlausibilityBox(epsilon_kmh=5.0)


class TestFGSM:
    def test_increases_loss_and_respects_budget(self, victim_model, small_batch, box):
        images, day_types, targets = small_batch
        attack = FGSMAttack(victim_model.predictor, victim_model.scalers, box)
        result = attack.perturb(images, day_types, targets)
        clean = squared_error(victim_model, images, day_types, targets)
        attacked = squared_error(victim_model, result.images, day_types, targets)
        assert attacked > clean
        assert result.max_abs_delta_kmh <= box.epsilon_kmh + 1e-9

    def test_non_speed_rows_untouched(self, victim_model, small_batch, box):
        images, day_types, targets = small_batch
        num_roads = victim_model.features.num_roads
        attack = FGSMAttack(victim_model.predictor, victim_model.scalers, box)
        result = attack.perturb(images, day_types, targets)
        assert np.array_equal(result.images[:, num_roads:, :], images[:, num_roads:, :])

    def test_rejects_missing_scalers(self, victim_model, box):
        with pytest.raises(ValueError, match="scalers"):
            FGSMAttack(victim_model.predictor, None, box)


class TestPGD:
    def test_increases_loss_and_respects_budget(self, victim_model, small_batch, box):
        images, day_types, targets = small_batch
        attack = PGDAttack(victim_model.predictor, victim_model.scalers, box, steps=5)
        result = attack.perturb(images, day_types, targets)
        clean = squared_error(victim_model, images, day_types, targets)
        attacked = squared_error(victim_model, result.images, day_types, targets)
        assert attacked > clean
        assert result.max_abs_delta_kmh <= box.epsilon_kmh + 1e-9
        assert len(result.losses) == 5

    def test_projection_enforces_plausibility(self, victim_model, small_batch):
        images, day_types, targets = small_batch
        box = PlausibilityBox(epsilon_kmh=20.0, max_step_kmh=3.0)
        attack = PGDAttack(victim_model.predictor, victim_model.scalers, box, steps=3)
        result = attack.perturb(images, day_types, targets)
        reference = speed_rows_kmh(images, victim_model.scalers,
                                   victim_model.features.num_roads)
        assert box.contains(result.speeds_kmh, reference, tol=1e-6)

    def test_deterministic_under_seed(self, victim_model, small_batch, box):
        images, day_types, targets = small_batch
        first = PGDAttack(victim_model.predictor, victim_model.scalers, box,
                          steps=3, seed=4).perturb(images, day_types, targets)
        second = PGDAttack(victim_model.predictor, victim_model.scalers, box,
                           steps=3, seed=4).perturb(images, day_types, targets)
        assert np.array_equal(first.images, second.images)

    def test_records_attack_steps(self, victim_model, small_batch, box, tmp_path):
        images, day_types, targets = small_batch
        attack = PGDAttack(victim_model.predictor, victim_model.scalers, box, steps=4)
        with RunRecorder(tmp_path / "run") as recorder:
            attack.perturb(images, day_types, targets, recorder=recorder)
        lines = (tmp_path / "run" / "events.jsonl").read_text().splitlines()
        assert sum('"attack_step"' in line for line in lines) == 4
