"""Tests for the AR(p) baseline."""

import numpy as np
import pytest

from repro.baselines import ARPredictor
from repro.metrics import mape


class TestARPredictor:
    def test_beats_climatology(self, tiny_dataset):
        model = ARPredictor(order=6).fit(tiny_dataset)
        prediction = model.predict(tiny_dataset)
        truth, _ = tiny_dataset.evaluation_arrays("test")
        constant = np.full_like(truth, truth.mean())
        assert mape(prediction, truth) < mape(constant, truth)

    def test_close_to_persistence_quality(self, tiny_dataset):
        """A fitted AR(6) should do at least as well as raw persistence."""
        from repro.baselines import LastValueBaseline

        truth, _ = tiny_dataset.evaluation_arrays("test")
        ar_mape = mape(ARPredictor(order=6).fit(tiny_dataset).predict(tiny_dataset), truth)
        last_mape = mape(LastValueBaseline().fit(tiny_dataset).predict(tiny_dataset), truth)
        assert ar_mape <= last_mape * 1.1

    def test_prediction_shape(self, tiny_dataset):
        model = ARPredictor().fit(tiny_dataset)
        assert model.predict(tiny_dataset).shape == (len(tiny_dataset.split.test),)

    def test_order_validation(self):
        with pytest.raises(ValueError):
            ARPredictor(order=0)

    def test_order_exceeding_alpha(self, tiny_dataset):
        model = ARPredictor(order=99)
        with pytest.raises(ValueError, match="alpha"):
            model.fit(tiny_dataset)

    def test_predict_before_fit(self, tiny_dataset):
        with pytest.raises(RuntimeError):
            ARPredictor().predict(tiny_dataset)

    def test_coefficients_weight_recent_lags(self, tiny_dataset):
        """On an AR-like smooth series the first lag dominates."""
        model = ARPredictor(order=6).fit(tiny_dataset)
        coefficients = model._coefficients[1:]  # skip intercept
        assert abs(coefficients[0]) > abs(coefficients[-1])
