"""Tests for the cGAN baseline (the paper's named future-work comparison)."""

import numpy as np
import pytest

from repro.baselines import CGANConfig, CGANPredictor
from repro.metrics import mape


def small_config(**overrides):
    defaults = dict(
        noise_dim=4,
        generator_widths=(16, 8),
        discriminator_widths=(16, 8),
        epochs=2,
        batch_size=32,
        seed=0,
    )
    defaults.update(overrides)
    return CGANConfig(**defaults)


class TestConfig:
    def test_defaults_valid(self):
        CGANConfig()

    @pytest.mark.parametrize("overrides", [{"noise_dim": 0}, {"epochs": 0}, {"batch_size": 0}])
    def test_invalid(self, overrides):
        with pytest.raises(ValueError):
            small_config(**overrides)


class TestTraining:
    def test_fit_predict_shapes(self, tiny_dataset):
        model = CGANPredictor(small_config()).fit(tiny_dataset)
        prediction = model.predict(tiny_dataset)
        assert prediction.shape == (len(tiny_dataset.split.test),)
        assert np.all(np.isfinite(prediction))

    def test_predictions_in_kmh_range(self, tiny_dataset):
        model = CGANPredictor(small_config()).fit(tiny_dataset)
        prediction = model.predict(tiny_dataset)
        assert prediction.mean() > 5.0  # km/h scale, not [0, 1]

    def test_predict_before_fit(self, tiny_dataset):
        with pytest.raises(RuntimeError):
            CGANPredictor(small_config()).predict(tiny_dataset)

    def test_deterministic_given_seed(self, tiny_dataset):
        a = CGANPredictor(small_config()).fit(tiny_dataset).predict(tiny_dataset)
        b = CGANPredictor(small_config()).fit(tiny_dataset).predict(tiny_dataset)
        np.testing.assert_allclose(a, b)

    def test_supervised_anchor_improves_accuracy(self, tiny_dataset):
        """With a pure adversarial objective the regression is weaker."""
        truth, _ = tiny_dataset.evaluation_arrays("test")
        anchored = CGANPredictor(small_config(mse_weight=1.0, epochs=4)).fit(tiny_dataset)
        pure = CGANPredictor(small_config(mse_weight=0.0, epochs=4)).fit(tiny_dataset)
        anchored_mape = mape(anchored.predict(tiny_dataset), truth)
        pure_mape = mape(pure.predict(tiny_dataset), truth)
        assert anchored_mape < pure_mape

    def test_sampling_averages_draws(self, tiny_dataset):
        config = small_config(num_prediction_samples=1)
        one = CGANPredictor(config).fit(tiny_dataset).predict(tiny_dataset)
        config_many = small_config(num_prediction_samples=8)
        many = CGANPredictor(config_many).fit(tiny_dataset).predict(tiny_dataset)
        # Averaging over draws reduces the sampling spread.
        assert np.std(np.diff(many)) <= np.std(np.diff(one)) * 1.5
