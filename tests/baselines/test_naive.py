"""Tests for naive baselines."""

import numpy as np
import pytest

from repro.baselines import HistoricalAverageBaseline, LastValueBaseline
from repro.metrics import mape


class TestLastValue:
    def test_predicts_last_input(self, tiny_dataset):
        baseline = LastValueBaseline().fit(tiny_dataset)
        prediction = baseline.predict(tiny_dataset)
        indices = tiny_dataset.split.test
        np.testing.assert_allclose(prediction, tiny_dataset.features.last_input_kmh[indices])

    def test_reasonable_error(self, tiny_dataset):
        baseline = LastValueBaseline().fit(tiny_dataset)
        truth, _ = tiny_dataset.evaluation_arrays("test")
        assert mape(baseline.predict(tiny_dataset), truth) < 15.0

    def test_fit_returns_self(self, tiny_dataset):
        baseline = LastValueBaseline()
        assert baseline.fit(tiny_dataset) is baseline


class TestHistoricalAverage:
    def test_predict_before_fit_raises(self, tiny_dataset):
        with pytest.raises(RuntimeError):
            HistoricalAverageBaseline().predict(tiny_dataset)

    def test_captures_daily_pattern(self, tiny_dataset):
        baseline = HistoricalAverageBaseline().fit(tiny_dataset)
        prediction = baseline.predict(tiny_dataset)
        truth, _ = tiny_dataset.evaluation_arrays("test")
        # Beats a constant global mean.
        constant = np.full_like(truth, truth.mean())
        assert mape(prediction, truth) < mape(constant, truth)

    def test_prediction_shape(self, tiny_dataset):
        baseline = HistoricalAverageBaseline().fit(tiny_dataset)
        assert baseline.predict(tiny_dataset).shape == (len(tiny_dataset.split.test),)

    def test_unseen_slot_falls_back_to_global_mean(self, tiny_dataset):
        baseline = HistoricalAverageBaseline().fit(tiny_dataset)
        baseline._table = {}  # simulate nothing learned for these keys
        prediction = baseline.predict(tiny_dataset)
        np.testing.assert_allclose(prediction, baseline._global_mean)
